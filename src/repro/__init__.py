"""JOSS reproduction: joint CPU-memory DVFS and task scheduling for energy efficiency.

This package is a full-system reproduction of the ICPP 2023 paper
*JOSS: Joint Exploration of CPU-Memory DVFS and Task Scheduling for
Energy Efficiency* (Chen, Goel, Manivannan, Pericas).  Because the
paper's evaluation platform (NVIDIA Jetson TX2) is not available here,
the hardware substrate is a deterministic discrete-event simulation of
an asymmetric multicore with cluster-level CPU DVFS, memory DVFS and
power sensors (see DESIGN.md for the substitution argument).

Top-level layout:

- :mod:`repro.sim`        -- discrete-event simulation engine
- :mod:`repro.hw`         -- platform model (clusters, memory, power, DVFS)
- :mod:`repro.exec_model` -- ground-truth task timing / contention model
- :mod:`repro.runtime`    -- task-parallel runtime (DAG, queues, stealing)
- :mod:`repro.profiling`  -- synthetic benchmarks + platform profiler
- :mod:`repro.models`     -- MPR performance / CPU power / memory power models
- :mod:`repro.core`       -- the JOSS scheduler (the paper's contribution)
- :mod:`repro.schedulers` -- baselines: GRWS, ERASE, Aequitas, STEER
- :mod:`repro.workloads`  -- the ten Table-1 benchmarks as DAG generators
- :mod:`repro.bench`      -- experiment harness regenerating every figure/table
- :mod:`repro.obs`        -- observability: event bus, metrics, exporters

The consolidated public API (documented in ``docs/api.md``) is exposed
lazily at the package top level::

    import repro

    with repro.observe(events="events.jsonl"):
        metrics = repro.run("fb/JOSS", repeats=3)

Submodule imports stay explicit and cheap: nothing below is imported
until the attribute is touched (PEP 562).
"""

from repro.version import __version__

#: Facade name -> (module, attribute).  ``docs/api.md`` documents
#: exactly this surface; ``tools/check_api_surface.py`` enforces the
#: correspondence in CI.
_FACADE = {
    "run": ("repro.bench.runner", "run"),
    "build_workload": ("repro.workloads.registry", "build_workload"),
    "jetson_tx2": ("repro.hw.platform", "jetson_tx2"),
    "profile_and_fit": ("repro.models.training", "profile_and_fit"),
    "load_suite": ("repro.models.io", "load_suite"),
    "run_sweep": ("repro.sweep.engine", "run_sweep"),
    "observe": ("repro.obs.api", "observe"),
    "parse_goal": ("repro.core.goals", "parse_goal"),
    "DeadlineGoal": ("repro.core.goals", "DeadlineGoal"),
    "ArrivalSpec": ("repro.workloads.arrivals", "ArrivalSpec"),
}

__all__ = ["__version__", *_FACADE]


def __getattr__(name: str):
    """Lazy facade resolution (PEP 562)."""
    try:
        module_name, attr = _FACADE[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list:
    return sorted({*globals(), *_FACADE})
