"""JOSS reproduction: joint CPU-memory DVFS and task scheduling for energy efficiency.

This package is a full-system reproduction of the ICPP 2023 paper
*JOSS: Joint Exploration of CPU-Memory DVFS and Task Scheduling for
Energy Efficiency* (Chen, Goel, Manivannan, Pericas).  Because the
paper's evaluation platform (NVIDIA Jetson TX2) is not available here,
the hardware substrate is a deterministic discrete-event simulation of
an asymmetric multicore with cluster-level CPU DVFS, memory DVFS and
power sensors (see DESIGN.md for the substitution argument).

Top-level layout:

- :mod:`repro.sim`        -- discrete-event simulation engine
- :mod:`repro.hw`         -- platform model (clusters, memory, power, DVFS)
- :mod:`repro.exec_model` -- ground-truth task timing / contention model
- :mod:`repro.runtime`    -- task-parallel runtime (DAG, queues, stealing)
- :mod:`repro.profiling`  -- synthetic benchmarks + platform profiler
- :mod:`repro.models`     -- MPR performance / CPU power / memory power models
- :mod:`repro.core`       -- the JOSS scheduler (the paper's contribution)
- :mod:`repro.schedulers` -- baselines: GRWS, ERASE, Aequitas, STEER
- :mod:`repro.workloads`  -- the ten Table-1 benchmarks as DAG generators
- :mod:`repro.bench`      -- experiment harness regenerating every figure/table
"""

from repro.version import __version__

__all__ = ["__version__"]
