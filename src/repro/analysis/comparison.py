"""Side-by-side comparison of two runs.

Produces the "why did scheduler B beat scheduler A" view used
throughout the paper's section 7.1 prose: headline metric deltas,
per-kernel execution-time and queueing changes, and placement shifts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.report import format_table
from repro.runtime.metrics import RunMetrics


@dataclass
class KernelDelta:
    """Per-kernel change between two runs."""

    kernel: str
    mean_time_a: float
    mean_time_b: float
    mean_wait_a: float
    mean_wait_b: float
    placements_a: dict[str, int] = field(default_factory=dict)
    placements_b: dict[str, int] = field(default_factory=dict)

    @property
    def time_ratio(self) -> float:
        return self.mean_time_b / self.mean_time_a if self.mean_time_a else float("nan")


@dataclass
class RunComparison:
    """Structured delta between two runs of the same workload."""

    a: RunMetrics
    b: RunMetrics
    kernel_deltas: list[KernelDelta]

    @property
    def energy_ratio(self) -> float:
        return (
            self.b.total_energy / self.a.total_energy
            if self.a.total_energy
            else float("nan")
        )

    @property
    def time_ratio(self) -> float:
        return self.b.makespan / self.a.makespan if self.a.makespan else float("nan")

    def render(self) -> str:
        head = format_table(
            ["metric", self.a.scheduler, self.b.scheduler, "ratio"],
            [
                ["total energy (J)", self.a.total_energy, self.b.total_energy,
                 self.energy_ratio],
                ["cpu energy (J)", self.a.cpu_energy, self.b.cpu_energy,
                 self.b.cpu_energy / self.a.cpu_energy if self.a.cpu_energy else 0.0],
                ["mem energy (J)", self.a.mem_energy, self.b.mem_energy,
                 self.b.mem_energy / self.a.mem_energy if self.a.mem_energy else 0.0],
                ["makespan (s)", self.a.makespan, self.b.makespan, self.time_ratio],
                ["steals", self.a.steals, self.b.steals, ""],
                ["cluster DVFS transitions", self.a.cluster_freq_transitions,
                 self.b.cluster_freq_transitions, ""],
                ["memory DVFS transitions", self.a.memory_freq_transitions,
                 self.b.memory_freq_transitions, ""],
            ],
        )
        rows = []
        for d in self.kernel_deltas:
            rows.append(
                [
                    d.kernel,
                    d.mean_time_a * 1e3,
                    d.mean_time_b * 1e3,
                    d.time_ratio,
                    ", ".join(f"{k}:{v}" for k, v in sorted(d.placements_b.items())),
                ]
            )
        kernels = format_table(
            ["kernel", f"{self.a.scheduler} t (ms)", f"{self.b.scheduler} t (ms)",
             "ratio", f"{self.b.scheduler} placements"],
            rows,
        )
        return head + "\n\nPer-kernel:\n" + kernels


def compare_runs(a: RunMetrics, b: RunMetrics) -> RunComparison:
    """Compare two runs (ideally of the same workload)."""
    deltas = []
    for kernel in sorted(set(a.per_kernel) | set(b.per_kernel)):
        ka = a.per_kernel.get(kernel)
        kb = b.per_kernel.get(kernel)
        deltas.append(
            KernelDelta(
                kernel=kernel,
                mean_time_a=ka.mean_time if ka else 0.0,
                mean_time_b=kb.mean_time if kb else 0.0,
                mean_wait_a=ka.mean_wait if ka else 0.0,
                mean_wait_b=kb.mean_wait if kb else 0.0,
                placements_a=dict(ka.placements) if ka else {},
                placements_b=dict(kb.placements) if kb else {},
            )
        )
    return RunComparison(a=a, b=b, kernel_deltas=deltas)
