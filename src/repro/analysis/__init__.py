"""Post-hoc and in-flight analysis tooling.

Reproduces the *analysis* the paper performs on its results (section
7.1's BMOD walk-through): where each kernel's tasks executed, and how
the measured rail energy splits across kernels and the idle floor.

- :class:`~repro.analysis.attribution.EnergyAttributor` instruments a
  run and attributes dynamic energy to kernels (the software analogue
  of per-task RAPL attribution);
- :mod:`repro.analysis.reports` renders placement and energy
  breakdowns.
"""

from repro.analysis.attribution import EnergyAttributor
from repro.analysis.comparison import RunComparison, compare_runs
from repro.analysis.reports import energy_breakdown_report, placement_report
from repro.analysis.timeline import Segment, Timeline

__all__ = [
    "EnergyAttributor",
    "RunComparison",
    "compare_runs",
    "placement_report",
    "energy_breakdown_report",
    "Segment",
    "Timeline",
]
