"""Rendered placement and energy-breakdown reports."""

from __future__ import annotations

from repro.analysis.attribution import EnergyAttributor
from repro.bench.report import format_table
from repro.runtime.metrics import RunMetrics


def placement_fractions(metrics: RunMetrics, kernel: str) -> dict[str, float]:
    """Fraction of a kernel's tasks executed per ``<cluster>x<nc>``
    placement (the paper's "63% of BMOD tasks execute on Denver")."""
    ks = metrics.per_kernel.get(kernel)
    if ks is None or ks.invocations == 0:
        return {}
    return {
        key: count / ks.invocations for key, count in sorted(ks.placements.items())
    }


def cluster_fraction(metrics: RunMetrics, kernel: str, cluster: str) -> float:
    """Fraction of a kernel's tasks that ran on one cluster type."""
    fracs = placement_fractions(metrics, kernel)
    return sum(v for k, v in fracs.items() if k.startswith(cluster))


def placement_report(metrics: RunMetrics) -> str:
    rows = []
    for kernel, ks in sorted(metrics.per_kernel.items()):
        fr = placement_fractions(metrics, kernel)
        rows.append(
            [
                kernel,
                ks.invocations,
                ks.mean_time * 1e3,
                ", ".join(f"{k}:{v:.0%}" for k, v in fr.items()),
            ]
        )
    return format_table(
        ["kernel", "tasks", "mean time (ms)", "placements"], rows,
        float_fmt="{:.3f}",
    )


def energy_breakdown_report(attributor: EnergyAttributor) -> str:
    rows = []
    for kernel, ke in sorted(
        attributor.per_kernel.items(), key=lambda kv: -kv[1].total
    ):
        rows.append([kernel, ke.cpu, ke.mem, ke.total, ke.busy_time])
    rows.append(["(idle floor)", "", "", attributor.idle_energy, ""])
    return format_table(
        ["kernel", "E_cpu_dyn (J)", "E_mem_dyn (J)", "E_total (J)", "busy (s)"],
        rows,
    )
