"""Per-kernel dynamic-energy attribution.

Hooks the execution engine's state-change notifications and integrates,
for every interval between events, each running activity's dynamic
power draw (CPU side from its core's type/frequency/stall state;
memory side from its achieved bandwidth share).  What is left of the
rail energy is the shared idle floor — the quantity JOSS's scheduler
attributes across concurrent tasks (paper section 5.3); here we
measure it instead of estimating it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exec_model.engine import ExecutionEngine


@dataclass
class KernelEnergy:
    """Attributed dynamic energy of one kernel (joules)."""

    cpu: float = 0.0
    mem: float = 0.0
    busy_time: float = 0.0

    @property
    def total(self) -> float:
        return self.cpu + self.mem


@dataclass
class _ActivitySnapshot:
    kernel: str
    p_cpu: float
    p_mem: float


class EnergyAttributor:
    """Attach to an engine *before* the run starts."""

    def __init__(self, engine: ExecutionEngine) -> None:
        self.engine = engine
        self.per_kernel: dict[str, KernelEnergy] = {}
        self.idle_energy: float = 0.0
        self._last_t = engine.sim.now
        self._snapshot: list[_ActivitySnapshot] = []
        self._idle_power = 0.0
        engine.on_state_change.append(self._on_change)
        self._rebuild()

    def _kernel(self, name: str) -> KernelEnergy:
        ke = self.per_kernel.get(name)
        if ke is None:
            ke = self.per_kernel[name] = KernelEnergy()
        return ke

    def _on_change(self) -> None:
        now = self.engine.sim.now
        dt = now - self._last_t
        if dt > 0:
            for snap in self._snapshot:
                ke = self._kernel(snap.kernel)
                ke.cpu += snap.p_cpu * dt
                ke.mem += snap.p_mem * dt
                ke.busy_time += dt
            self.idle_energy += self._idle_power * dt
        self._last_t = now
        self._rebuild()

    def _rebuild(self) -> None:
        engine = self.engine
        pm = engine.platform.power_model
        mem = engine.platform.memory
        snaps: list[_ActivitySnapshot] = []
        total_bw = sum(act.bw_achieved for act in engine.activities)
        mem_dyn_total = max(
            0.0, pm.memory_power(mem, total_bw) - pm.memory_idle_power(mem)
        )
        for act in engine.activities:
            cluster = act.core.cluster
            p_cpu = pm.core_dynamic_power(
                cluster.core_type, cluster.freq, cluster.volts, act.mb_inst
            )
            p_mem = 0.0
            if total_bw > 0:
                p_mem = mem_dyn_total * (act.bw_achieved / total_bw)
            snaps.append(_ActivitySnapshot(act.kernel.name, p_cpu, p_mem))
        rails = engine.rail_powers()
        dyn_total = sum(s.p_cpu + s.p_mem for s in snaps)
        self._idle_power = max(0.0, rails["cpu"] + rails["mem"] - dyn_total)
        self._snapshot = snaps

    # ------------------------------------------------------------------
    def total_dynamic(self) -> float:
        return sum(k.total for k in self.per_kernel.values())

    def fraction_of(self, kernel_name: str) -> float:
        """Share of all attributed dynamic energy due to one kernel."""
        total = self.total_dynamic()
        if total <= 0:
            return 0.0
        return self.per_kernel.get(kernel_name, KernelEnergy()).total / total
