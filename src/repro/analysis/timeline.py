"""Execution timelines from trace records.

Builds a per-core Gantt view of a traced run: which kernel ran on
which core and when, plus DVFS actuation points.  Exports to a JSON
structure (for external plotting) and renders a terminal ASCII chart —
handy when debugging why a scheduler serialised work or thrashed a
frequency domain.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.sim.trace import Tracer


@dataclass(frozen=True)
class Segment:
    """One execution interval of a kernel on a core."""

    core: int
    kernel: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class FreqEvent:
    """One applied DVFS transition on a domain."""

    time: float
    domain: str
    freq: float


class Timeline:
    """Per-core execution segments reconstructed from a tracer."""

    def __init__(
        self,
        segments: list[Segment],
        makespan: float,
        freq_events: list[FreqEvent] | None = None,
    ) -> None:
        self.segments = sorted(segments, key=lambda s: (s.core, s.start))
        self.makespan = makespan
        self.freq_events = sorted(
            freq_events or [], key=lambda e: (e.domain, e.time)
        )

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "Timeline":
        """Pair activity-start / activity-end records per core; collect
        DVFS actuations."""
        open_per_core: dict[int, tuple[str, float]] = {}
        segments: list[Segment] = []
        freq_events: list[FreqEvent] = []
        makespan = 0.0
        for rec in tracer:
            makespan = max(makespan, rec.time)
            if rec.category == "activity-start":
                open_per_core[rec.payload["core"]] = (
                    rec.payload["kernel"], rec.time,
                )
            elif rec.category == "activity-end":
                core = rec.payload["core"]
                started = open_per_core.pop(core, None)
                if started is not None:
                    segments.append(
                        Segment(core, started[0], started[1], rec.time)
                    )
            elif rec.category == "freq-change":
                freq_events.append(
                    FreqEvent(rec.time, rec.payload["domain"], rec.payload["freq"])
                )
        return cls(segments, makespan, freq_events)

    def freq_series(self, domain: str) -> list[tuple[float, float]]:
        """(time, freq) steps applied on one DVFS domain."""
        return [
            (e.time, e.freq) for e in self.freq_events if e.domain == domain
        ]

    def domains(self) -> list[str]:
        return sorted({e.domain for e in self.freq_events})

    def core_ids(self) -> list[int]:
        return sorted({s.core for s in self.segments})

    def busy_time(self, core: int) -> float:
        return sum(s.duration for s in self.segments if s.core == core)

    def utilisation(self, core: int) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy_time(core) / self.makespan

    def kernels(self) -> list[str]:
        return sorted({s.kernel for s in self.segments})

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "makespan": self.makespan,
                "segments": [asdict(s) for s in self.segments],
                "freq_events": [asdict(e) for e in self.freq_events],
            }
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json())
        return path

    def render_ascii(self, width: int = 80) -> str:
        """Terminal Gantt chart: one row per core, one glyph per slot.

        Each kernel gets a stable single-character glyph; '.' is idle
        and '*' marks slots where multiple short segments landed.
        """
        if not self.segments or self.makespan <= 0:
            return "(empty timeline)"
        glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        glyph_of = {
            k: glyphs[i % len(glyphs)] for i, k in enumerate(self.kernels())
        }
        lines = []
        for core in self.core_ids():
            row = ["."] * width
            seen: dict[int, set[str]] = {}
            for seg in self.segments:
                if seg.core != core:
                    continue
                lo = int(seg.start / self.makespan * (width - 1))
                hi = max(lo, int(seg.end / self.makespan * (width - 1)))
                for i in range(lo, hi + 1):
                    seen.setdefault(i, set()).add(seg.kernel)
            for i, ks in seen.items():
                row[i] = glyph_of[next(iter(ks))] if len(ks) == 1 else "*"
            util = self.utilisation(core)
            lines.append(f"core {core}: |{''.join(row)}| {util:5.1%}")
        legend = "  ".join(f"{g}={k}" for k, g in sorted(
            glyph_of.items(), key=lambda kv: kv[1]
        ))
        lines.append(f"legend: {legend}")
        for domain in self.domains():
            steps = self.freq_series(domain)
            shown = "  ".join(
                f"{t * 1e3:.0f}ms->{f:.2f}GHz" for t, f in steps[:6]
            )
            more = f"  (+{len(steps) - 6} more)" if len(steps) > 6 else ""
            lines.append(f"dvfs {domain}: {shown}{more}")
        return "\n".join(lines)
