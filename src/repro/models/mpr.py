"""Multivariate polynomial regression (the paper's MPR).

The paper's Eqs. 2, 4 and 5 all share the same functional form: linear
terms, quadratic terms, pairwise interaction terms, plus an intercept —
i.e. a full degree-2 polynomial.  The paper notes that higher-degree
variants overfit without accuracy gains (section 4.3.3); degree 2 is
therefore the production setting (:class:`Poly2Regressor`), and the
generic :class:`PolynomialRegressor` exists to *reproduce* that
overfitting study (see the ``degree`` experiment).

Fitting is ordinary least squares via :func:`numpy.linalg.lstsq` on the
expanded feature matrix — vectorised, no loops over samples.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np

from repro.errors import ModelError


class PolynomialRegressor:
    """OLS on the full polynomial expansion of ``n_features`` inputs up
    to ``degree`` (all monomials, intercept included)."""

    def __init__(self, n_features: int, degree: int = 2) -> None:
        if n_features < 1:
            raise ModelError("need at least one feature")
        if degree < 1:
            raise ModelError("degree must be >= 1")
        self.n_features = n_features
        self.degree = degree
        #: Monomials as index tuples, e.g. (0, 1) means x0*x1.
        self._terms: list[tuple[int, ...]] = [()]
        for d in range(1, degree + 1):
            self._terms.extend(
                combinations_with_replacement(range(n_features), d)
            )
        # Expansion plan: every term's prefix (all indices but the
        # last) is itself an earlier term, so column i is one multiply
        # of an already-built column by one input column — same
        # left-to-right product order as the naive per-term loop, hence
        # bit-identical, without Python-level work per (term, sample).
        index = {term: i for i, term in enumerate(self._terms)}
        self._plan: list[tuple[int, int]] = [
            (index[term[:-1]], term[-1]) for term in self._terms[1:]
        ]
        self.coef: np.ndarray | None = None
        #: Residual RMS on the training set (diagnostic).
        self.train_rmse: float = float("nan")

    @property
    def n_params(self) -> int:
        return len(self._terms)

    def expand(self, x: np.ndarray) -> np.ndarray:
        """Feature expansion; ``x`` is (n_samples, n_features)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.n_features:
            raise ModelError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        phi = np.empty((x.shape[0], len(self._terms)))
        phi[:, 0] = 1.0
        for i, (prefix, feat) in enumerate(self._plan, start=1):
            np.multiply(phi[:, prefix], x[:, feat], out=phi[:, i])
        return phi

    def fit(self, x: np.ndarray, y: np.ndarray) -> "PolynomialRegressor":
        y = np.asarray(y, dtype=float)
        phi = self.expand(x)
        if len(y) < self.n_params:
            raise ModelError(
                f"{len(y)} samples cannot identify {self.n_params} parameters"
            )
        coef, _, _, _ = np.linalg.lstsq(phi, y, rcond=None)
        self.coef = coef
        resid = phi @ coef - y
        self.train_rmse = float(np.sqrt(np.mean(resid**2)))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predict for (n_samples, n_features); returns (n_samples,)."""
        if self.coef is None:
            raise ModelError("model is not fitted")
        return self.expand(x) @ self.coef

    def predict_blocks(self, x: np.ndarray, block: int) -> np.ndarray:
        """Predict for stacked same-shaped blocks of rows — the batch
        decision pipeline's shape (K kernels x one ``block``-row mesh).

        The polynomial expansion runs ONCE over all ``K * block`` rows
        (it is purely element-wise, hence row-local), while the final
        ``phi @ coef`` product runs per ``block``-row slice: BLAS picks
        its blocking by operand shape, so only a same-shaped product is
        guaranteed bit-identical to the per-block :meth:`predict` calls
        this replaces.  Slices of a C-contiguous expansion are
        themselves C-contiguous, so each slice product is byte-for-byte
        the standalone call.
        """
        if self.coef is None:
            raise ModelError("model is not fitted")
        if block < 1:
            raise ModelError("block must be >= 1")
        phi = self.expand(x)
        n = phi.shape[0]
        if n % block:
            raise ModelError(
                f"{n} stacked rows do not divide into blocks of {block}"
            )
        out = np.empty(n)
        coef = self.coef
        for s in range(0, n, block):
            out[s:s + block] = phi[s:s + block] @ coef
        return out

    def predict_one(self, *features: float) -> float:
        """Scalar prediction — the shape the schedulers' per-decision
        queries use.  Builds the single expanded row directly (scalar
        products in plan order, identical to :meth:`expand`) and runs
        the same ``(1, p) @ coef`` product as the batch path."""
        if self.coef is None:
            raise ModelError("model is not fitted")
        if len(features) != self.n_features:
            raise ModelError(
                f"expected {self.n_features} features, got {len(features)}"
            )
        x = [float(f) for f in features]
        phi = np.empty((1, len(self._terms)))
        row = phi[0]
        row[0] = 1.0
        for i, (prefix, feat) in enumerate(self._plan, start=1):
            row[i] = row[prefix] * x[feat]
        return float((phi @ self.coef)[0])

    # ------------------------------------------------------------------
    # Serialisation (install-time model artifacts)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        if self.coef is None:
            raise ModelError("cannot serialise an unfitted model")
        return {
            "n_features": self.n_features,
            "degree": self.degree,
            "coef": self.coef.tolist(),
            "train_rmse": self.train_rmse,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PolynomialRegressor":
        reg = cls(int(state["n_features"]))
        if int(state.get("degree", 2)) != reg.degree:
            reg = PolynomialRegressor(
                int(state["n_features"]), int(state["degree"])
            )
        reg.coef = np.asarray(state["coef"], dtype=float)
        if reg.coef.shape != (reg.n_params,):
            raise ModelError("coefficient vector has the wrong shape")
        reg.train_rmse = float(state.get("train_rmse", float("nan")))
        return reg


class Poly2Regressor(PolynomialRegressor):
    """The production degree-2 MPR (the paper's Eqs. 2/4/5 form)."""

    def __init__(self, n_features: int) -> None:
        super().__init__(n_features, degree=2)
