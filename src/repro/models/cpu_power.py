"""CPU power model (paper section 4.3.1, Eq. 4).

Dynamic CPU power is modelled as an MPR over ``(MB, f_C)`` only: the
paper's profiling (Fig. 5a) shows memory frequency has negligible
effect on CPU power, and voltage is omitted because it is strongly
correlated with frequency on the platform.  One instance per
``<T_C, N_C>``.
"""

from __future__ import annotations

import numpy as np

from repro.models.mpr import PolynomialRegressor


class CpuPowerModel:
    """Predicts dynamic CPU power of a task from (MB, f_C)."""

    def __init__(self, degree: int = 2) -> None:
        self._reg = PolynomialRegressor(n_features=2, degree=degree)

    def fit(self, mb: np.ndarray, f_c: np.ndarray, power: np.ndarray) -> "CpuPowerModel":
        x = np.column_stack([np.asarray(mb, float), np.asarray(f_c, float)])
        self._reg.fit(x, np.asarray(power, float))
        return self

    def predict(self, mb: float, f_c: float) -> float:
        return max(0.0, self._reg.predict_one(mb, f_c))

    def predict_grid(self, mb: float, f_c_grid: np.ndarray) -> np.ndarray:
        f_c_grid = np.asarray(f_c_grid, float)
        x = np.column_stack([np.full(f_c_grid.size, mb), f_c_grid])
        return np.maximum(0.0, self._reg.predict(x))

    @property
    def train_rmse(self) -> float:
        return self._reg.train_rmse
