"""CPU power model (paper section 4.3.1, Eq. 4).

Dynamic CPU power is modelled as an MPR over ``(MB, f_C)`` only: the
paper's profiling (Fig. 5a) shows memory frequency has negligible
effect on CPU power, and voltage is omitted because it is strongly
correlated with frequency on the platform.  One instance per
``<T_C, N_C>``.
"""

from __future__ import annotations

import numpy as np

from repro.models.mpr import PolynomialRegressor


class CpuPowerModel:
    """Predicts dynamic CPU power of a task from (MB, f_C)."""

    def __init__(self, degree: int = 2) -> None:
        self._reg = PolynomialRegressor(n_features=2, degree=degree)

    def fit(self, mb: np.ndarray, f_c: np.ndarray, power: np.ndarray) -> "CpuPowerModel":
        x = np.column_stack([np.asarray(mb, float), np.asarray(f_c, float)])
        self._reg.fit(x, np.asarray(power, float))
        return self

    def predict(self, mb: float, f_c: float) -> float:
        return max(0.0, self._reg.predict_one(mb, f_c))

    def predict_grid(self, mb: float, f_c_grid: np.ndarray) -> np.ndarray:
        f_c_grid = np.asarray(f_c_grid, float)
        x = np.column_stack([np.full(f_c_grid.size, mb), f_c_grid])
        return np.maximum(0.0, self._reg.predict(x))

    def predict_grid_batch(
        self, mbs: "list[float]", f_c_grid: np.ndarray
    ) -> "list[np.ndarray]":
        """:meth:`predict_grid` for K kernels over one shared ``f_c``
        grid — expansion batched, regression product per block, results
        bit-identical to per-kernel calls."""
        f_c_grid = np.asarray(f_c_grid, float)
        g = f_c_grid.size
        x = np.empty((len(mbs) * g, 2))
        for i, mb in enumerate(mbs):
            s = i * g
            x[s:s + g, 0] = mb
            x[s:s + g, 1] = f_c_grid
        raw = self._reg.predict_blocks(x, g)
        return [
            np.maximum(0.0, raw[i * g:(i + 1) * g])
            for i in range(len(mbs))
        ]

    @property
    def train_rmse(self) -> float:
        return self._reg.train_rmse
