"""Model-suite serialisation.

The paper's profiling and model fitting "just need to be done once for
a specific platform (e.g. at install-time or boot-time)" — which means
the fitted models are an on-disk artifact.  This module round-trips a
:class:`~repro.models.suite.ModelSuite` through JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.models.cpu_power import CpuPowerModel
from repro.models.idle import IdlePowerModel
from repro.models.memory_power import MemoryPowerModel
from repro.models.mpr import PolynomialRegressor
from repro.models.performance import PerformanceModel
from repro.models.suite import ConfigModels, ModelSuite

FORMAT_VERSION = 1


def suite_to_dict(suite: ModelSuite) -> dict:
    configs = {}
    for (cluster, n_cores), cm in suite.models.items():
        configs[f"{cluster}:{n_cores}"] = {
            "performance": cm.performance._stall.get_state(),
            "cpu_power": cm.cpu_power._reg.get_state(),
            "mem_power": cm.mem_power._reg.get_state(),
            "f_c_ref": cm.f_c_ref,
            "f_c_sample": cm.f_c_sample,
            "perf_f_c_ref": cm.performance.f_c_ref,
        }
    idle = suite.idle
    return {
        "version": FORMAT_VERSION,
        "platform": suite.platform_name,
        "f_c_ref": suite.f_c_ref,
        "f_m_ref": suite.f_m_ref,
        "f_c_sample": suite.f_c_sample,
        "configs": configs,
        "idle": {
            "f_c": idle._fc.tolist(),
            "cpu": idle._cpu.tolist(),
            "f_m": idle._fm.tolist(),
            "mem": idle._mem.tolist(),
        },
    }


def suite_from_dict(data: dict) -> ModelSuite:
    if data.get("version") != FORMAT_VERSION:
        raise ModelError(
            f"unsupported model-suite format {data.get('version')!r}"
        )
    f_c_ref = float(data["f_c_ref"])
    f_m_ref = float(data["f_m_ref"])
    models: dict[tuple[str, int], ConfigModels] = {}
    for key, entry in data["configs"].items():
        cluster, n_cores_s = key.rsplit(":", 1)
        perf = PerformanceModel(float(entry.get("perf_f_c_ref", f_c_ref)), f_m_ref)
        perf._stall = PolynomialRegressor.from_state(entry["performance"])
        cpu = CpuPowerModel()
        cpu._reg = PolynomialRegressor.from_state(entry["cpu_power"])
        mem = MemoryPowerModel()
        mem._reg = PolynomialRegressor.from_state(entry["mem_power"])
        models[(cluster, int(n_cores_s))] = ConfigModels(
            perf, cpu, mem,
            f_c_ref=float(entry.get("f_c_ref", 0.0)),
            f_c_sample=float(entry.get("f_c_sample", 0.0)),
        )
    idle = IdlePowerModel.__new__(IdlePowerModel)
    idle._fc = np.asarray(data["idle"]["f_c"], dtype=float)
    idle._cpu = np.asarray(data["idle"]["cpu"], dtype=float)
    idle._fm = np.asarray(data["idle"]["f_m"], dtype=float)
    idle._mem = np.asarray(data["idle"]["mem"], dtype=float)
    return ModelSuite(
        models,
        idle,
        f_c_ref=f_c_ref,
        f_m_ref=f_m_ref,
        f_c_sample=float(data["f_c_sample"]),
        platform_name=data.get("platform", ""),
    )


def save_suite(suite: ModelSuite, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(suite_to_dict(suite)))
    return path


def load_suite(path: str | Path) -> ModelSuite:
    return suite_from_dict(json.loads(Path(path).read_text()))
