"""Model fitting pipeline (paper Fig. 4).

From a :class:`ProfilingDataset` this fits, per ``<T_C, N_C>``:

1. an MB estimate for every synthetic benchmark, using the same
   PMC-free two-frequency method (Eq. 3) the runtime uses — so training
   and inference see MB through the same lens;
2. the performance model (Eq. 2) on stall-fraction targets;
3. the CPU power model (Eq. 4) and memory power model (Eq. 5);

plus the idle-power characterisation.  ``profile_and_fit`` is the
one-call entry point with an in-process cache keyed by (platform,
profiling settings) — mirroring the paper's "profiling and model
building are done once per platform" note.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ModelError
from repro.hw.platform import Platform
from repro.models.cpu_power import CpuPowerModel
from repro.models.idle import IdlePowerModel
from repro.models.mb import estimate_mb
from repro.models.memory_power import MemoryPowerModel
from repro.models.performance import PerformanceModel
from repro.models.suite import ConfigModels, ModelSuite
from repro.profiling.dataset import ProfilingDataset
from repro.profiling.profiler import PlatformProfiler


def _pick_sample_freq(f_values: Sequence[float], f_ref: float) -> float:
    """Second core frequency for MB estimation: roughly half the
    reference, picked from the frequencies present in the dataset (a
    wide gap keeps Eq. 3 numerically stable)."""
    candidates = sorted(set(f_values))
    if len(candidates) < 2:
        raise ModelError("need at least two core frequencies in the dataset")
    target = f_ref / 2.0
    below = [f for f in candidates if f < f_ref]
    return min(below, key=lambda f: abs(f - target))


def fit_models(dataset: ProfilingDataset, degree: int = 2) -> ModelSuite:
    """Fit the full model suite from a profiling dataset."""
    if not len(dataset):
        raise ModelError("empty profiling dataset")
    f_c_ref = max(r.f_c for r in dataset)
    f_m_ref = max(r.f_m for r in dataset)
    f_c_sample = _pick_sample_freq([r.f_c for r in dataset], f_c_ref)

    models: dict[tuple[str, int], ConfigModels] = {}
    for cluster, n_cores in dataset.configs():
        slice_recs = dataset.for_config(cluster, n_cores)
        # Reference/sampling frequencies are per configuration: on
        # platforms with per-cluster OPP ladders (ODROID XU4 style) a
        # little cluster never reaches the big cluster's maximum.
        cfg_ref = max(r.f_c for r in slice_recs)
        cfg_sample = _pick_sample_freq([r.f_c for r in slice_recs], cfg_ref)
        # Index records per kernel for the reference and sampling points.
        by_kernel: dict[str, list] = {}
        for r in slice_recs:
            by_kernel.setdefault(r.kernel, []).append(r)
        mb_of: dict[str, float] = {}
        tref_of: dict[str, float] = {}
        for kname, recs in by_kernel.items():
            ref = next(
                (r for r in recs
                 if abs(r.f_c - cfg_ref) < 1e-9 and abs(r.f_m - f_m_ref) < 1e-9),
                None,
            )
            samp = next(
                (r for r in recs
                 if abs(r.f_c - cfg_sample) < 1e-9 and abs(r.f_m - f_m_ref) < 1e-9),
                None,
            )
            if ref is None or samp is None:
                raise ModelError(
                    f"kernel {kname} lacks reference/sampling measurements"
                )
            mb_of[kname] = estimate_mb(ref.time, samp.time, cfg_ref, cfg_sample)
            tref_of[kname] = ref.time

        mb_rows, tref_rows, t_rows, fc_rows, fm_rows = [], [], [], [], []
        cpu_rows, mem_rows = [], []
        for r in slice_recs:
            mb_rows.append(mb_of[r.kernel])
            tref_rows.append(tref_of[r.kernel])
            t_rows.append(r.time)
            fc_rows.append(r.f_c)
            fm_rows.append(r.f_m)
            cpu_rows.append(r.cpu_power)
            mem_rows.append(r.mem_power)
        mb_arr = np.asarray(mb_rows)
        fc_arr = np.asarray(fc_rows)
        fm_arr = np.asarray(fm_rows)
        perf = PerformanceModel(cfg_ref, f_m_ref, degree=degree).fit(
            mb_arr, np.asarray(tref_rows), np.asarray(t_rows), fc_arr, fm_arr
        )
        cpu = CpuPowerModel(degree=degree).fit(mb_arr, fc_arr, np.asarray(cpu_rows))
        mem = MemoryPowerModel(degree=degree).fit(mb_arr, fc_arr, fm_arr, np.asarray(mem_rows))
        models[(cluster, n_cores)] = ConfigModels(
            perf, cpu, mem, f_c_ref=cfg_ref, f_c_sample=cfg_sample
        )

    idle = IdlePowerModel(dataset.idle)
    return ModelSuite(
        models,
        idle,
        f_c_ref=f_c_ref,
        f_m_ref=f_m_ref,
        f_c_sample=f_c_sample,
        platform_name=dataset.platform_name,
    )


# ----------------------------------------------------------------------
# Cached profile-and-fit (install-time step in the paper)
# ----------------------------------------------------------------------
_SUITE_CACHE: dict[tuple, ModelSuite] = {}


def profile_and_fit(
    platform_factory: Callable[[], Platform],
    seed: int = 0,
    synthetic_count: int = 41,
    t_ref: float = 0.010,
    cache: bool = True,
    profiler: Optional[PlatformProfiler] = None,
) -> ModelSuite:
    """Profile a platform (once) and fit the model suite.

    The cache key includes the platform name and profiling settings, so
    repeated scheduler constructions in one process reuse the fit —
    matching the paper's install-time characterisation.
    """
    probe = platform_factory()
    key = (probe.name, seed, synthetic_count, t_ref)
    if cache and profiler is None and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]
    prof = profiler or PlatformProfiler(
        platform_factory, seed=seed, synthetic_count=synthetic_count, t_ref=t_ref
    )
    suite = fit_models(prof.run())
    if cache and profiler is None:
        _SUITE_CACHE[key] = suite
    return suite
