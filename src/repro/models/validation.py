"""Model validation utilities.

The paper validates its models by comparing predictions against
measurements of the *evaluated benchmarks* (Fig. 10, reproduced by the
``fig10`` experiment).  A production model pipeline also wants
validation that needs no extra benchmarking: k-fold cross-validation
over the synthetic training kernels (does the model generalise to task
characteristics it never saw?) and per-configuration residual
diagnostics on the training fit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.models.mb import estimate_mb
from repro.models.suite import ModelSuite
from repro.models.training import fit_models
from repro.profiling.dataset import ProfilingDataset


@dataclass
class FoldResult:
    """Held-out accuracies of one fold."""

    fold: int
    held_out_kernels: list[str]
    performance: float
    cpu_power: float
    mem_power: float


@dataclass
class ValidationReport:
    """Aggregate of a k-fold cross-validation."""

    folds: list[FoldResult] = field(default_factory=list)

    def mean(self, model: str) -> float:
        vals = [getattr(f, model) for f in self.folds]
        return float(np.mean(vals)) if vals else float("nan")

    def summary(self) -> dict[str, float]:
        return {
            "performance_mean": self.mean("performance"),
            "cpu_power_mean": self.mean("cpu_power"),
            "mem_power_mean": self.mean("mem_power"),
        }


def _accuracy(real: float, pred: float) -> float:
    if real <= 0:
        return float("nan")
    return 1.0 - abs(real - pred) / real


def _evaluate_on(
    suite: ModelSuite, dataset: ProfilingDataset, kernels: set[str]
) -> tuple[float, float, float]:
    """Mean accuracies of ``suite`` on the records of ``kernels``."""
    accs: dict[str, list[float]] = {"perf": [], "cpu": [], "mem": []}
    for cluster, n_cores in suite.config_keys():
        recs = [
            r for r in dataset.for_config(cluster, n_cores)
            if r.kernel in kernels
        ]
        by_kernel: dict[str, list] = {}
        for r in recs:
            by_kernel.setdefault(r.kernel, []).append(r)
        for kname, krecs in by_kernel.items():
            ref = next(
                (r for r in krecs
                 if abs(r.f_c - suite.f_c_ref) < 1e-9
                 and abs(r.f_m - suite.f_m_ref) < 1e-9),
                None,
            )
            samp = next(
                (r for r in krecs
                 if abs(r.f_c - suite.f_c_sample) < 1e-9
                 and abs(r.f_m - suite.f_m_ref) < 1e-9),
                None,
            )
            if ref is None or samp is None:
                continue
            mb = estimate_mb(
                ref.time, samp.time, suite.f_c_ref, suite.f_c_sample
            )
            for r in krecs:
                t = suite.predict_time(cluster, n_cores, mb, ref.time, r.f_c, r.f_m)
                accs["perf"].append(_accuracy(r.time, t))
                # Relative accuracy is only meaningful above the
                # noise floor: a compute kernel's ~0 W dynamic memory
                # power would dominate the average with 100% errors of
                # no physical consequence.
                pc = suite.predict_cpu_power(cluster, n_cores, mb, r.f_c)
                if r.cpu_power > 0.05:
                    accs["cpu"].append(_accuracy(r.cpu_power, pc))
                pm = suite.predict_mem_power(cluster, n_cores, mb, r.f_c, r.f_m)
                if r.mem_power > 0.05:
                    accs["mem"].append(_accuracy(r.mem_power, pm))
    return tuple(
        float(np.nanmean(accs[k])) if accs[k] else float("nan")
        for k in ("perf", "cpu", "mem")
    )


def kfold_validate(
    dataset: ProfilingDataset, k: int = 5, degree: int = 2, seed: int = 0
) -> ValidationReport:
    """k-fold cross-validation over the synthetic *kernels*.

    Each fold holds out a contiguous slice of the compute:memory ratio
    sweep, fits the full suite on the rest, and scores the held-out
    kernels' measurements — generalisation across task characteristics.
    """
    kernels = dataset.kernel_names()
    if len(kernels) < k:
        raise ModelError(f"{len(kernels)} kernels cannot make {k} folds")
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(kernels)))
    report = ValidationReport()
    for fold in range(k):
        held_idx = set(order[fold::k])
        held = {kernels[i] for i in held_idx}
        train_ds = dataset.filter(lambda r: r.kernel not in held)
        suite = fit_models(train_ds, degree=degree)
        perf, cpu, mem = _evaluate_on(suite, dataset, held)
        report.folds.append(
            FoldResult(fold, sorted(held), perf, cpu, mem)
        )
    return report


@dataclass(frozen=True)
class ResidualStats:
    """Training-fit residual RMS per model for one configuration."""

    cluster: str
    n_cores: int
    performance_rmse: float
    cpu_power_rmse: float
    mem_power_rmse: float


def residual_report(suite: ModelSuite) -> list[ResidualStats]:
    """Per-``<T_C, N_C>`` training residuals of a fitted suite."""
    out = []
    for (cluster, n_cores), cm in sorted(suite.models.items()):
        out.append(
            ResidualStats(
                cluster=cluster,
                n_cores=n_cores,
                performance_rmse=cm.performance.train_rmse,
                cpu_power_rmse=cm.cpu_power.train_rmse,
                mem_power_rmse=cm.mem_power.train_rmse,
            )
        )
    return out
