"""Per-kernel prediction look-up tables (paper section 5.1 / 7.4).

For each kernel and each ``<T_C, N_C>``, JOSS stores three tables over
the ``(f_C, f_M)`` grid: predicted execution time, CPU power and memory
power.  Energy estimates combine the three with the shared idle power
attributed across concurrently running tasks:

    E(f_C, f_M) = time * (P_cpu_dyn + P_mem_dyn
                          + (P_cpu_idle(f_C) + P_mem_idle(f_M)) / concurrency)

The storage-cost formula of section 7.4 is exposed as
:func:`storage_entries`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def grid_mesh(
    f_c_grid: np.ndarray, f_m_grid: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Raveled ``(f_C, f_M)`` coordinate columns of the full OPP grid.

    Shared across the per-``<T_C, N_C>`` ``predict_grid`` calls of one
    kernel resolution (the mesh depends only on the cluster's grids,
    not on the config), so the meshgrid is built once per cluster.
    """
    fc2, fm2 = np.meshgrid(f_c_grid, f_m_grid, indexing="ij")
    return fc2.ravel(), fm2.ravel()


@dataclass
class PredictionTable:
    """Time/power predictions for one (kernel, T_C, N_C) over the grid.

    ``cpu_power`` may be stored as a broadcastable ``(n_fc, 1)`` column
    (CPU power does not depend on ``f_M``, Eq. 4) — every combination
    below broadcasts it against the full grid without materialising the
    redundant copies.
    """

    cluster: str
    n_cores: int
    mb: float
    time_ref: float
    f_c_grid: np.ndarray          # (n_fc,)
    f_m_grid: np.ndarray          # (n_fm,)
    time: np.ndarray              # (n_fc, n_fm) seconds
    cpu_power: np.ndarray         # (n_fc, n_fm) or (n_fc, 1) watts (dynamic)
    mem_power: np.ndarray         # (n_fc, n_fm) watts (dynamic)
    idle_cpu: np.ndarray          # (n_fc,) watts
    idle_mem: np.ndarray          # (n_fm,) watts
    # Energy grids per concurrency value: selection goals evaluate the
    # same grid repeatedly (corner phase, descent phase, constrained
    # re-pass), and the inputs above are never mutated after build.
    _energy_memo: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def shape(self) -> tuple[int, int]:
        return self.time.shape  # type: ignore[return-value]

    def energy_grid(self, concurrency: float = 1.0) -> np.ndarray:
        """Estimated total task energy over the grid, with the idle
        power split across ``concurrency`` concurrent tasks."""
        conc = max(1.0, float(concurrency))
        memo = self._energy_memo.get(("total", conc))
        if memo is not None:
            return memo
        idle = self.idle_cpu[:, None] / conc + self.idle_mem[None, :] / conc
        grid = self.time * (self.cpu_power + self.mem_power + idle)
        self._energy_memo[("total", conc)] = grid
        return grid

    def cpu_energy_grid(self, concurrency: float = 1.0) -> np.ndarray:
        """CPU-only energy (what STEER optimises)."""
        conc = max(1.0, float(concurrency))
        memo = self._energy_memo.get(("cpu", conc))
        if memo is not None:
            return memo
        grid = self.time * (self.cpu_power + self.idle_cpu[:, None] / conc)
        self._energy_memo[("cpu", conc)] = grid
        return grid

    def freqs_at(self, i_fc: int, i_fm: int) -> tuple[float, float]:
        return float(self.f_c_grid[i_fc]), float(self.f_m_grid[i_fm])

    def entries(self) -> int:
        """Stored prediction entries in this table triple (3 grids)."""
        return 3 * self.time.size


def storage_entries(
    n_clusters: int, cores_per_cluster: int, n_fc: int, n_fm: int
) -> int:
    """Paper section 7.4: per-kernel storage for the three look-up
    tables: ``3 * M * log(N/M) * Nf_C * Nf_M`` (log base 2, counting
    power-of-two core counts).

    ``cores_per_cluster`` must itself be a power of two — the formula
    counts the core-count ladder 1, 2, 4, ..., N/M, and a non-power-of-
    two value would silently truncate through the log.
    """
    if cores_per_cluster < 1:
        raise ValueError("cores_per_cluster must be >= 1")
    log = math.log2(cores_per_cluster)
    if not log.is_integer():
        raise ValueError(
            f"cores_per_cluster must be a power of two (got "
            f"{cores_per_cluster}); the section 7.4 formula counts the "
            f"power-of-two core-count ladder"
        )
    core_options = int(log) + 1
    return 3 * n_clusters * core_options * n_fc * n_fm
