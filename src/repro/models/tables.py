"""Per-kernel prediction look-up tables (paper section 5.1 / 7.4).

For each kernel and each ``<T_C, N_C>``, JOSS stores three tables over
the ``(f_C, f_M)`` grid: predicted execution time, CPU power and memory
power.  Energy estimates combine the three with the shared idle power
attributed across concurrently running tasks:

    E(f_C, f_M) = time * (P_cpu_dyn + P_mem_dyn
                          + (P_cpu_idle(f_C) + P_mem_idle(f_M)) / concurrency)

The storage-cost formula of section 7.4 is exposed as
:func:`storage_entries`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass
class PredictionTable:
    """Time/power predictions for one (kernel, T_C, N_C) over the grid."""

    cluster: str
    n_cores: int
    mb: float
    time_ref: float
    f_c_grid: np.ndarray          # (n_fc,)
    f_m_grid: np.ndarray          # (n_fm,)
    time: np.ndarray              # (n_fc, n_fm) seconds
    cpu_power: np.ndarray         # (n_fc, n_fm) watts (dynamic)
    mem_power: np.ndarray         # (n_fc, n_fm) watts (dynamic)
    idle_cpu: np.ndarray          # (n_fc,) watts
    idle_mem: np.ndarray          # (n_fm,) watts

    @property
    def shape(self) -> tuple[int, int]:
        return self.time.shape  # type: ignore[return-value]

    def energy_grid(self, concurrency: float = 1.0) -> np.ndarray:
        """Estimated total task energy over the grid, with the idle
        power split across ``concurrency`` concurrent tasks."""
        conc = max(1.0, float(concurrency))
        idle = self.idle_cpu[:, None] / conc + self.idle_mem[None, :] / conc
        return self.time * (self.cpu_power + self.mem_power + idle)

    def cpu_energy_grid(self, concurrency: float = 1.0) -> np.ndarray:
        """CPU-only energy (what STEER optimises)."""
        conc = max(1.0, float(concurrency))
        return self.time * (self.cpu_power + self.idle_cpu[:, None] / conc)

    def freqs_at(self, i_fc: int, i_fm: int) -> tuple[float, float]:
        return float(self.f_c_grid[i_fc]), float(self.f_m_grid[i_fm])

    def entries(self) -> int:
        """Stored prediction entries in this table triple (3 grids)."""
        return 3 * self.time.size


def storage_entries(
    n_clusters: int, cores_per_cluster: int, n_fc: int, n_fm: int
) -> int:
    """Paper section 7.4: per-kernel storage for the three look-up
    tables: ``3 * M * log(N/M) * Nf_C * Nf_M`` (log base 2, counting
    power-of-two core counts)."""
    core_options = int(math.log2(cores_per_cluster)) + 1
    return 3 * n_clusters * core_options * n_fc * n_fm
