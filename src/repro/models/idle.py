"""Idle power characterisation (paper section 4.3.3).

Idle CPU and memory power are *measured* during benchmarking (cores
online but not executing) at each frequency and the measured values are
used directly as predictions.  Idle power is shared by all concurrently
running tasks; the scheduler attributes it proportionally using the
instantaneous task concurrency (section 5.3).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ModelError
from repro.profiling.dataset import IdleRecord


class IdlePowerModel:
    """Interpolated idle-power tables for the CPU and memory rails.

    CPU idle power is (to first order) a function of core frequency
    only, and memory idle power of memory frequency only; the
    characterisation averages over the other dimension.
    """

    def __init__(self, records: Iterable[IdleRecord]) -> None:
        records = list(records)
        if not records:
            raise ModelError("no idle records")
        cpu: dict[float, list[float]] = {}
        mem: dict[float, list[float]] = {}
        for r in records:
            cpu.setdefault(r.f_c, []).append(r.cpu_power)
            mem.setdefault(r.f_m, []).append(r.mem_power)
        self._fc = np.asarray(sorted(cpu))
        self._cpu = np.asarray([float(np.mean(cpu[f])) for f in self._fc])
        self._fm = np.asarray(sorted(mem))
        self._mem = np.asarray([float(np.mean(mem[f])) for f in self._fm])

    def cpu_idle(self, f_c: float) -> float:
        """Idle CPU-rail power with clusters at ``f_c`` (W)."""
        return float(np.interp(f_c, self._fc, self._cpu))

    def mem_idle(self, f_m: float) -> float:
        """Idle memory-rail power at ``f_m`` (W)."""
        return float(np.interp(f_m, self._fm, self._mem))

    def cpu_idle_grid(self, f_c_grid: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(f_c_grid, float), self._fc, self._cpu)

    def mem_idle_grid(self, f_m_grid: np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(f_m_grid, float), self._fm, self._mem)
