"""Performance model (paper section 4.2, Eqs. 1-2).

Total time decomposes as ``Time = Time_comp + Time_stall``.  Compute
time scales linearly with core frequency (Eq. 1); stall time is an MPR
over ``(MB, f_C/f_C', f_M/f_M')`` expressed as a *fraction of the
reference time* (Eq. 2).  One instance is fitted per ``<T_C, N_C>``.
"""

from __future__ import annotations

import numpy as np

from repro.models.mpr import PolynomialRegressor
from repro.models.tables import grid_mesh


class PerformanceModel:
    """Predicts task execution time under joint DVFS."""

    def __init__(self, f_c_ref: float, f_m_ref: float, degree: int = 2) -> None:
        #: Reference frequencies at which the input time is measured.
        self.f_c_ref = f_c_ref
        self.f_m_ref = f_m_ref
        self._stall = PolynomialRegressor(n_features=3, degree=degree)

    def fit(
        self,
        mb: np.ndarray,
        time_ref: np.ndarray,
        time_scaled: np.ndarray,
        f_c: np.ndarray,
        f_m: np.ndarray,
    ) -> "PerformanceModel":
        """Fit the stall regressor from profiled samples.

        Each row is one (kernel, f_C', f_M') measurement of a kernel
        whose reference time (at ``f_c_ref``, ``f_m_ref``) and MB
        estimate are given.  The regression target is the stall
        fraction: ``(Time' - Time'_comp) / Time``.
        """
        mb = np.asarray(mb, float)
        time_ref = np.asarray(time_ref, float)
        time_scaled = np.asarray(time_scaled, float)
        rc = self.f_c_ref / np.asarray(f_c, float)
        rm = self.f_m_ref / np.asarray(f_m, float)
        comp_scaled = time_ref * (1.0 - mb) * rc  # Eq. 1
        y = (time_scaled - comp_scaled) / time_ref
        x = np.column_stack([mb, rc, rm])
        self._stall.fit(x, y)
        return self

    def predict(
        self, mb: float, time_ref: float, f_c: float, f_m: float
    ) -> float:
        """Execution time at ``(f_c, f_m)`` for a task whose time at the
        reference frequencies is ``time_ref`` and whose MB is ``mb``."""
        rc = self.f_c_ref / f_c
        rm = self.f_m_ref / f_m
        t_comp = time_ref * (1.0 - mb) * rc
        t_stall = time_ref * self._stall.predict_one(mb, rc, rm)
        return t_comp + max(0.0, t_stall)

    def predict_grid(
        self,
        mb: float,
        time_ref: float,
        f_c_grid: np.ndarray,
        f_m_grid: np.ndarray,
        mesh: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Vectorised prediction over the full OPP grid.

        Returns an array of shape ``(len(f_c_grid), len(f_m_grid))`` —
        the per-kernel performance look-up table of section 5.1.

        ``mesh`` is an optional precomputed ``grid_mesh(f_c_grid,
        f_m_grid)``: callers building many tables over the same grids
        (every ``<T_C, N_C>`` of one cluster) share one mesh instead of
        re-running ``np.meshgrid`` per config.  The ratio columns are
        element-wise divisions of the same operand pairs either way, so
        the result is bit-identical with or without ``mesh``.
        """
        f_c_grid = np.asarray(f_c_grid, float)
        f_m_grid = np.asarray(f_m_grid, float)
        if mesh is None:
            mesh = grid_mesh(f_c_grid, f_m_grid)
        fc_r, fm_r = mesh
        shape = (f_c_grid.size, f_m_grid.size)
        rc_r = self.f_c_ref / fc_r
        rm_r = self.f_m_ref / fm_r
        x = np.column_stack([np.full(fc_r.size, mb), rc_r, rm_r])
        stall = np.maximum(0.0, self._stall.predict(x)).reshape(shape)
        comp = time_ref * (1.0 - mb) * rc_r.reshape(shape)
        return comp + time_ref * stall

    def predict_grid_batch(
        self,
        mbs: "list[float]",
        time_refs: "list[float]",
        f_c_grid: np.ndarray,
        f_m_grid: np.ndarray,
        mesh: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "list[np.ndarray]":
        """:meth:`predict_grid` for K kernels sharing one OPP grid.

        The K feature blocks are stacked so the polynomial expansion
        runs once over ``K * grid`` rows; the final regression product
        runs per block (see ``PolynomialRegressor.predict_blocks``), so
        each returned table is bit-identical to the corresponding
        :meth:`predict_grid` call.
        """
        f_c_grid = np.asarray(f_c_grid, float)
        f_m_grid = np.asarray(f_m_grid, float)
        if mesh is None:
            mesh = grid_mesh(f_c_grid, f_m_grid)
        fc_r, fm_r = mesh
        g = fc_r.size
        shape = (f_c_grid.size, f_m_grid.size)
        rc_r = self.f_c_ref / fc_r
        rm_r = self.f_m_ref / fm_r
        x = np.empty((len(mbs) * g, 3))
        for i, mb in enumerate(mbs):
            s = i * g
            x[s:s + g, 0] = mb
            x[s:s + g, 1] = rc_r
            x[s:s + g, 2] = rm_r
        raw = self._stall.predict_blocks(x, g)
        rc_grid = rc_r.reshape(shape)
        out = []
        for i, (mb, time_ref) in enumerate(zip(mbs, time_refs)):
            s = i * g
            stall = np.maximum(0.0, raw[s:s + g]).reshape(shape)
            comp = time_ref * (1.0 - mb) * rc_grid
            out.append(comp + time_ref * stall)
        return out

    @property
    def train_rmse(self) -> float:
        return self._stall.train_rmse
