"""PMC-free memory-boundness estimation (paper Eq. 3).

MB is the fraction of time the CPU is stalled on memory.  Instead of
hardware counters (unavailable/portable-hostile, section 4), the paper
samples a kernel's execution time at two core frequencies under a
fixed memory frequency and solves the linear-compute-scaling model:

    MB = (Time'/Time - f_C/f_C') / (1 - f_C/f_C')
"""

from __future__ import annotations

from repro.errors import ModelError


def estimate_mb(
    time_ref: float, time_scaled: float, f_c_ref: float, f_c_scaled: float
) -> float:
    """Estimate MB from two timed runs of the same kernel.

    Parameters
    ----------
    time_ref:
        Measured time at ``f_c_ref``.
    time_scaled:
        Measured time at ``f_c_scaled``.

    Returns the estimate clamped to [0, 1] (measurement noise can push
    the raw value slightly outside).
    """
    if time_ref <= 0 or time_scaled <= 0:
        raise ModelError("times must be positive")
    if abs(f_c_ref - f_c_scaled) < 1e-12:
        raise ModelError("the two sampling frequencies must differ")
    ratio = f_c_ref / f_c_scaled
    mb = (time_scaled / time_ref - ratio) / (1.0 - ratio)
    return min(1.0, max(0.0, mb))
