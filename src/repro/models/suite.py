"""Model suite: everything JOSS's scheduler needs for predictions.

Bundles the per-``<T_C, N_C>`` performance / CPU power / memory power
models, the idle-power characterisation and the reference frequencies,
and offers convenience predictors plus full-grid table builders
(feeding the per-kernel look-up tables of paper section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ModelError
from repro.models.cpu_power import CpuPowerModel
from repro.models.idle import IdlePowerModel
from repro.models.memory_power import MemoryPowerModel
from repro.models.performance import PerformanceModel
from repro.models.tables import PredictionTable, grid_mesh

#: Key identifying one resource configuration: (core type name, n_cores).
ConfigKey = tuple[str, int]


@dataclass
class ConfigModels:
    """The three MPR models for one ``<T_C, N_C>``.

    ``f_c_ref``/``f_c_sample`` are the two core frequencies at which
    this configuration's kernels are timed for MB estimation (Eq. 3).
    On homogeneous-ladder platforms (TX2: both clusters share the OPP
    table) they equal the suite-wide values; on platforms with
    per-cluster ladders (e.g. the ODROID XU4's A15 vs A7) each config
    carries its own.  ``0.0`` means "use the suite-wide value"
    (backwards compatibility for directly-constructed suites).
    """

    performance: PerformanceModel
    cpu_power: CpuPowerModel
    mem_power: MemoryPowerModel
    f_c_ref: float = 0.0
    f_c_sample: float = 0.0


class ModelSuite:
    """All fitted models for one platform."""

    def __init__(
        self,
        models: Mapping[ConfigKey, ConfigModels],
        idle: IdlePowerModel,
        f_c_ref: float,
        f_m_ref: float,
        f_c_sample: float,
        platform_name: str = "",
    ) -> None:
        if not models:
            raise ModelError("empty model suite")
        self.models = dict(models)
        self.idle = idle
        #: Reference frequencies of the performance model / sampling.
        self.f_c_ref = f_c_ref
        self.f_m_ref = f_m_ref
        #: Second core frequency used for runtime MB sampling (Eq. 3).
        self.f_c_sample = f_c_sample
        self.platform_name = platform_name

    def config(self, cluster: str, n_cores: int) -> ConfigModels:
        try:
            return self.models[(cluster, n_cores)]
        except KeyError:
            raise ModelError(
                f"no models for <{cluster}, {n_cores}> "
                f"(have {sorted(self.models)})"
            ) from None

    def config_keys(self) -> list[ConfigKey]:
        return list(self.models)

    def ref_freqs(self, cluster: str, n_cores: int) -> tuple[float, float]:
        """The (reference, sampling) core frequencies of one config —
        per-config where the platform has per-cluster ladders, else the
        suite-wide values."""
        cm = self.config(cluster, n_cores)
        ref = cm.f_c_ref or self.f_c_ref
        samp = cm.f_c_sample or self.f_c_sample
        return ref, samp

    # ------------------------------------------------------------------
    # Point predictions
    # ------------------------------------------------------------------
    def predict_time(
        self, cluster: str, n_cores: int, mb: float, time_ref: float,
        f_c: float, f_m: float,
    ) -> float:
        return self.config(cluster, n_cores).performance.predict(
            mb, time_ref, f_c, f_m
        )

    def predict_cpu_power(
        self, cluster: str, n_cores: int, mb: float, f_c: float
    ) -> float:
        return self.config(cluster, n_cores).cpu_power.predict(mb, f_c)

    def predict_mem_power(
        self, cluster: str, n_cores: int, mb: float, f_c: float, f_m: float
    ) -> float:
        return self.config(cluster, n_cores).mem_power.predict(mb, f_c, f_m)

    # ------------------------------------------------------------------
    # Sanity checking (run after load / fit)
    # ------------------------------------------------------------------
    def self_check(self) -> list[str]:
        """Cheap physical-plausibility probes of the fitted models.

        Returns a list of human-readable problems (empty = healthy):
        predictions must be positive, execution time must not *rise*
        with core frequency for a compute-bound probe, and CPU power
        must grow with frequency.  Run this after loading a serialized
        suite or fitting on a new platform.
        """
        problems: list[str] = []
        for (cluster, n_cores) in self.config_keys():
            ref, _ = self.ref_freqs(cluster, n_cores)
            lo = ref / 2
            for mb in (0.05, 0.5, 0.95):
                t_hi = self.predict_time(cluster, n_cores, mb, 0.01, ref, self.f_m_ref)
                t_lo = self.predict_time(cluster, n_cores, mb, 0.01, lo, self.f_m_ref)
                if t_hi <= 0 or t_lo <= 0:
                    problems.append(
                        f"<{cluster},{n_cores}> mb={mb}: non-positive time"
                    )
                elif mb < 0.3 and t_lo < t_hi:
                    problems.append(
                        f"<{cluster},{n_cores}> mb={mb}: faster at lower f_C"
                    )
                p_hi = self.predict_cpu_power(cluster, n_cores, mb, ref)
                p_lo = self.predict_cpu_power(cluster, n_cores, mb, lo)
                if p_hi < 0 or p_lo < 0:
                    problems.append(
                        f"<{cluster},{n_cores}> mb={mb}: negative CPU power"
                    )
                elif p_hi < p_lo:
                    problems.append(
                        f"<{cluster},{n_cores}> mb={mb}: CPU power falls with f_C"
                    )
                if self.predict_mem_power(
                    cluster, n_cores, mb, ref, self.f_m_ref
                ) < 0:
                    problems.append(
                        f"<{cluster},{n_cores}> mb={mb}: negative memory power"
                    )
        if self.idle.cpu_idle(self.f_c_ref) <= 0:
            problems.append("idle CPU power non-positive")
        if self.idle.mem_idle(self.f_m_ref) <= 0:
            problems.append("idle memory power non-positive")
        return problems

    # ------------------------------------------------------------------
    # Full-grid tables (per-kernel LUTs, paper section 5.1)
    # ------------------------------------------------------------------
    def build_table(
        self,
        cluster: str,
        n_cores: int,
        mb: float,
        time_ref: float,
        f_c_grid: np.ndarray,
        f_m_grid: np.ndarray,
        mesh: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> PredictionTable:
        """Build the three-table triple for one (kernel, T_C, N_C).

        CPU power depends only on ``f_C`` (Eq. 4), so it is stored as a
        broadcastable ``(n_fc, 1)`` column rather than a materialised
        ``(n_fc, n_fm)`` grid.  ``mesh`` optionally shares one
        precomputed ``grid_mesh`` across the tables of a cluster.
        """
        cm = self.config(cluster, n_cores)
        f_c_grid = np.asarray(f_c_grid, float)
        f_m_grid = np.asarray(f_m_grid, float)
        if mesh is None:
            mesh = grid_mesh(f_c_grid, f_m_grid)
        time = cm.performance.predict_grid(
            mb, time_ref, f_c_grid, f_m_grid, mesh=mesh
        )
        cpu = cm.cpu_power.predict_grid(mb, f_c_grid)
        mem = cm.mem_power.predict_grid(mb, f_c_grid, f_m_grid, mesh=mesh)
        return PredictionTable(
            cluster=cluster,
            n_cores=n_cores,
            mb=mb,
            time_ref=time_ref,
            f_c_grid=f_c_grid,
            f_m_grid=f_m_grid,
            time=time,
            cpu_power=cpu[:, None],
            mem_power=mem,
            idle_cpu=self.idle.cpu_idle_grid(f_c_grid),
            idle_mem=self.idle.mem_idle_grid(f_m_grid),
        )

    def build_tables(
        self,
        params: Mapping[ConfigKey, tuple[float, float]],
        grids: Mapping[str, tuple[np.ndarray, np.ndarray]],
    ) -> dict[ConfigKey, PredictionTable]:
        """Build every config's table for one kernel in a single call.

        ``params`` maps each ``(cluster, n_cores)`` to its
        ``(mb, time_ref)``; ``grids`` maps each cluster name to its
        ``(f_c_grid, f_m_grid)``.  The raveled OPP mesh is built once
        per cluster and shared across that cluster's ``<T_C, N_C>``
        configs — the same predictions as config-by-config
        :meth:`build_table` calls, minus the repeated mesh setup.
        """
        meshes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        arr_grids: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        out: dict[ConfigKey, PredictionTable] = {}
        for key, (mb, time_ref) in params.items():
            cluster, n_cores = key
            if cluster not in meshes:
                fc, fm = grids[cluster]
                fc = np.asarray(fc, float)
                fm = np.asarray(fm, float)
                arr_grids[cluster] = (fc, fm)
                meshes[cluster] = grid_mesh(fc, fm)
            fc, fm = arr_grids[cluster]
            out[key] = self.build_table(
                cluster, n_cores, mb, time_ref, fc, fm, mesh=meshes[cluster]
            )
        return out

    def build_tables_batch(
        self,
        kernel_params: Mapping[str, Mapping[ConfigKey, tuple[float, float]]],
        grids: Mapping[str, tuple[np.ndarray, np.ndarray]],
    ) -> dict[str, dict[ConfigKey, PredictionTable]]:
        """Build every kernel's every-config table set in one pass.

        ``kernel_params`` maps kernel name -> the per-config
        ``(mb, time_ref)`` mapping that :meth:`build_tables` takes.  All
        kernels sharing a ``<T_C, N_C>`` config are evaluated through
        one stacked model invocation per model (the polynomial feature
        expansion — the dominant cost — runs once over all kernels'
        rows; see ``PolynomialRegressor.predict_blocks``), and the idle
        grids are computed once per cluster instead of once per table.
        Every returned :class:`PredictionTable` is bit-identical to the
        one :meth:`build_tables` would produce, in the same per-kernel
        config order.
        """
        meshes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        arr_grids: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        idle_cpu: dict[str, np.ndarray] = {}
        idle_mem: dict[str, np.ndarray] = {}
        # Regroup kernel-major -> config-major: the batch axis is "all
        # kernels needing this <T_C, N_C>".
        by_key: dict[ConfigKey, list[tuple[str, float, float]]] = {}
        for kname, params in kernel_params.items():
            for key, (mb, time_ref) in params.items():
                by_key.setdefault(key, []).append((kname, mb, time_ref))
        built: dict[str, dict[ConfigKey, PredictionTable]] = {
            kname: {} for kname in kernel_params
        }
        for key, entries in by_key.items():
            cluster, n_cores = key
            if cluster not in meshes:
                fc, fm = grids[cluster]
                fc = np.asarray(fc, float)
                fm = np.asarray(fm, float)
                arr_grids[cluster] = (fc, fm)
                meshes[cluster] = grid_mesh(fc, fm)
                idle_cpu[cluster] = self.idle.cpu_idle_grid(fc)
                idle_mem[cluster] = self.idle.mem_idle_grid(fm)
            fc, fm = arr_grids[cluster]
            mesh = meshes[cluster]
            cm = self.config(cluster, n_cores)
            mbs = [mb for _, mb, _ in entries]
            trefs = [tr for _, _, tr in entries]
            times = cm.performance.predict_grid_batch(
                mbs, trefs, fc, fm, mesh=mesh
            )
            cpus = cm.cpu_power.predict_grid_batch(mbs, fc)
            mems = cm.mem_power.predict_grid_batch(mbs, fc, fm, mesh=mesh)
            for (kname, mb, tref), time, cpu, mem in zip(
                entries, times, cpus, mems
            ):
                built[kname][key] = PredictionTable(
                    cluster=cluster,
                    n_cores=n_cores,
                    mb=mb,
                    time_ref=tref,
                    f_c_grid=fc,
                    f_m_grid=fm,
                    time=time,
                    cpu_power=cpu[:, None],
                    mem_power=mem,
                    idle_cpu=idle_cpu[cluster],
                    idle_mem=idle_mem[cluster],
                )
        # Re-emit each kernel's tables in its own param order so dict
        # iteration (which selection tie-breaks depend on) matches the
        # scalar per-kernel build_tables exactly.
        return {
            kname: {key: built[kname][key] for key in params}
            for kname, params in kernel_params.items()
        }
