"""JOSS prediction models (paper section 4).

Three multivariate-polynomial-regression (MPR) models per
``<T_C, N_C>`` resource configuration, fitted from the synthetic
profiling dataset:

- performance model (Eqs. 1-3): execution time under joint
  core/memory frequency scaling, driven by memory-boundness (MB);
- CPU power model (Eq. 4): dynamic CPU power from (MB, f_C);
- memory power model (Eq. 5): dynamic memory power from (MB, f_C, f_M);

plus the idle-power characterisation (section 4.3.3) and the
PMC-free MB estimator (Eq. 3) used at runtime.
"""

from repro.models.mpr import Poly2Regressor, PolynomialRegressor
from repro.models.mb import estimate_mb
from repro.models.performance import PerformanceModel
from repro.models.cpu_power import CpuPowerModel
from repro.models.memory_power import MemoryPowerModel
from repro.models.idle import IdlePowerModel
from repro.models.suite import ConfigModels, ModelSuite
from repro.models.training import fit_models, profile_and_fit
from repro.models.tables import PredictionTable
from repro.models.io import load_suite, save_suite

__all__ = [
    "Poly2Regressor",
    "PolynomialRegressor",
    "estimate_mb",
    "PerformanceModel",
    "CpuPowerModel",
    "MemoryPowerModel",
    "IdlePowerModel",
    "ConfigModels",
    "ModelSuite",
    "fit_models",
    "profile_and_fit",
    "PredictionTable",
    "save_suite",
    "load_suite",
]
