"""Memory power model (paper section 4.3.2, Eq. 5).

Dynamic memory power depends on all three factors — MB, core frequency
(issue rate) and memory frequency — so the MPR takes ``(MB, f_C, f_M)``.
One instance per ``<T_C, N_C>``.
"""

from __future__ import annotations

import numpy as np

from repro.models.mpr import PolynomialRegressor
from repro.models.tables import grid_mesh


class MemoryPowerModel:
    """Predicts dynamic memory power of a task from (MB, f_C, f_M)."""

    def __init__(self, degree: int = 2) -> None:
        self._reg = PolynomialRegressor(n_features=3, degree=degree)

    def fit(
        self,
        mb: np.ndarray,
        f_c: np.ndarray,
        f_m: np.ndarray,
        power: np.ndarray,
    ) -> "MemoryPowerModel":
        x = np.column_stack(
            [np.asarray(mb, float), np.asarray(f_c, float), np.asarray(f_m, float)]
        )
        self._reg.fit(x, np.asarray(power, float))
        return self

    def predict(self, mb: float, f_c: float, f_m: float) -> float:
        return max(0.0, self._reg.predict_one(mb, f_c, f_m))

    def predict_grid(
        self,
        mb: float,
        f_c_grid: np.ndarray,
        f_m_grid: np.ndarray,
        mesh: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """(len(f_c_grid), len(f_m_grid)) grid of power predictions.

        ``mesh`` optionally supplies a precomputed ``grid_mesh`` of the
        two grids (shared across the configs of one cluster); results
        are identical with or without it.
        """
        f_c_grid = np.asarray(f_c_grid, float)
        f_m_grid = np.asarray(f_m_grid, float)
        if mesh is None:
            mesh = grid_mesh(f_c_grid, f_m_grid)
        fc_r, fm_r = mesh
        shape = (f_c_grid.size, f_m_grid.size)
        x = np.column_stack([np.full(fc_r.size, mb), fc_r, fm_r])
        return np.maximum(0.0, self._reg.predict(x)).reshape(shape)

    def predict_grid_batch(
        self,
        mbs: "list[float]",
        f_c_grid: np.ndarray,
        f_m_grid: np.ndarray,
        mesh: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "list[np.ndarray]":
        """:meth:`predict_grid` for K kernels over one shared OPP grid —
        expansion batched, regression product per block, results
        bit-identical to per-kernel calls."""
        f_c_grid = np.asarray(f_c_grid, float)
        f_m_grid = np.asarray(f_m_grid, float)
        if mesh is None:
            mesh = grid_mesh(f_c_grid, f_m_grid)
        fc_r, fm_r = mesh
        g = fc_r.size
        shape = (f_c_grid.size, f_m_grid.size)
        x = np.empty((len(mbs) * g, 3))
        for i, mb in enumerate(mbs):
            s = i * g
            x[s:s + g, 0] = mb
            x[s:s + g, 1] = fc_r
            x[s:s + g, 2] = fm_r
        raw = self._reg.predict_blocks(x, g)
        return [
            np.maximum(0.0, raw[i * g:(i + 1) * g]).reshape(shape)
            for i in range(len(mbs))
        ]

    @property
    def train_rmse(self) -> float:
        return self._reg.train_rmse
