"""The hot-path microbenchmarks behind ``repro perf``.

Eight benchmarks, one per layer of the simulation-and-orchestration
hot path:

``event_loop``
    Raw :class:`~repro.sim.engine.Simulator` throughput (events/sec):
    self-rescheduling callback chains plus a cancellation stream, so
    both heap push/pop and tombstone handling are on the clock.
``state_changed``
    Latency of one state-change notification (``ExecutionEngine
    ._state_changed``) with every TX2 core busy, driven through real
    DVFS transitions so frequencies genuinely change between calls.
    Re-timing is deferred (notifications between event pops coalesce
    into one flush), so this is the cost of *marking*: coefficient
    refresh + dirty-flagging.  The flush itself is ``retime``'s clock.
``retime``
    Latency of one deferred incremental re-timing flush: a DVFS
    transition on one cluster followed by a power read that forces the
    flush — dirty-scan, per-activity breakdown refresh, contention
    re-derivation, completion-deadline maintenance, and the exact
    energy-accountant update, i.e. the full ``_retime`` pass the
    simulator runs before the next event pop.
``mpr_predict``
    :class:`~repro.models.mpr.PolynomialRegressor` throughput over a
    mix of batch ``predict`` and scalar ``predict_one`` calls (the two
    shapes the schedulers use).
``batch_decision``
    Kernel-decisions/s of the vectorised decision pipeline
    (:func:`repro.core.batch.resolve_kernels`: batched LUT build +
    batched config selection) over a realistic multi-kernel workload's
    parameters; the scalar reference flow (``suite.build_tables`` +
    ``goal.select`` per kernel) is measured alongside and the ratio
    recorded as ``params["speedup_vs_scalar"]``.
``fig8_end_to_end``
    Wall time of a fig8-style scheduler × workload matrix through the
    full stack (model fit excluded — it is a one-off install-time cost
    in the paper's methodology and is warmed before the clock starts).
``sweep_throughput``
    Jobs/s of a fine-grained (>= 64 small jobs) parallel grid through
    ``repro.sweep`` with the warm chunked pool, cache disabled; the
    legacy cold-pool per-job-future dispatch is measured alongside and
    the ratio recorded as ``params["speedup_vs_legacy"]``.
``obs_overhead``
    End-to-end run throughput with the observability layer compiled in
    but *silent* (no subscriber — the zero-cost guarded-emit path that
    PR 5 promises), measured against the same runs with a subscribed
    no-op observer; ``params["subscribed_over_silent"]`` records the
    slowdown a live subscriber costs.

Every benchmark is deterministic: fixed seeds, fixed iteration counts,
no wall-clock-dependent control flow.  Only the measured durations
vary with the host.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.perf.harness import BenchRecord, PerfError

#: Benchmark registry order == report order.  ``sweep_throughput``
#: runs first on purpose: its legacy side forks workers that lazily
#: import the simulator stack (exactly what every pre-change sweep
#: process paid), so it must fork from a parent that has not yet been
#: warmed by the other benchmarks.
BENCHMARKS = (
    "sweep_throughput", "event_loop", "state_changed", "retime",
    "mpr_predict", "batch_decision", "fig8_end_to_end", "obs_overhead",
)

_FIG8_QUICK = {"workloads": ("hd-small",), "schedulers": ("GRWS", "JOSS")}
_FIG8_FULL = {
    "workloads": ("hd-small", "dp", "slu"),
    "schedulers": ("GRWS", "ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS", "JOSS"),
}


def _best(repeats: int, fn: Callable[[], float]) -> tuple[float, list[float]]:
    """Run ``fn`` (returns elapsed seconds) ``repeats`` times; return
    the minimum and all raw timings."""
    raw = [fn() for _ in range(repeats)]
    return min(raw), raw


# ----------------------------------------------------------------------
# event_loop
# ----------------------------------------------------------------------
def bench_event_loop(quick: bool = False) -> BenchRecord:
    from repro.sim.engine import Simulator

    n_events = 20_000 if quick else 100_000
    chains = 16
    repeats = 3

    def one_pass() -> float:
        sim = Simulator()
        pending: list = []

        def tick(chain: int) -> None:
            # Re-arm the chain and keep a rolling window of events that
            # get cancelled two ticks later — the tombstone pattern the
            # execution engine produces when it reschedules deadlines.
            ev = sim.schedule(0.001 * (chain + 1), tick, chain, priority=chain % 3)
            pending.append(ev)
            if len(pending) > 2 * chains:
                pending.pop(0).cancel()

        for c in range(chains):
            tick(c)
        t0 = time.perf_counter()
        sim.run(max_events=n_events)
        return time.perf_counter() - t0

    best, raw = _best(repeats, one_pass)
    return BenchRecord(
        name="event_loop",
        metric="throughput",
        unit="events/s",
        value=n_events / best,
        higher_is_better=True,
        repeats=repeats,
        raw=raw,
        params={"n_events": n_events, "chains": chains},
    )


# ----------------------------------------------------------------------
# state_changed
# ----------------------------------------------------------------------
def _busy_engine():
    """A TX2 execution engine with every core running a distinct kernel."""
    from repro.exec_model.engine import ExecutionEngine
    from repro.exec_model.kernels import KernelSpec
    from repro.hw.platform import jetson_tx2
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStreams

    sim = Simulator()
    platform = jetson_tx2()
    engine = ExecutionEngine(sim, platform, RngStreams(seed=7))
    i = 0
    for cl in platform.clusters:
        for core in cl.cores:
            kernel = KernelSpec(
                name=f"bench.k{i}",
                w_comp=0.5 + 0.1 * i,
                w_bytes=0.02 + 0.005 * i,
                type_affinity={"denver": 1.3},
            )
            engine.start_activity(kernel, core)
            i += 1
    return engine, platform


def bench_state_changed(quick: bool = False) -> BenchRecord:
    n_calls = 400 if quick else 2_000
    repeats = 3

    def one_pass() -> float:
        engine, platform = _busy_engine()
        cluster = platform.clusters[0]
        freqs = cluster.opps.as_array()
        lo, hi = float(freqs[0]), float(freqs[-1])
        t0 = time.perf_counter()
        for i in range(n_calls):
            # Each set_freq fires the engine's freq-change callback,
            # which is one full _state_changed pass over 6 activities.
            cluster.set_freq(lo if i % 2 else hi)
        elapsed = time.perf_counter() - t0
        engine.abort_all()
        return elapsed

    best, raw = _best(repeats, one_pass)
    return BenchRecord(
        name="state_changed",
        metric="latency",
        unit="us/call",
        value=best / n_calls * 1e6,
        higher_is_better=False,
        repeats=repeats,
        raw=raw,
        params={"n_calls": n_calls, "n_activities": 6},
    )


# ----------------------------------------------------------------------
# retime
# ----------------------------------------------------------------------
def bench_retime(quick: bool = False) -> BenchRecord:
    """One full deferred re-timing flush per iteration.

    Each iteration changes one cluster's frequency (marking that
    cluster's activities dirty and deferring) and immediately reads
    rail power, which forces the flush: the dirty scan, breakdown
    refresh for the re-clocked activities, contention re-derivation
    (the demand shift moves the global factor, widening the affected
    set), deadline maintenance on the calendar, and the accountant
    update.  This is exactly the pass ``Simulator._pop_live`` triggers
    before the next event fires, isolated from the event loop.
    """
    n_calls = 400 if quick else 2_000
    repeats = 3

    def one_pass() -> float:
        engine, platform = _busy_engine()
        cluster = platform.clusters[0]
        freqs = cluster.opps.as_array()
        lo, hi = float(freqs[0]), float(freqs[-1])
        read = engine.rail_powers_pair
        t0 = time.perf_counter()
        for i in range(n_calls):
            cluster.set_freq(lo if i % 2 else hi)
            read()  # forces the deferred incremental flush
        elapsed = time.perf_counter() - t0
        engine.abort_all()
        return elapsed

    best, raw = _best(repeats, one_pass)
    return BenchRecord(
        name="retime",
        metric="latency",
        unit="us/flush",
        value=best / n_calls * 1e6,
        higher_is_better=False,
        repeats=repeats,
        raw=raw,
        params={"n_calls": n_calls, "n_activities": 6},
    )


# ----------------------------------------------------------------------
# mpr_predict
# ----------------------------------------------------------------------
def bench_mpr_predict(quick: bool = False) -> BenchRecord:
    from repro.models.mpr import PolynomialRegressor

    batch = 256
    n_iters = 40 if quick else 200
    repeats = 3

    rng = np.random.default_rng(12345)
    x_train = rng.uniform(0.1, 2.0, size=(200, 3))
    y_train = (
        1.5 * x_train[:, 0]
        + 0.7 * x_train[:, 1] * x_train[:, 2]
        + 0.2 * x_train[:, 0] ** 2
    )
    reg = PolynomialRegressor(n_features=3, degree=2)
    reg.fit(x_train, y_train)
    x_batch = rng.uniform(0.1, 2.0, size=(batch, 3))
    x_rows = [tuple(x_batch[i]) for i in range(batch)]

    def one_pass() -> float:
        t0 = time.perf_counter()
        for _ in range(n_iters):
            reg.predict(x_batch)
            for row in x_rows:
                reg.predict_one(*row)
        return time.perf_counter() - t0

    best, raw = _best(repeats, one_pass)
    n_predictions = n_iters * batch * 2  # batch rows + scalar calls
    return BenchRecord(
        name="mpr_predict",
        metric="throughput",
        unit="predictions/s",
        value=n_predictions / best,
        higher_is_better=True,
        repeats=repeats,
        raw=raw,
        params={"batch": batch, "n_iters": n_iters, "degree": 2},
    )


# ----------------------------------------------------------------------
# batch_decision
# ----------------------------------------------------------------------
def _decision_inputs(n_kernels: int):
    """Suite + per-kernel sampling parameters + OPP grids, shaped
    exactly like a JOSS ``_resolve_kernel`` sees them (one ``(mb,
    time_ref)`` pair per ``<T_C, N_C>`` config, one frequency mesh per
    cluster)."""
    from repro.hw.platform import jetson_tx2
    from repro.models.training import profile_and_fit

    suite = profile_and_fit(jetson_tx2, seed=0)
    platform = jetson_tx2()
    grids: dict = {}
    for cl_name, _n in suite.config_keys():
        if cl_name not in grids:
            cluster = platform.cluster_by_type(cl_name)
            grids[cl_name] = (
                cluster.opps.as_array(),
                platform.memory.opps.as_array(),
            )
    rng = np.random.default_rng(2024)
    kernel_params = {
        f"bench.k{i:02d}": {
            key: (
                float(rng.uniform(0.05, 0.95)),  # memory-boundedness
                float(rng.uniform(0.002, 0.050)),  # reference time (s)
            )
            for key in suite.config_keys()
        }
        for i in range(n_kernels)
    }
    concurrency = {
        key: float(1.0 + idx % 3)
        for idx, key in enumerate(suite.config_keys())
    }
    return suite, kernel_params, grids, concurrency


def bench_batch_decision(quick: bool = False) -> BenchRecord:
    """Decisions/s of the batch pipeline vs the scalar reference flow.

    One "decision" is a kernel's full resolve: populate its prediction
    tables for every ``<T_C, N_C>`` config over the OPP mesh, run the
    goal's selection, and extract the chosen frequencies.  The batch
    side resolves all kernels in one :func:`resolve_kernels` call; the
    scalar side loops ``suite.build_tables`` + ``goal.select`` kernel
    by kernel.  Both sides are verified bit-identical by
    ``tests/core/test_batch_equivalence.py``, so this benchmark only
    has speed on the clock.  Passes are interleaved scalar/batch so
    host drift hits both alike; ``speedup_vs_scalar`` is the median
    pairwise ratio.
    """
    from repro.core.batch import resolve_kernels
    from repro.core.goals import MinTotalEnergy

    n_kernels = 6 if quick else 24
    n_iters = 4 if quick else 10
    repeats = 3
    goal = MinTotalEnergy()
    suite, kernel_params, grids, conc = _decision_inputs(n_kernels)

    def batch_pass() -> float:
        t0 = time.perf_counter()
        for _ in range(n_iters):
            resolve_kernels(
                suite, kernel_params, grids, goal, "steepest", conc
            )
        return time.perf_counter() - t0

    def scalar_pass() -> float:
        t0 = time.perf_counter()
        for _ in range(n_iters):
            for params in kernel_params.values():
                tables = suite.build_tables(params, grids)
                sel = goal.select(tables, "steepest", concurrency=conc)
                sel.freqs(tables)
        return time.perf_counter() - t0

    batch_pass()  # warm-up: NumPy allocator, expand() term plans
    raw: list[float] = []
    scalar_raw: list[float] = []
    for _ in range(repeats):
        scalar_raw.append(scalar_pass())
        raw.append(batch_pass())
    best = min(raw)
    ratios = sorted(s / b for s, b in zip(scalar_raw, raw))
    speedup = ratios[len(ratios) // 2]
    n_decisions = n_iters * n_kernels

    return BenchRecord(
        name="batch_decision",
        metric="throughput",
        unit="decisions/s",
        value=n_decisions / best,
        higher_is_better=True,
        repeats=repeats,
        raw=raw,
        params={
            "n_kernels": n_kernels,
            "n_iters": n_iters,
            "goal": "MinTotalEnergy",
            "selector": "steepest",
            "scalar_raw": scalar_raw,
            "scalar_decisions_per_s": n_decisions / min(scalar_raw),
            "speedup_vs_scalar": speedup,
        },
    )


# ----------------------------------------------------------------------
# fig8_end_to_end
# ----------------------------------------------------------------------
def bench_fig8_end_to_end(quick: bool = False) -> BenchRecord:
    from repro.bench.runner import BenchConfig, run as bench_run

    shape = _FIG8_QUICK if quick else _FIG8_FULL
    # Wall-time minima need more repeats than the microbenchmarks: a
    # single busy neighbour on the host inflates one 0.6 s run far more
    # than one 0.2 s event-loop pass.
    repeats = 1 if quick else 4
    cfg = BenchConfig(repetitions=1)
    # Model fitting is the paper's install-time characterisation — warm
    # it (and the global profile_and_fit cache) outside the clock.
    cfg.suite()

    def one_pass() -> float:
        t0 = time.perf_counter()
        bench_run(
            (list(shape["workloads"]), list(shape["schedulers"])), config=cfg
        )
        return time.perf_counter() - t0

    best, raw = _best(repeats, one_pass)
    return BenchRecord(
        name="fig8_end_to_end",
        metric="wall_time",
        unit="s",
        value=best,
        higher_is_better=False,
        repeats=repeats,
        raw=raw,
        params={
            "workloads": list(shape["workloads"]),
            "schedulers": list(shape["schedulers"]),
            "repetitions": 1,
        },
    )


# ----------------------------------------------------------------------
# sweep_throughput
# ----------------------------------------------------------------------
def _legacy_sweep_worker(spec_dict: dict, suite_path) -> dict:
    """One-job-per-future worker, the pre-warm-pool execution unit."""
    from repro.sweep.pool import run_chunk

    out = run_chunk([spec_dict], [suite_path])[0]
    if not out["ok"]:
        raise PerfError(out["error"])
    return out["metrics"]


def _legacy_parallel_sweep(jobs, workers: int) -> dict:
    """The pre-change ``_run_parallel`` dispatch shape, kept verbatim
    as the benchmark's before side: a fresh ``ProcessPoolExecutor`` per
    sweep, one pickled future per job, in-flight futures capped at the
    worker count (so every completion takes a parent round-trip before
    the next job starts), and the same parent-side bookkeeping
    ``run_sweep`` performs (job hashing, metrics deserialisation).
    """
    from collections import deque
    from concurrent.futures import (
        FIRST_COMPLETED,
        ProcessPoolExecutor,
        wait,
    )

    from repro.runtime.metrics import RunMetrics

    queue = deque((job, job.job_hash) for job in jobs)
    in_flight: dict = {}
    results: dict = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        while queue or in_flight:
            while queue and len(in_flight) < workers:
                job, h = queue.popleft()
                fut = pool.submit(_legacy_sweep_worker, job.to_dict(), None)
                in_flight[fut] = (job, h)
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for fut in done:
                job, h = in_flight.pop(fut)
                results[h] = RunMetrics.from_dict(fut.result())
    return results


def bench_sweep_throughput(quick: bool = False) -> BenchRecord:
    """Jobs/s of a fine-grained parallel grid through ``run_sweep``.

    A >= 64-job grid of very small runs (``hd-small`` at scale 0.25,
    a few ms of simulation each) with the cache disabled, so dispatch
    overhead — forking, pickling, per-future IPC, retry bookkeeping —
    is what's actually on the clock.  The value is the warm chunked
    pool's throughput; the same grid is also driven through a verbatim
    copy of the pre-change dispatcher (:func:`_legacy_parallel_sweep`:
    cold single-use pool, one future per job, in-flight capped at the
    worker count) on the same worker count, and the ratio is recorded
    in ``params`` as ``speedup_vs_legacy``.

    The worker count (6, a realistic CLI fan-out) deliberately exceeds
    the probable core count: legacy dispatch cost grows with workers
    (one fork + lazy simulator-stack import per worker per sweep, one
    parent round-trip per job) while the warm pool amortises all of it
    across sweeps, which is precisely the difference on the clock.
    """
    from repro.sweep import SweepSpec, run_sweep, shutdown_warm_pool

    n_reps = 64 if quick else 96
    spec = SweepSpec(
        ["hd-small"], ["GRWS"], scales=(0.25,), repetitions=n_reps, seed=11
    )
    jobs = list(spec.jobs())
    n_jobs = len(jobs)
    workers = 6
    repeats = 3

    def sweep_once() -> float:
        t0 = time.perf_counter()
        result = run_sweep(spec, workers=workers, cache=None)
        elapsed = time.perf_counter() - t0
        if result.failures:
            raise PerfError(
                f"sweep_throughput grid failed: {result.failures[0].error}"
            )
        return elapsed

    def legacy_once() -> float:
        t0 = time.perf_counter()
        results = _legacy_parallel_sweep(jobs, workers)
        elapsed = time.perf_counter() - t0
        if len(results) != n_jobs:
            raise PerfError("sweep_throughput legacy pass lost jobs")
        return elapsed

    # The two shapes are measured in interleaved legacy/warm pairs so
    # host-state drift (frequency scaling, background load) hits both
    # sides of each pair alike; the recorded speedup is the median of
    # the pairwise ratios, which a single noisy window cannot skew.
    # The warm pool is forked+warmed once outside the clock and then
    # reused (the `repro sweep` default); every legacy pass forks its
    # own fresh pool, exactly as every pre-change sweep did.
    shutdown_warm_pool()
    sweep_once()  # warm-up: fork the pool, prime the cost estimate
    raw: list[float] = []
    legacy_raw: list[float] = []
    for _ in range(repeats):
        legacy_raw.append(legacy_once())
        raw.append(sweep_once())
    shutdown_warm_pool()
    best = min(raw)
    legacy_best = min(legacy_raw)
    ratios = sorted(le / we for le, we in zip(legacy_raw, raw))
    speedup = ratios[len(ratios) // 2]

    return BenchRecord(
        name="sweep_throughput",
        metric="throughput",
        unit="jobs/s",
        value=n_jobs / best,
        higher_is_better=True,
        repeats=repeats,
        raw=raw,
        params={
            "jobs": n_jobs,
            "workers": workers,
            "workload": "hd-small",
            "scale": 0.25,
            "legacy_jobs_per_s": n_jobs / legacy_best,
            "legacy_raw": legacy_raw,
            "speedup_vs_legacy": speedup,
        },
    )


# ----------------------------------------------------------------------
# obs_overhead
# ----------------------------------------------------------------------
def bench_obs_overhead(quick: bool = False) -> BenchRecord:
    """Cost of the observability layer on the end-to-end hot path.

    The headline value is *silent* throughput: full ``run_one`` passes
    (simulator + runtime + scheduler, every ``bus.active`` guard on the
    clock) with no observer installed — the configuration the PR-3/PR-4
    perf gates run in, which must not regress just because emit sites
    now exist.  The same runs are then repeated under an installed
    observer whose subscriber is a no-op counter, and the pairwise
    median slowdown is recorded as ``params["subscribed_over_silent"]``
    (expected small but > 1: event dicts genuinely get built).

    Silent and subscribed passes are interleaved so host drift hits
    both alike, mirroring ``sweep_throughput``'s pairing scheme.
    """
    from repro.bench.runner import BenchConfig, run_one
    from repro.obs.api import observe

    n_runs = 4 if quick else 10
    repeats = 3
    cfg = BenchConfig(scale=0.5, repetitions=1)

    def silent_pass() -> float:
        t0 = time.perf_counter()
        for rep in range(n_runs):
            run_one("hd-small", "GRWS", cfg, repetition=rep)
        return time.perf_counter() - t0

    obs = observe()
    delivered = 0

    def _sink(event) -> None:
        nonlocal delivered
        delivered += 1

    obs.bus.subscribe(_sink)

    def subscribed_pass() -> float:
        with obs.as_current():
            t0 = time.perf_counter()
            for rep in range(n_runs):
                run_one("hd-small", "GRWS", cfg, repetition=rep)
            return time.perf_counter() - t0

    silent_pass()  # warm-up: workload/platform construction caches
    raw: list[float] = []
    sub_raw: list[float] = []
    for _ in range(repeats):
        raw.append(silent_pass())
        sub_raw.append(subscribed_pass())
    best = min(raw)
    ratios = sorted(s / b for s, b in zip(sub_raw, raw))
    slowdown = ratios[len(ratios) // 2]

    return BenchRecord(
        name="obs_overhead",
        metric="throughput",
        unit="runs/s",
        value=n_runs / best,
        higher_is_better=True,
        repeats=repeats,
        raw=raw,
        params={
            "n_runs": n_runs,
            "workload": "hd-small",
            "scheduler": "GRWS",
            "scale": 0.5,
            "subscribed_raw": sub_raw,
            "subscribed_runs_per_s": n_runs / min(sub_raw),
            "subscribed_over_silent": slowdown,
            "events_per_run": delivered // (repeats * n_runs),
        },
    )


_RUNNERS: dict[str, Callable[[bool], BenchRecord]] = {
    "event_loop": bench_event_loop,
    "state_changed": bench_state_changed,
    "retime": bench_retime,
    "mpr_predict": bench_mpr_predict,
    "batch_decision": bench_batch_decision,
    "fig8_end_to_end": bench_fig8_end_to_end,
    "sweep_throughput": bench_sweep_throughput,
    "obs_overhead": bench_obs_overhead,
}


def run_benchmarks(
    quick: bool = False,
    benchmarks: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, BenchRecord]:
    """Run the selected benchmarks (all, in registry order, by default)."""
    names = tuple(benchmarks) if benchmarks is not None else BENCHMARKS
    unknown = [n for n in names if n not in _RUNNERS]
    if unknown:
        raise PerfError(
            f"unknown benchmark(s) {unknown}; available: {list(BENCHMARKS)}"
        )
    records: dict[str, BenchRecord] = {}
    for name in names:
        if progress is not None:
            progress(name)
        records[name] = _RUNNERS[name](quick)
    return records
