"""Perf-report plumbing: stable result schema, baselines, CI gate.

A perf run produces a :class:`PerfReport` — one :class:`BenchRecord`
per microbenchmark plus provenance (git revision, timestamp, quick
mode).  The JSON schema is stable and versioned so reports recorded at
different commits stay comparable; ``speedups`` against a recorded
baseline are part of the emitted document (the perf trajectory).

The CI regression gate (:func:`gate_against_baseline`) compares one
fresh report against the checked-in baseline and fails when a gated
metric regressed more than the allowed fraction.  Thresholds are
deliberately loose (default 30%) because absolute timings move with
the host machine; the gate catches order-of-magnitude slips, not
single-digit noise.
"""

from __future__ import annotations

import datetime as _dt
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.version import __version__

#: Bump when the JSON document layout changes incompatibly.
SCHEMA_VERSION = 1


class PerfError(ReproError):
    """Malformed perf report / baseline."""


def git_rev(repo_dir: Optional[str] = None) -> str:
    """Short git revision of the working tree (``"unknown"`` outside a
    checkout — perf reports must still be writable from an sdist)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


@dataclass
class BenchRecord:
    """One microbenchmark measurement.

    ``value`` is the representative result (best repeat: min for
    time-like metrics, max for throughput-like ones); ``raw`` keeps
    every repeat for variance inspection.
    """

    name: str
    metric: str
    unit: str
    value: float
    higher_is_better: bool
    repeats: int
    raw: list[float] = field(default_factory=list)
    #: Benchmark knobs (sizes, iteration counts) for reproducibility.
    params: dict = field(default_factory=dict)

    def ratio_vs(self, baseline: "BenchRecord") -> float:
        """Improvement factor vs ``baseline``: > 1 means this record is
        better, regardless of metric direction."""
        if baseline.value <= 0 or self.value <= 0:
            return float("nan")
        if self.higher_is_better:
            return self.value / baseline.value
        return baseline.value / self.value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "metric": self.metric,
            "unit": self.unit,
            "value": self.value,
            "higher_is_better": self.higher_is_better,
            "repeats": self.repeats,
            "raw": list(self.raw),
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        return cls(
            name=data["name"],
            metric=data["metric"],
            unit=data.get("unit", ""),
            value=float(data["value"]),
            higher_is_better=bool(data["higher_is_better"]),
            repeats=int(data.get("repeats", 1)),
            raw=[float(v) for v in data.get("raw", [])],
            params=dict(data.get("params", {})),
        )


@dataclass
class PerfReport:
    """A full perf run: every benchmark plus provenance."""

    benchmarks: dict[str, BenchRecord]
    rev: str = "unknown"
    timestamp: str = ""
    quick: bool = False
    #: Where the comparison baseline came from (empty = none given).
    baseline_path: str = ""
    baseline_rev: str = ""
    #: Per-benchmark improvement factor vs the baseline (> 1 = faster).
    speedups: dict[str, float] = field(default_factory=dict)

    @staticmethod
    def now_iso() -> str:
        return _dt.datetime.now(_dt.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")

    def compare_to(self, baseline: "PerfReport", path: str = "") -> None:
        """Fill :attr:`speedups` against a recorded baseline report."""
        self.baseline_path = path
        self.baseline_rev = baseline.rev
        self.speedups = {}
        for name, rec in self.benchmarks.items():
            base = baseline.benchmarks.get(name)
            if base is not None and base.metric == rec.metric:
                self.speedups[name] = rec.ratio_vs(base)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "tool": "repro perf",
            "version": __version__,
            "git_rev": self.rev,
            "timestamp": self.timestamp,
            "quick": self.quick,
            "benchmarks": {
                name: rec.to_dict() for name, rec in sorted(self.benchmarks.items())
            },
            "baseline": {
                "path": self.baseline_path,
                "git_rev": self.baseline_rev,
                "speedups": {k: self.speedups[k] for k in sorted(self.speedups)},
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        p = Path(path)
        p.write_text(self.to_json())
        return p

    @classmethod
    def from_dict(cls, data: dict) -> "PerfReport":
        if not isinstance(data, dict) or "benchmarks" not in data:
            raise PerfError("perf report JSON lacks a 'benchmarks' section")
        schema = int(data.get("schema_version", 0))
        if schema > SCHEMA_VERSION:
            raise PerfError(
                f"perf report schema {schema} is newer than supported "
                f"({SCHEMA_VERSION}); upgrade the tool"
            )
        report = cls(
            benchmarks={
                name: BenchRecord.from_dict(rec)
                for name, rec in data["benchmarks"].items()
            },
            rev=data.get("git_rev", "unknown"),
            timestamp=data.get("timestamp", ""),
            quick=bool(data.get("quick", False)),
        )
        base = data.get("baseline") or {}
        report.baseline_path = base.get("path", "")
        report.baseline_rev = base.get("git_rev", "")
        report.speedups = {
            k: float(v) for k, v in (base.get("speedups") or {}).items()
        }
        return report

    @classmethod
    def load(cls, path: str | Path) -> "PerfReport":
        p = Path(path)
        try:
            data = json.loads(p.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise PerfError(f"cannot read perf report {p}: {exc}") from None
        return cls.from_dict(data)

    def render(self) -> str:
        """Human-readable table of the report."""
        lines = [f"perf report @ {self.rev} ({'quick' if self.quick else 'full'})"]
        for name in sorted(self.benchmarks):
            rec = self.benchmarks[name]
            line = f"  {name:<18s} {rec.value:>14.3f} {rec.unit}"
            if name in self.speedups:
                line += f"   ({self.speedups[name]:.2f}x vs {self.baseline_rev})"
            lines.append(line)
        return "\n".join(lines)


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gated-metric comparison."""

    benchmark: str
    current: float
    baseline: float
    #: Fractional change, positive = improvement (direction-normalised).
    change: float
    allowed_regression: float
    passed: bool

    def describe(self) -> str:
        verdict = "ok" if self.passed else "REGRESSION"
        return (
            f"{self.benchmark}: {self.current:.3f} vs baseline "
            f"{self.baseline:.3f} ({self.change:+.1%}, "
            f"limit -{self.allowed_regression:.0%}) {verdict}"
        )


#: Benchmarks gated by default: the most host-stable throughput metrics
#: (ratios, not absolute wall times), plus the two DES-core latency
#: benchmarks (``state_changed``, ``retime``) — short fixed-iteration
#: loops whose minima are stable enough to gate on.
GATED_BENCHMARKS = (
    "event_loop", "sweep_throughput", "obs_overhead", "batch_decision",
    "state_changed", "retime",
)


def ensure_repo_baseline(path: str | Path, repo_dir: Optional[str] = None) -> Path:
    """Refuse gate baselines that live outside the repository checkout.

    A gated comparison is only meaningful against a *checked-in*
    baseline: an absolute path into ``/tmp`` or a home directory is a
    leftover scratch report from whoever generated it, silently absent
    (or stale) on every other machine.  Exactly that drift shipped
    once — a committed report whose baseline block pointed at
    ``/tmp/perf_full_prev.json`` — so the gate now rejects any baseline
    that does not resolve inside the repository root (the git toplevel
    when available, else the current directory).
    """
    p = Path(path).resolve()
    root: Optional[Path] = None
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0 and out.stdout.strip():
            root = Path(out.stdout.strip()).resolve()
    except (OSError, subprocess.TimeoutExpired):
        root = None
    if root is None:
        root = Path(repo_dir or ".").resolve()
    if root != p and root not in p.parents:
        raise PerfError(
            f"gate baseline {p} lies outside the repository ({root}); "
            f"commit the baseline (e.g. under benchmarks/baselines/) "
            f"and point --baseline at the checked-in copy"
        )
    return p


def gate_against_baseline(
    report: PerfReport,
    baseline: PerfReport,
    benchmarks: tuple[str, ...] = GATED_BENCHMARKS,
    max_regression: float = 0.30,
) -> list[GateResult]:
    """CI gate: fail any gated benchmark that regressed beyond the
    allowed fraction.  A benchmark missing from the baseline passes
    (new benchmarks must not break old baselines)."""
    if not 0.0 < max_regression < 1.0:
        raise PerfError("max_regression must be in (0, 1)")
    results = []
    for name in benchmarks:
        rec = report.benchmarks.get(name)
        if rec is None:
            raise PerfError(f"report has no benchmark {name!r}")
        base = baseline.benchmarks.get(name)
        if base is None:
            continue
        ratio = rec.ratio_vs(base)
        change = ratio - 1.0
        passed = ratio >= (1.0 - max_regression)
        results.append(
            GateResult(
                benchmark=name,
                current=rec.value,
                baseline=base.value,
                change=change,
                allowed_regression=max_regression,
                passed=passed,
            )
        )
    return results
