"""Profiling mode for ``repro perf`` (``--profile``).

Runs the selected microbenchmarks under :mod:`cProfile` and reduces the
stats to the top-N functions by cumulative time — the view that answers
"where does the hot path actually spend its time" without anyone having
to reconstruct the harness by hand.  The result is written as both a
JSON artifact (stable schema, machine-diffable across PRs — CI uploads
it from the perf-smoke job) and a human-readable text table.

Profiled numbers are *not* comparable to the unprofiled benchmark
values: cProfile adds per-call overhead that inflates call-heavy code
relative to loop-heavy code.  Use the profile for *where*, the plain
report for *how fast*.
"""

from __future__ import annotations

import cProfile
import json
import pstats
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.perf.harness import SCHEMA_VERSION, git_rev

#: Rows kept in the artifact (both orderings are stored).
DEFAULT_TOP = 30


@dataclass
class ProfileEntry:
    """One function's aggregate profile line."""

    func: str  #: ``file:lineno(name)`` — pstats' display form
    ncalls: int  #: primitive + recursive call count
    tottime: float  #: seconds inside the function itself
    cumtime: float  #: seconds including callees

    def to_dict(self) -> dict:
        return {
            "func": self.func,
            "ncalls": self.ncalls,
            "tottime": self.tottime,
            "cumtime": self.cumtime,
        }


@dataclass
class ProfileReport:
    """Top-N profile of a ``repro perf`` benchmark run."""

    benchmarks: tuple[str, ...]
    quick: bool
    rev: str
    total_time: float
    total_calls: int
    by_cumulative: list[ProfileEntry] = field(default_factory=list)
    by_tottime: list[ProfileEntry] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "kind": "profile",
            "rev": self.rev,
            "quick": self.quick,
            "benchmarks": list(self.benchmarks),
            "total_time": self.total_time,
            "total_calls": self.total_calls,
            "by_cumulative": [e.to_dict() for e in self.by_cumulative],
            "by_tottime": [e.to_dict() for e in self.by_tottime],
        }

    def save(self, path: str | Path) -> Path:
        """Write the JSON artifact and a ``.txt`` sibling with the
        rendered tables; returns the JSON path."""
        p = Path(path)
        p.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        p.with_suffix(".txt").write_text(self.render() + "\n")
        return p

    def render(self) -> str:
        lines = [
            f"profile @ {self.rev} "
            f"({'quick' if self.quick else 'full'}; "
            f"benchmarks: {', '.join(self.benchmarks)})",
            f"  {self.total_calls} calls in {self.total_time:.3f}s "
            f"(profiled — not comparable to unprofiled timings)",
        ]
        for title, entries in (
            ("top by cumulative time", self.by_cumulative),
            ("top by internal time", self.by_tottime),
        ):
            lines.append("")
            lines.append(title)
            lines.append(
                f"  {'ncalls':>10} {'tottime':>9} {'cumtime':>9}  function"
            )
            for e in entries:
                lines.append(
                    f"  {e.ncalls:>10} {e.tottime:>9.4f} {e.cumtime:>9.4f}"
                    f"  {e.func}"
                )
        return "\n".join(lines)


def _entries(
    stats: pstats.Stats, order: str, top: int
) -> list[ProfileEntry]:
    stats.sort_stats(order)
    out: list[ProfileEntry] = []
    for func in stats.fcn_list[:top]:  # type: ignore[attr-defined]
        cc, nc, tt, ct, _callers = stats.stats[func]  # type: ignore[attr-defined]
        out.append(
            ProfileEntry(
                func=pstats.func_std_string(func),
                ncalls=nc,
                tottime=tt,
                cumtime=ct,
            )
        )
    return out


def profile_benchmarks(
    quick: bool = False,
    benchmarks: Optional[Sequence[str]] = None,
    top: int = DEFAULT_TOP,
    progress: Optional[Callable[[str], None]] = None,
) -> ProfileReport:
    """Run the selected benchmarks under cProfile; reduce to top-N.

    The benchmark *records* are discarded — a profiled timing is not a
    valid benchmark value (see module docstring); only the stats
    survive.
    """
    from repro.perf.benchmarks import run_benchmarks

    names = tuple(benchmarks) if benchmarks is not None else None
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run_benchmarks(quick=quick, benchmarks=names, progress=progress)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.calc_callees()
    total_time = stats.total_tt  # type: ignore[attr-defined]
    total_calls = stats.total_calls  # type: ignore[attr-defined]
    from repro.perf.benchmarks import BENCHMARKS

    return ProfileReport(
        benchmarks=names if names is not None else BENCHMARKS,
        quick=quick,
        rev=git_rev(),
        total_time=total_time,
        total_calls=total_calls,
        by_cumulative=_entries(stats, "cumulative", top),
        by_tottime=_entries(stats, "tottime", top),
    )
