"""Performance measurement harness (``repro perf``).

Microbenchmarks for the simulation hot path — event-loop throughput,
``ExecutionEngine._state_changed`` latency, MPR predict throughput and
a fig8-scale end-to-end run — emitting ``BENCH_hotpath.json`` in a
stable schema so every PR leaves a perf trajectory behind it, plus a
CI regression gate against a checked-in baseline.
"""

from repro.perf.harness import (
    SCHEMA_VERSION,
    BenchRecord,
    GateResult,
    PerfReport,
    ensure_repo_baseline,
    gate_against_baseline,
    git_rev,
)
from repro.perf.benchmarks import BENCHMARKS, run_benchmarks
from repro.perf.profile import ProfileReport, profile_benchmarks

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "GateResult",
    "PerfReport",
    "ProfileReport",
    "BENCHMARKS",
    "ensure_repo_baseline",
    "gate_against_baseline",
    "git_rev",
    "profile_benchmarks",
    "run_benchmarks",
]
