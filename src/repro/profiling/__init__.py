"""Platform characterisation (paper section 4.1).

Generates the 41 synthetic benchmarks sweeping the compute:memory-access
ratio in 2.5% steps, executes them on the simulated platform across the
four-knob configuration space, and collects execution time plus average
CPU/memory rail power into a :class:`ProfilingDataset` from which the
JOSS models are fitted.  Profiling happens once per platform
(install-time in the paper); the dataset is serialisable and cached.
"""

from repro.profiling.synthetic import synthetic_kernels
from repro.profiling.dataset import ProfileRecord, ProfilingDataset
from repro.profiling.profiler import PlatformProfiler

__all__ = [
    "synthetic_kernels",
    "ProfileRecord",
    "ProfilingDataset",
    "PlatformProfiler",
]
