"""Synthetic benchmark generation (paper section 4.1).

The paper's synthetic benchmarks are loops with a controllable ratio of
computation to memory access, holding total execution time constant at
a reference configuration: starting from 50%/50% the ratio moves in
2.5% steps to produce 41 benchmarks spanning 0%..100% compute.

Here a synthetic benchmark is a :class:`KernelSpec` whose compute work
and memory traffic are calibrated so that, on the *reference
configuration* (one core of the calibration cluster at maximum
core/memory frequency), the compute phase takes ``ratio * t_ref``
seconds and the memory phase ``(1 - ratio) * t_ref`` — the same
procedure the paper uses empirically by tuning loop iteration counts.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.exec_model.kernels import KernelSpec
from repro.exec_model.timing import GroundTruthTiming
from repro.hw.platform import Platform

#: Number of synthetic benchmarks in the paper's sweep.
DEFAULT_COUNT = 41


def synthetic_kernels(
    platform: Platform,
    count: int = DEFAULT_COUNT,
    t_ref: float = 0.010,
    calibration_cluster: int = 1,
) -> list[KernelSpec]:
    """Generate ``count`` kernels with compute fraction 0..1.

    Parameters
    ----------
    platform:
        Platform whose calibration cluster defines the reference rates.
    count:
        Number of ratio steps (41 reproduces the paper's 2.5% grid).
    t_ref:
        Target single-core execution time at the reference config (s).
    calibration_cluster:
        Index of the cluster used for calibration (default: the
        efficiency cluster, mirroring the paper's A57 profiling plots).
    """
    if count < 2:
        raise ConfigurationError("need at least two synthetic benchmarks")
    if t_ref <= 0:
        raise ConfigurationError("t_ref must be positive")
    cluster = platform.clusters[calibration_cluster]
    ct = cluster.core_type
    f_c = cluster.opps.max
    f_m = platform.memory.opps.max
    timing = GroundTruthTiming(platform.memory)
    # Reference rates for one core at max frequencies.
    comp_rate = ct.giga_ops_per_ghz * f_c  # giga-ops per second
    probe = KernelSpec("probe", w_comp=0.0, w_bytes=1.0)
    bw_eff = 1.0 / timing.memory_time(probe, ct, 1, f_c, f_m)  # GB/s
    kernels = []
    for i in range(count):
        ratio = i / (count - 1)  # compute fraction 0..1
        w_comp = ratio * t_ref * comp_rate
        w_bytes = (1.0 - ratio) * t_ref * bw_eff
        # Zero-work kernels are rejected by KernelSpec; nudge the ends.
        w_comp = max(w_comp, 1e-9)
        w_bytes = max(w_bytes, 0.0)
        kernels.append(
            KernelSpec(
                name=f"synth{i:02d}_c{int(round(ratio * 100)):03d}",
                w_comp=w_comp,
                w_bytes=w_bytes,
            )
        )
    return kernels
