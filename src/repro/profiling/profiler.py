"""Platform profiler: execute synthetics across the knob space.

Reproduces the paper's training stage (Fig. 4): run every synthetic
benchmark at a grid of ``<T_C, N_C, f_C, f_M>`` configurations on the
(simulated) platform, measure execution time and average rail power,
subtract the idle baseline, and collect everything in a
:class:`ProfilingDataset`.

The profiler drives the :class:`ExecutionEngine` directly (no task
runtime needed: each measurement is one kernel run in isolation, which
is exactly how the paper characterises the platform).  The training
grid subsamples the frequency ladders by default — model quality is
unaffected and characterisation time drops 4x; predictions are later
evaluated on the *full* grid.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec_model.engine import ExecutionEngine
from repro.exec_model.kernels import KernelSpec
from repro.hw.platform import Platform
from repro.profiling.dataset import IdleRecord, ProfileRecord, ProfilingDataset
from repro.profiling.synthetic import synthetic_kernels
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

#: Default training subsample: every other CPU OPP from the top.
DEFAULT_CPU_TRAIN_STRIDE = 2
#: Default training subsample for memory OPPs.
DEFAULT_MEM_TRAIN_STRIDE = 2


def _strided_from_top(freqs: Sequence[float], stride: int) -> list[float]:
    """Pick every ``stride``-th frequency starting at the maximum, and
    always include the minimum.  The maximum must be in the training
    set (it is the runtime sampling reference) and the minimum keeps
    predictions interpolating rather than extrapolating at the corner
    configurations the steepest-descent search probes first."""
    picked = set(freqs[::-1][::stride])
    picked.add(freqs[0])
    return sorted(picked)


class PlatformProfiler:
    """One-shot characterisation of a platform."""

    def __init__(
        self,
        platform_factory: Callable[[], Platform],
        seed: int = 0,
        synthetic_count: int = 41,
        t_ref: float = 0.010,
        power_noise_sigma: float = 0.02,
        duration_noise_sigma: float = 0.02,
        cpu_train_freqs: Optional[Sequence[float]] = None,
        mem_train_freqs: Optional[Sequence[float]] = None,
    ) -> None:
        self.platform_factory = platform_factory
        self.seed = seed
        self.synthetic_count = synthetic_count
        self.t_ref = t_ref
        self.power_noise_sigma = power_noise_sigma
        self.duration_noise_sigma = duration_noise_sigma
        self.cpu_train_freqs = cpu_train_freqs
        self.mem_train_freqs = mem_train_freqs

    def run(self) -> ProfilingDataset:
        """Execute the characterisation pass and return the dataset."""
        platform = self.platform_factory()
        sim = Simulator()
        rng = RngStreams(self.seed)
        engine = ExecutionEngine(
            sim, platform, rng, duration_noise_sigma=self.duration_noise_sigma
        )
        noise = rng.stream("profile-power-noise")
        kernels = synthetic_kernels(platform, self.synthetic_count, self.t_ref)
        ds = ProfilingDataset(platform_name=platform.name)

        mem_opps = platform.memory.opps
        mem_train = list(
            self.mem_train_freqs
            if self.mem_train_freqs is not None
            else _strided_from_top(mem_opps.freqs, DEFAULT_MEM_TRAIN_STRIDE)
        )
        for f in mem_train:
            if f not in mem_opps:
                raise ConfigurationError(f"training mem freq {f} not an OPP")
        # Per-cluster CPU training grids: clusters may have different
        # OPP ladders (e.g. ODROID XU4's A15 vs A7).
        cpu_train_of: dict[int, list[float]] = {}
        for cl in platform.clusters:
            train = list(
                self.cpu_train_freqs
                if self.cpu_train_freqs is not None
                else _strided_from_top(cl.opps.freqs, DEFAULT_CPU_TRAIN_STRIDE)
            )
            for f in train:
                if f not in cl.opps:
                    raise ConfigurationError(
                        f"training CPU freq {f} not an OPP of cluster "
                        f"{cl.cluster_id}"
                    )
            cpu_train_of[cl.cluster_id] = train

        # ------------------------------------------------------------
        # Idle characterisation over the FULL grid (cheap, no tasks).
        # Other clusters snap to their nearest OPP of the swept value.
        # ------------------------------------------------------------
        idle_exact: dict[tuple[float, float], tuple[float, float]] = {}

        def idle_at(f_c: float, f_m: float) -> tuple[float, float]:
            key = (f_c, f_m)
            if key not in idle_exact:
                self._set_freqs(platform, f_c, f_m)
                rails = engine.rail_powers()
                idle_exact[key] = (rails["cpu"], rails["mem"])
            return idle_exact[key]

        for f_c in sorted({f for t in cpu_train_of.values() for f in t}
                          | set(platform.clusters[0].opps)):
            for f_m in mem_opps:
                p_cpu, p_mem = idle_at(f_c, f_m)
                ds.add_idle(
                    IdleRecord(
                        f_c=f_c,
                        f_m=f_m,
                        cpu_power=self._noisy(p_cpu, noise),
                        mem_power=self._noisy(p_mem, noise),
                    )
                )

        # ------------------------------------------------------------
        # Kernel measurements on the training grid.
        # ------------------------------------------------------------
        completions: list[float] = []
        engine.on_complete = lambda act: completions.append(sim.now)
        for cluster, n_cores in platform.resource_configs():
            for f_c in cpu_train_of[cluster.cluster_id]:
                for f_m in mem_train:
                    self._set_freqs(platform, f_c, f_m)
                    p_idle_cpu, p_idle_mem = idle_at(f_c, f_m)
                    for kernel in kernels:
                        t, e_cpu, e_mem = self._measure(
                            sim, engine, kernel, cluster.cores[:n_cores],
                            n_cores, completions,
                        )
                        cpu_dyn = max(0.0, e_cpu / t - p_idle_cpu)
                        mem_dyn = max(0.0, e_mem / t - p_idle_mem)
                        ds.add(
                            ProfileRecord(
                                kernel=kernel.name,
                                cluster=cluster.core_type.name,
                                n_cores=n_cores,
                                f_c=f_c,
                                f_m=f_m,
                                time=t,
                                cpu_power=self._noisy(cpu_dyn, noise),
                                mem_power=self._noisy(mem_dyn, noise),
                            )
                        )
        return ds

    # ------------------------------------------------------------------
    @staticmethod
    def _set_freqs(platform: Platform, f_c: float, f_m: float) -> None:
        for cl in platform.clusters:
            # Snap per cluster: with heterogeneous ladders a sibling
            # cluster tracks the swept value as closely as it can.
            cl.set_freq(cl.opps.nearest(f_c))
        platform.memory.set_freq(f_m)

    def _noisy(self, value: float, rng) -> float:
        if self.power_noise_sigma <= 0:
            return value
        return value * max(0.0, 1.0 + self.power_noise_sigma * rng.standard_normal())

    def _measure(
        self,
        sim: Simulator,
        engine: ExecutionEngine,
        kernel: KernelSpec,
        cores,
        n_cores: int,
        completions: list[float],
    ) -> tuple[float, float, float]:
        """Run one kernel on ``cores`` and return (time, E_cpu, E_mem)."""
        acc = engine.accountant
        start = sim.now
        e_cpu0 = acc.energy("cpu")
        e_mem0 = acc.energy("mem")
        completions.clear()
        for core in cores:
            engine.start_activity(kernel, core, n_cores_total=n_cores)
        sim.run()
        t = max(completions) - start
        if t <= 0:
            raise ConfigurationError("degenerate measurement")
        return t, acc.energy("cpu") - e_cpu0, acc.energy("mem") - e_mem0
