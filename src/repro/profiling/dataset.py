"""Profiling records and the dataset container.

One :class:`ProfileRecord` captures a single (kernel, T_C, N_C, f_C,
f_M) measurement: execution time and the average *dynamic* CPU and
memory power during the run (rail average minus the idle baseline at
the same frequencies — the decomposition the paper's section 4.3.3
applies).  The dataset is a flat list with filtered views and JSON
round-tripping for install-time caching.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator


@dataclass(frozen=True)
class ProfileRecord:
    """One profiled configuration of one synthetic benchmark."""

    kernel: str
    cluster: str        # core type name, e.g. "denver"
    n_cores: int
    f_c: float
    f_m: float
    time: float         # measured wall time (s)
    cpu_power: float    # dynamic CPU power attributed to the task (W)
    mem_power: float    # dynamic memory power attributed to the task (W)


@dataclass(frozen=True)
class IdleRecord:
    """Idle rail power measured at one frequency setting."""

    f_c: float
    f_m: float
    cpu_power: float
    mem_power: float


class ProfilingDataset:
    """All measurements from one platform characterisation pass."""

    def __init__(
        self,
        records: Iterable[ProfileRecord] = (),
        idle: Iterable[IdleRecord] = (),
        platform_name: str = "",
    ) -> None:
        self.records: list[ProfileRecord] = list(records)
        self.idle: list[IdleRecord] = list(idle)
        self.platform_name = platform_name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ProfileRecord]:
        return iter(self.records)

    def add(self, record: ProfileRecord) -> None:
        self.records.append(record)

    def add_idle(self, record: IdleRecord) -> None:
        self.idle.append(record)

    def filter(self, pred: Callable[[ProfileRecord], bool]) -> "ProfilingDataset":
        out = ProfilingDataset(
            (r for r in self.records if pred(r)),
            self.idle,
            self.platform_name,
        )
        return out

    def for_config(self, cluster: str, n_cores: int) -> list[ProfileRecord]:
        """Records of one ``<T_C, N_C>`` slice, all kernels and freqs."""
        return [
            r
            for r in self.records
            if r.cluster == cluster and r.n_cores == n_cores
        ]

    def configs(self) -> list[tuple[str, int]]:
        """Distinct ``(cluster, n_cores)`` pairs present."""
        seen: dict[tuple[str, int], None] = {}
        for r in self.records:
            seen.setdefault((r.cluster, r.n_cores), None)
        return list(seen)

    def kernel_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.kernel, None)
        return list(seen)

    def lookup(
        self, kernel: str, cluster: str, n_cores: int, f_c: float, f_m: float
    ) -> ProfileRecord | None:
        for r in self.records:
            if (
                r.kernel == kernel
                and r.cluster == cluster
                and r.n_cores == n_cores
                and abs(r.f_c - f_c) < 1e-9
                and abs(r.f_m - f_m) < 1e-9
            ):
                return r
        return None

    # ------------------------------------------------------------------
    # Serialisation (install-time cache)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "platform": self.platform_name,
                "records": [asdict(r) for r in self.records],
                "idle": [asdict(r) for r in self.idle],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ProfilingDataset":
        raw = json.loads(text)
        return cls(
            (ProfileRecord(**r) for r in raw["records"]),
            (IdleRecord(**r) for r in raw["idle"]),
            raw.get("platform", ""),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ProfilingDataset":
        return cls.from_json(Path(path).read_text())
