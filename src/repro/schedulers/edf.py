"""EDF — earliest-deadline-first baseline (deadline scenario).

The classic real-time discipline, as a model-free yardstick for the
deadline-aware JOSS variants (:class:`repro.core.goals.DeadlineGoal`):
every ready task goes to the least-loaded core, per-core queues are
kept sorted by absolute task deadline (the executor switches its
dispatch to :meth:`repro.runtime.queues.WorkQueue.push_by_deadline`
when ``queue_discipline == "edf"``), idle cores steal globally, and
frequencies are pinned at the platform maximum — EDF spends no energy
budget on DVFS, it only orders work.  Tasks without a deadline
annotation (closed-system runs) sort last, so EDF degrades to
least-loaded FIFO when no deadlines are present.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.task import Task


class EdfScheduler(Scheduler):
    """Earliest-deadline-first over least-loaded cores, max frequencies."""

    name = "EDF"
    #: Executor dispatch hint: keep per-core queues deadline-ordered.
    queue_discipline = "edf"

    def on_run_begin(self) -> None:
        assert self.ctx is not None
        platform = self.ctx.platform
        for cl in platform.clusters:
            self.ctx.request_cluster_freq(cl, cl.opps.max)
        self.ctx.request_memory_freq(platform.memory.opps.max)

    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None
        queues = self.ctx.queues
        # Least-loaded core of any type: idle first, then shortest
        # queue, core id breaking ties deterministically.
        core = min(
            self.ctx.platform.cores,
            key=lambda c: (c.busy, len(queues[c.core_id]), c.core_id),
        )
        return Placement(cluster=core.cluster, n_cores=1, home_core=core)

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        # Frequencies were pinned at run begin; nothing per-task.
        return

    def steal_candidates(self, core: "Core") -> Sequence["Core"]:
        assert self.ctx is not None
        hit = self._steal_cache.get(core.core_id)
        if hit is None:
            hit = self._steal_cache[core.core_id] = [
                c for c in self.ctx.platform.cores if c is not core
            ]
        return hit
