"""Baseline schedulers evaluated against JOSS (paper section 6.2).

- :class:`~repro.schedulers.grws.GrwsScheduler` — greedy random work
  stealing; no DVFS, single-core tasks, global stealing.
- :class:`~repro.schedulers.erase.EraseScheduler` — online history
  performance model + offline CPU power table; picks the
  ``<T_C, N_C>`` minimising *CPU* energy; no DVFS throttling.
- :class:`~repro.schedulers.aequitas.AequitasScheduler` — heuristic
  per-core frequency desires (thieves slow down) applied to the
  cluster in round-robin time slices; no memory DVFS, no moldability.
- :class:`~repro.schedulers.steer.SteerScheduler` — model-based
  ``<T_C, N_C, f_C>`` selection minimising CPU energy, memory
  frequency pinned at max.

The JOSS scheduler itself lives in :mod:`repro.core`.

Submodules are imported lazily so that e.g. the runtime tests can use
GRWS without paying for the model machinery the others pull in.
"""

from typing import TYPE_CHECKING

_LAZY = {
    "GrwsScheduler": "repro.schedulers.grws",
    "EraseScheduler": "repro.schedulers.erase",
    "AequitasScheduler": "repro.schedulers.aequitas",
    "CataScheduler": "repro.schedulers.cata",
    "EdfScheduler": "repro.schedulers.edf",
    "SteerScheduler": "repro.schedulers.steer",
    "GovernorScheduler": "repro.schedulers.governor",
    "make_scheduler": "repro.schedulers.registry",
    "scheduler_names": "repro.schedulers.registry",
}

__all__ = list(_LAZY)

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.aequitas import AequitasScheduler
    from repro.schedulers.cata import CataScheduler
    from repro.schedulers.edf import EdfScheduler
    from repro.schedulers.erase import EraseScheduler
    from repro.schedulers.governor import GovernorScheduler
    from repro.schedulers.grws import GrwsScheduler
    from repro.schedulers.registry import make_scheduler, scheduler_names
    from repro.schedulers.steer import SteerScheduler


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)
