"""STEER (paper section 6.2, reference [12]).

The strongest state-of-the-art baseline: model-based selection of
``<T_C, N_C, f_C>`` minimising *CPU* energy.  STEER shares JOSS's
sampling and modelling machinery (JOSS builds on it) but (a) optimises
CPU energy only — memory energy is invisible to it — and (b) never
touches the memory DVFS knob, leaving f_M at the platform maximum.
This is exactly the configuration whose blind spot motivates JOSS
(sections 2.1 and 7.1).
"""

from __future__ import annotations

from repro.core.goals import MinCpuEnergy
from repro.core.joss import JossScheduler
from repro.models.suite import ModelSuite


class SteerScheduler(JossScheduler):
    """CPU-energy-optimal ``<T_C, N_C, f_C>`` selection; f_M pinned."""

    name = "STEER"

    def __init__(self, suite: ModelSuite, **kw) -> None:
        kw.setdefault("selector", "steepest")
        super().__init__(
            suite,
            goal=MinCpuEnergy(),
            use_memory_dvfs=False,
            name=kw.pop("name", "STEER"),
            **kw,
        )
