"""Aequitas (paper section 6.2, reference [38]).

A heuristic, model-free energy manager extending HERMES: cores that
*steal* work are thieves and want to run slower (they are ahead of the
work supply); cores with deep queues want to run faster.  On
core-clustered platforms per-core DVFS is unavailable, so each active
core gets to impose its desired frequency on its whole cluster for a
short time slice in round-robin order (the paper's 1 s interval,
scaled here to simulated-run lengths).

Aequitas does not leverage the memory DVFS knob or moldable execution,
and places tasks like a random work-stealing runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.task import Task


class AequitasScheduler(Scheduler):
    """Thief/victim + queue-depth heuristic cluster DVFS."""

    name = "Aequitas"

    def __init__(
        self,
        time_slice_s: float = 0.05,
        queue_high_watermark: int = 2,
        step: int = 1,
        min_freq_index: int = 5,
    ) -> None:
        """
        Parameters
        ----------
        time_slice_s:
            Round-robin interval at which the next active core applies
            its desired frequency to its cluster (paper: 1 s on wall
            clock; default scaled to the simulated runs).
        queue_high_watermark:
            Queue depth at which a core asks for maximum frequency.
        step:
            OPP ladder steps a thief descends per steal.
        min_freq_index:
            Floor of the descent (HERMES-style tempered slowdown —
            thieves are *ahead*, not idle; index 5 is 1.11 GHz on the
            TX2 ladder).
        """
        super().__init__()
        self.time_slice = float(time_slice_s)
        self.high_watermark = int(queue_high_watermark)
        self.step = int(step)
        self.min_freq_index = int(min_freq_index)
        #: Desired OPP index per core id.
        self._desired: dict[int, int] = {}
        self._rr_position = 0
        self._timer = None

    # ------------------------------------------------------------------
    def on_run_begin(self) -> None:
        assert self.ctx is not None
        top = {}
        for cl in self.ctx.platform.clusters:
            for core in cl.cores:
                top[core.core_id] = len(cl.opps) - 1
        self._desired = top
        self._rr_position = 0
        self._timer = self.ctx.sim.schedule(self.time_slice, self._slice_tick)

    def on_workload_complete(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def on_run_end(self) -> None:
        self.on_workload_complete()

    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None
        platform = self.ctx.platform
        rng = self.ctx.rng.stream("aequitas-place")
        core = platform.cores[int(rng.integers(platform.n_cores))]
        return Placement(cluster=core.cluster, n_cores=1, home_core=core)

    def steal_candidates(self, core: "Core") -> Sequence["Core"]:
        assert self.ctx is not None
        hit = self._steal_cache.get(core.core_id)
        if hit is None:
            hit = self._steal_cache[core.core_id] = [
                c for c in self.ctx.platform.cores if c is not core
            ]
        return hit

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        """Update the executing core's desire from the thief/victim
        relation and its queue depth (no immediate DVFS action — the
        time-slice tick actuates)."""
        assert self.ctx is not None
        opps = core.cluster.opps
        top = len(opps) - 1
        floor = min(self.min_freq_index, top)
        idx = self._desired.get(core.core_id, top)
        if task.meta.pop("stolen", False):
            idx = max(floor, idx - self.step)  # thief: slow down (bounded)
        qlen = len(self.ctx.queues[core.core_id])
        if qlen >= self.high_watermark:
            idx = top  # backlog: full speed
        self._desired[core.core_id] = max(floor, min(top, idx))

    # ------------------------------------------------------------------
    def _slice_tick(self) -> None:
        """Let the next active core (round-robin) impose its desire on
        its cluster for the coming slice."""
        assert self.ctx is not None
        cores = self.ctx.platform.cores
        n = len(cores)
        for offset in range(n):
            core = cores[(self._rr_position + offset) % n]
            if core.busy:
                self._rr_position = (self._rr_position + offset + 1) % n
                opps = core.cluster.opps
                idx = self._desired.get(core.core_id, len(opps) - 1)
                self.ctx.request_cluster_freq(core.cluster, opps.at(idx))
                break
        self._timer = self.ctx.sim.schedule(self.time_slice, self._slice_tick)
