"""GRWS — greedy random work stealing (paper section 6.2, baseline).

The widely used default of task runtimes (Cilk, TBB, OpenMP tasking):
every ready task goes to the queue of a random core (any type), idle
cores steal from any other core, every task runs on a single core, and
no DVFS knob is ever touched — frequencies stay at the platform's
initial maximum settings.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.task import Task


class GrwsScheduler(Scheduler):
    """Greedy random work stealing across all cores."""

    name = "GRWS"

    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None
        platform = self.ctx.platform
        # Uniform over *cores* (not clusters) so a 4-core cluster
        # receives proportionally more tasks, like real work stealing.
        rng = self.ctx.rng.stream("grws-place")
        core = platform.cores[int(rng.integers(platform.n_cores))]
        return Placement(cluster=core.cluster, n_cores=1, home_core=core)

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        # GRWS never issues DVFS requests.
        return

    def steal_candidates(self, core: "Core") -> Sequence["Core"]:
        assert self.ctx is not None
        hit = self._steal_cache.get(core.core_id)
        if hit is None:
            hit = self._steal_cache[core.core_id] = [
                c for c in self.ctx.platform.cores if c is not core
            ]
        return hit
