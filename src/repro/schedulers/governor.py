"""Linux-cpufreq-governor baselines (extension beyond the paper).

The paper configures the userspace governor and drives frequencies
itself; real deployments often leave DVFS to the kernel's governor.
These schedulers pair GRWS-style random work-stealing placement with
the classic governor policies, providing the context baselines common
in this literature:

- ``performance`` — pin every domain at maximum (identical to GRWS,
  exists for completeness/naming);
- ``powersave`` — pin every domain at minimum;
- ``ondemand`` — periodically sample each cluster's utilisation: jump
  to maximum when utilisation exceeds ``up_threshold``, step down one
  OPP when it falls below ``down_threshold`` (the kernel governor's
  characteristic sawtooth).  Memory frequency follows total bandwidth
  pressure with the same rule (as memory-freq governors like
  devfreq/simple_ondemand do).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Literal, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.task import Task

Policy = Literal["performance", "powersave", "ondemand"]


class GovernorScheduler(Scheduler):
    """Random work stealing + a kernel-style frequency governor."""

    def __init__(
        self,
        policy: Policy = "ondemand",
        period_s: float = 0.010,
        up_threshold: float = 0.80,
        down_threshold: float = 0.30,
    ) -> None:
        if policy not in ("performance", "powersave", "ondemand"):
            raise ConfigurationError(f"unknown governor policy {policy!r}")
        super().__init__()
        self.policy = policy
        self.name = f"gov-{policy}"
        self.period = float(period_s)
        self.up = float(up_threshold)
        self.down = float(down_threshold)
        self._timer = None

    # ------------------------------------------------------------------
    # Placement: plain random work stealing (GRWS semantics).
    # ------------------------------------------------------------------
    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None
        platform = self.ctx.platform
        rng = self.ctx.rng.stream("governor-place")
        core = platform.cores[int(rng.integers(platform.n_cores))]
        return Placement(cluster=core.cluster, n_cores=1, home_core=core)

    def steal_candidates(self, core: "Core") -> Sequence["Core"]:
        assert self.ctx is not None
        hit = self._steal_cache.get(core.core_id)
        if hit is None:
            hit = self._steal_cache[core.core_id] = [
                c for c in self.ctx.platform.cores if c is not core
            ]
        return hit

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        return  # the governor, not the task, drives DVFS

    # ------------------------------------------------------------------
    # Governor loop
    # ------------------------------------------------------------------
    def on_run_begin(self) -> None:
        assert self.ctx is not None
        platform = self.ctx.platform
        if self.policy == "performance":
            for cl in platform.clusters:
                self.ctx.request_cluster_freq(cl, cl.opps.max)
            self.ctx.request_memory_freq(platform.memory.opps.max)
        elif self.policy == "powersave":
            for cl in platform.clusters:
                self.ctx.request_cluster_freq(cl, cl.opps.min)
            self.ctx.request_memory_freq(platform.memory.opps.min)
        else:
            self._timer = self.ctx.sim.schedule(self.period, self._tick)

    def on_workload_complete(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def on_run_end(self) -> None:
        self.on_workload_complete()

    def _tick(self) -> None:
        assert self.ctx is not None
        platform = self.ctx.platform
        for cl in platform.clusters:
            # The kernel governor is per-CPU with the cluster taking the
            # max of its cores' requests: one busy core is enough to
            # demand full speed (instantaneous busy = 100% utilisation).
            util = 1.0 if any(c.busy for c in cl.cores) else 0.0
            current = self.ctx.cluster_dvfs[cl.cluster_id].target_freq
            if util >= self.up:
                self.ctx.request_cluster_freq(cl, cl.opps.max)
            elif util <= self.down and current > cl.opps.min:
                i = cl.opps.index(cl.opps.nearest(current))
                self.ctx.request_cluster_freq(cl, cl.opps.at(max(0, i - 1)))
        # Memory side: bandwidth-pressure driven (devfreq-style).
        mem = platform.memory
        demand = sum(a.bw_achieved for a in self.ctx.engine.activities)
        cap = mem.bandwidth_capacity
        pressure = demand / cap if cap > 0 else 0.0
        current = self.ctx.memory_dvfs.target_freq
        if pressure >= self.up:
            self.ctx.request_memory_freq(mem.opps.max)
        elif pressure <= self.down and current > mem.opps.min:
            i = mem.opps.index(mem.opps.nearest(current))
            self.ctx.request_memory_freq(mem.opps.at(max(0, i - 1)))
        self._timer = self.ctx.sim.schedule(self.period, self._tick)


def make_governor(policy: Policy, **kw) -> GovernorScheduler:
    return GovernorScheduler(policy=policy, **kw)
