"""CATA-style criticality-aware task acceleration (extension baseline).

The paper's related work ([10], Castillo et al., IPDPS 2016) tunes
frequency by *task criticality*: tasks on or near the DAG's critical
path run fast (they gate the makespan), tasks off it run slow (their
slack is free energy).  This baseline implements the idea on the
cluster-DVFS platform:

- criticality = the task's bottom level (longest dependency chain to a
  sink), normalised by the *current horizon* — the largest bottom level
  among recently released tasks.  As the execution frontier advances
  the horizon shrinks with it, so the tail of the critical path stays
  critical (a global-maximum normalisation would demote it);
- critical tasks (normalised criticality >= ``threshold``) go to the
  fastest cluster at maximum frequency;
- non-critical tasks go to the most efficient cluster at a low
  frequency, bounded by a simple power-budget check: when every
  efficient-cluster core is busy, spill to the fast cluster rather
  than queue (CATA's budget-aware acceleration, simplified).

No memory DVFS, no moldable execution, no models — pure DAG structure.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import Cluster
    from repro.hw.core import Core
    from repro.runtime.task import Task


class CataScheduler(Scheduler):
    """Criticality-aware acceleration on a clustered platform."""

    name = "CATA"

    def __init__(
        self,
        threshold: float = 0.7,
        slow_freq_index: int = 4,
    ) -> None:
        """
        Parameters
        ----------
        threshold:
            Normalised bottom-level above which a task counts as
            critical.
        slow_freq_index:
            OPP index (from the bottom) used for non-critical tasks.
        """
        super().__init__()
        self.threshold = float(threshold)
        self.slow_freq_index = int(slow_freq_index)
        self._bottom: dict[int, int] = {}
        #: Sliding window of recently released tasks' bottom levels;
        #: its maximum is the criticality horizon.
        self._recent: deque[int] = deque(maxlen=16)
        self.critical_tasks = 0
        self.non_critical_tasks = 0

    # ------------------------------------------------------------------
    def on_run_begin(self) -> None:
        self._bottom.clear()
        self._recent.clear()
        self.critical_tasks = 0
        self.non_critical_tasks = 0

    def _bottom_level(self, task: "Task") -> int:
        """Longest chain from ``task`` to a sink (memoised DFS over the
        statically known dependents)."""
        cached = self._bottom.get(task.tid)
        if cached is not None:
            return cached
        # Iterative DFS to survive deep chains (FB recursion depth).
        stack = [(task, iter(task.dependents), 1)]
        order: list[Task] = []
        visiting: set[int] = set()
        while stack:
            t, it, _ = stack[-1]
            if t.tid in self._bottom:
                stack.pop()
                continue
            advanced = False
            for d in it:
                if d.tid not in self._bottom and d.tid not in visiting:
                    visiting.add(d.tid)
                    stack.append((d, iter(d.dependents), 1))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                level = 1 + max(
                    (self._bottom[d.tid] for d in t.dependents), default=0
                )
                self._bottom[t.tid] = level
                order.append(t)
        return self._bottom[task.tid]

    def _clusters_by_speed(self) -> tuple["Cluster", "Cluster"]:
        assert self.ctx is not None
        clusters = sorted(
            self.ctx.platform.clusters,
            key=lambda cl: cl.core_type.giga_ops_per_ghz,
        )
        return clusters[-1], clusters[0]  # (fastest, most efficient)

    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None
        fast, slow = self._clusters_by_speed()
        level = self._bottom_level(task)
        self._recent.append(level)
        horizon = max(self._recent)
        criticality = level / horizon
        if criticality >= self.threshold:
            self.critical_tasks += 1
            return Placement(cluster=fast, n_cores=1, f_c=fast.opps.max)
        self.non_critical_tasks += 1
        # Budget-aware spill: a fully busy efficiency cluster means the
        # task would queue; accelerate it instead.
        if all(c.busy for c in self.ctx.platform.cores_of_type(slow.core_type.name)):
            return Placement(cluster=fast, n_cores=1, f_c=fast.opps.max)
        idx = min(self.slow_freq_index, len(slow.opps) - 1)
        return Placement(cluster=slow, n_cores=1, f_c=slow.opps.at(idx))

    def steal_candidates(self, core: "Core") -> Sequence["Core"]:
        assert self.ctx is not None
        hit = self._steal_cache.get(core.core_id)
        if hit is None:
            hit = self._steal_cache[core.core_id] = [
                c
                for c in self.ctx.platform.cores_of_type(core.core_type.name)
                if c is not core
            ]
        return hit
