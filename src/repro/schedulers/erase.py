"""ERASE (paper section 6.2, reference [11]).

Energy-efficient task mapping *without* DVFS: ERASE samples each
kernel's execution time once per ``<T_C, N_C>`` at the (fixed) maximum
frequencies — an online history-based performance model — and combines
it with an offline-characterised CPU power table to pick the
``<T_C, N_C>`` with the least CPU energy.  Frequencies are never
throttled, and memory energy is not considered.

The offline power table is ERASE's "categorised CPU power model": the
average dynamic CPU power per ``<T_C, N_C>`` over the synthetic
profiling sweep (task-characteristic-agnostic, which is precisely the
imprecision relative to STEER/JOSS the paper describes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.sampling import SamplingPlanner
from repro.models.suite import ModelSuite
from repro.profiling.dataset import ProfilingDataset
from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.task import Task


class EraseScheduler(Scheduler):
    """CPU-energy-aware ``<T_C, N_C>`` mapping, no DVFS."""

    name = "ERASE"

    def __init__(
        self,
        suite: ModelSuite,
        dataset: Optional[ProfilingDataset] = None,
    ) -> None:
        """
        Parameters
        ----------
        suite:
            Fitted model suite — ERASE only uses its CPU power models
            (evaluated at the class-agnostic MB midpoint) and the idle
            characterisation, mirroring its offline power table.
        dataset:
            Optional raw profiling dataset; when given, the power table
            is the measured per-config average instead.
        """
        super().__init__()
        self.suite = suite
        self._power_table: dict[tuple[str, int], float] = {}
        if dataset is not None and len(dataset):
            f_c = max(r.f_c for r in dataset)
            for key in dataset.configs():
                recs = [
                    r for r in dataset.for_config(*key)
                    if abs(r.f_c - f_c) < 1e-9
                ]
                self._power_table[key] = float(np.mean([r.cpu_power for r in recs]))
        else:
            for cl_name, n_cores in suite.config_keys():
                self._power_table[(cl_name, n_cores)] = suite.predict_cpu_power(
                    cl_name, n_cores, mb=0.5, f_c=suite.f_c_ref
                )
        self.planner: Optional[SamplingPlanner] = None
        self.decisions: dict[str, tuple[str, int]] = {}

    def on_run_begin(self) -> None:
        per_config = {
            key: self.suite.ref_freqs(*key) for key in self.suite.config_keys()
        }
        self.planner = SamplingPlanner(
            self.suite.config_keys(),
            self.suite.f_c_ref,
            self.suite.f_c_sample,
            two_frequencies=False,  # history sampling at max freq only
            per_config=per_config,
        )
        self.decisions.clear()

    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None and self.planner is not None
        kname = task.kernel.name
        decided = self.decisions.get(kname)
        if decided is not None:
            cluster = self.ctx.platform.cluster_by_type(decided[0])
            return Placement(cluster=cluster, n_cores=decided[1])
        slot = self.planner.next_slot(kname)
        task.meta["sample_slot"] = slot
        cluster = self.ctx.platform.cluster_by_type(slot.cluster)
        # No DVFS requests — ERASE runs at whatever the platform is at
        # (the maximum, since nothing else throttles).
        return Placement(cluster=cluster, n_cores=slot.n_cores)

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        return  # never touches DVFS

    def on_task_complete(self, task: "Task") -> None:
        assert self.planner is not None
        slot = task.meta.pop("sample_slot", None)
        if slot is None:
            return
        kname = task.kernel.name
        measured = task.exec_time if task.exec_time > 0 else task.duration
        self.planner.record(kname, slot, measured)
        if self.planner.resolved(kname) and kname not in self.decisions:
            self._resolve(kname)

    def _resolve(self, kname: str) -> None:
        """Least predicted CPU energy = sampled time x offline power,
        including the idle share (concurrency-attributed)."""
        assert self.ctx is not None and self.planner is not None
        concurrency = max(1, self.ctx.busy_core_count())
        idle = self.suite.idle.cpu_idle(self.suite.f_c_ref) / concurrency
        best_key, best_energy = None, float("inf")
        for key in self.suite.config_keys():
            t = self.planner.reference_time(kname, *key)
            energy = t * (self._power_table[key] + idle)
            if energy < best_energy:
                best_key, best_energy = key, energy
        assert best_key is not None
        self.decisions[kname] = best_key

    def on_run_end(self) -> None:
        assert self.ctx is not None and self.planner is not None
        m = self.ctx.metrics
        if m is not None:
            m.sampling_time = self.planner.total_sampling_time()
            m.extras["decisions"] = {
                k: f"<{cl}, {nc}>" for k, (cl, nc) in self.decisions.items()
            }
