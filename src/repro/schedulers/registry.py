"""Scheduler registry: build any evaluated scheduler by name.

The names match the paper's figures: GRWS, ERASE, Aequitas, STEER,
JOSS, JOSS_NoMemDVFS, JOSS_1.2x / 1.4x / 1.8x, JOSS_MAXP — plus the
extension baselines (CATA, the cpufreq governors, EDF) and dynamic
``JOSS_<goal>`` variants for any canonical goal name understood by
:func:`repro.core.goals.parse_goal` (``JOSS_perf-1.5x``,
``JOSS_powercap-3W``, ``JOSS_deadline-0.5s``, ...).
"""

from __future__ import annotations

import re
import warnings
from typing import Optional

from repro.core.goals import goal_spec
from repro.core.joss import JossScheduler
from repro.errors import ConfigurationError, ModelError
from repro.models.suite import ModelSuite
from repro.runtime.scheduler_api import Scheduler
from repro.schedulers.aequitas import AequitasScheduler
from repro.schedulers.cata import CataScheduler
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.erase import EraseScheduler
from repro.schedulers.governor import GovernorScheduler
from repro.schedulers.grws import GrwsScheduler
from repro.schedulers.steer import SteerScheduler

#: Legacy dynamic-variant suffixes, translated to canonical goal names
#: (``JOSS_1.4x`` is the paper's own figure label and stays
#: first-class; ``JOSS_cap4W`` predates the goal registry and warns).
_SPEEDUP_RE = re.compile(r"^(\d+(?:\.\d+)?)x$", re.IGNORECASE)
_POWERCAP_RE = re.compile(r"^cap(\d+(?:\.\d+)?)W$", re.IGNORECASE)


def scheduler_names() -> list[str]:
    """The scheduler line-up of the paper's Figure 8 plus the Figure 9
    constrained variants and the extension baselines."""
    return [
        "GRWS",
        "ERASE",
        "Aequitas",
        "STEER",
        "JOSS",
        "JOSS_NoMemDVFS",
        "JOSS_1.2x",
        "JOSS_1.4x",
        "JOSS_1.8x",
        "JOSS_MAXP",
        "CATA",
        "EDF",
        "gov-ondemand",
        "gov-performance",
        "gov-powersave",
    ]


def joss_goal_name(name: str) -> Optional[str]:
    """Canonical goal name encoded in a dynamic ``JOSS_<goal>``
    scheduler name, or ``None`` when ``name`` is not a dynamic variant.

    Accepts the paper's speedup spelling (``JOSS_1.4x`` ->
    ``perf-1.4x``), the pre-registry power-cap spelling
    (``JOSS_cap4W`` -> ``powercap-4W``, deprecated), and any canonical
    goal name from :func:`repro.core.goals.parse_goal`
    (``JOSS_deadline-0.5s`` -> ``deadline-0.5s``).
    """
    canonical = name.strip()
    if not canonical.upper().startswith("JOSS_"):
        return None
    suffix = canonical[5:]
    m = _SPEEDUP_RE.match(suffix)
    if m:
        return f"perf-{float(m.group(1)):g}x"
    m = _POWERCAP_RE.match(suffix)
    if m:
        warnings.warn(
            f"scheduler name {name!r} is deprecated; use "
            f"'JOSS_powercap-{float(m.group(1)):g}W'",
            DeprecationWarning,
            stacklevel=3,
        )
        return f"powercap-{float(m.group(1)):g}W"
    try:
        return goal_spec(suffix).name
    except ModelError:
        return None


def needs_suite(name: str) -> bool:
    """Whether a scheduler name requires a fitted :class:`ModelSuite`.

    The heuristic/structural schedulers (GRWS, Aequitas, CATA, EDF,
    the cpufreq governors) run model-free; everything else is
    model-based.
    """
    lowered = name.strip().lower()
    return lowered not in (
        "grws", "aequitas", "cata", "edf"
    ) and not lowered.startswith("gov-")


def make_scheduler(
    name: str, suite: Optional[ModelSuite] = None, **kw
) -> Scheduler:
    """Instantiate a scheduler by its paper name.

    ``suite`` (the fitted model suite) is required for every
    model-based scheduler (see :func:`needs_suite`).
    """
    canonical = name.strip()
    lowered = canonical.lower()
    if lowered == "grws":
        return GrwsScheduler()
    if lowered == "aequitas":
        return AequitasScheduler(**kw)
    if lowered.startswith("gov-"):
        return GovernorScheduler(policy=lowered[4:], **kw)
    if lowered == "cata":
        return CataScheduler(**kw)
    if lowered == "edf":
        return EdfScheduler(**kw)
    if lowered == "erase":
        goal_name = None
    elif lowered in ("joss", "joss_nomemdvfs", "joss_maxp", "steer"):
        goal_name = None
    else:
        goal_name = joss_goal_name(canonical)
    known_model_based = lowered in (
        "erase", "steer", "joss", "joss_nomemdvfs", "joss_maxp"
    ) or goal_name is not None
    if not known_model_based:
        raise ConfigurationError(
            f"unknown scheduler {name!r} (known: {scheduler_names()}, "
            f"plus dynamic 'JOSS_<goal>' variants)"
        )
    if suite is None:
        raise ConfigurationError(f"scheduler {name!r} needs a fitted ModelSuite")
    if lowered == "erase":
        return EraseScheduler(suite, **kw)
    if lowered == "steer":
        return SteerScheduler(suite, **kw)
    if lowered == "joss":
        return JossScheduler(suite, **kw)
    if lowered == "joss_nomemdvfs":
        return JossScheduler.no_mem_dvfs(suite, **kw)
    if lowered == "joss_maxp":
        return JossScheduler.maxp(suite, **kw)
    assert goal_name is not None
    kw.setdefault("name", canonical)
    return JossScheduler(suite, goal=goal_name, **kw)
