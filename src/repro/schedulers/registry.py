"""Scheduler registry: build any evaluated scheduler by name.

The names match the paper's figures: GRWS, ERASE, Aequitas, STEER,
JOSS, JOSS_NoMemDVFS, JOSS_1.2x / 1.4x / 1.8x, JOSS_MAXP.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.core.joss import JossScheduler
from repro.errors import ConfigurationError
from repro.models.suite import ModelSuite
from repro.runtime.scheduler_api import Scheduler
from repro.schedulers.aequitas import AequitasScheduler
from repro.schedulers.cata import CataScheduler
from repro.schedulers.erase import EraseScheduler
from repro.schedulers.governor import GovernorScheduler
from repro.schedulers.grws import GrwsScheduler
from repro.schedulers.steer import SteerScheduler

_SPEEDUP_RE = re.compile(r"^JOSS_(\d+(?:\.\d+)?)x$", re.IGNORECASE)
_POWERCAP_RE = re.compile(r"^JOSS_cap(\d+(?:\.\d+)?)W$", re.IGNORECASE)


def scheduler_names() -> list[str]:
    """The scheduler line-up of the paper's Figure 8 plus the Figure 9
    constrained variants."""
    return [
        "GRWS",
        "ERASE",
        "Aequitas",
        "STEER",
        "JOSS",
        "JOSS_NoMemDVFS",
        "JOSS_1.2x",
        "JOSS_1.4x",
        "JOSS_1.8x",
        "JOSS_MAXP",
        "CATA",
        "gov-ondemand",
        "gov-performance",
        "gov-powersave",
    ]


def needs_suite(name: str) -> bool:
    """Whether a scheduler name requires a fitted :class:`ModelSuite`.

    The heuristic/structural schedulers (GRWS, Aequitas, CATA, the
    cpufreq governors) run model-free; everything else is model-based.
    """
    lowered = name.strip().lower()
    return lowered not in ("grws", "aequitas", "cata") and not lowered.startswith(
        "gov-"
    )


def make_scheduler(
    name: str, suite: Optional[ModelSuite] = None, **kw
) -> Scheduler:
    """Instantiate a scheduler by its paper name.

    ``suite`` (the fitted model suite) is required for every
    model-based scheduler (see :func:`needs_suite`).
    """
    canonical = name.strip()
    lowered = canonical.lower()
    if lowered == "grws":
        return GrwsScheduler()
    if lowered == "aequitas":
        return AequitasScheduler(**kw)
    if lowered.startswith("gov-"):
        return GovernorScheduler(policy=lowered[4:], **kw)
    if lowered == "cata":
        return CataScheduler(**kw)
    known_model_based = lowered in (
        "erase", "steer", "joss", "joss_nomemdvfs", "joss_maxp"
    ) or _SPEEDUP_RE.match(canonical) or _POWERCAP_RE.match(canonical)
    if not known_model_based:
        raise ConfigurationError(
            f"unknown scheduler {name!r} (known: {scheduler_names()})"
        )
    if suite is None:
        raise ConfigurationError(f"scheduler {name!r} needs a fitted ModelSuite")
    if lowered == "erase":
        return EraseScheduler(suite, **kw)
    if lowered == "steer":
        return SteerScheduler(suite, **kw)
    if lowered == "joss":
        return JossScheduler(suite, **kw)
    if lowered == "joss_nomemdvfs":
        return JossScheduler.no_mem_dvfs(suite, **kw)
    if lowered == "joss_maxp":
        return JossScheduler.maxp(suite, **kw)
    m = _SPEEDUP_RE.match(canonical)
    if m:
        return JossScheduler.with_speedup(suite, float(m.group(1)), **kw)
    m = _POWERCAP_RE.match(canonical)
    if m:
        return JossScheduler.with_power_cap(suite, float(m.group(1)), **kw)
    raise ConfigurationError(  # pragma: no cover - guarded above
        f"unknown scheduler {name!r} (known: {scheduler_names()})"
    )
