"""Voltage/frequency curves.

The paper's power models deliberately avoid using voltage as an input
because it is strongly correlated with frequency on the TX2 (section
4.3.1).  The *ground truth* power model, however, is genuinely V^2*f —
this module provides the V(f) mapping the simulated silicon obeys.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


class VoltageCurve:
    """Piecewise-linear voltage as a function of frequency (GHz -> V)."""

    def __init__(self, points: Iterable[tuple[float, float]]) -> None:
        pts = sorted((float(f), float(v)) for f, v in points)
        if len(pts) < 2:
            raise ConfigurationError("voltage curve needs at least two points")
        self._f = np.asarray([p[0] for p in pts])
        self._v = np.asarray([p[1] for p in pts])
        if np.any(np.diff(self._v) < 0):
            raise ConfigurationError("voltage must be non-decreasing with frequency")
        # V(f) is pure and queried at a handful of OPP frequencies on
        # every power evaluation; memoise the interpolation (bounded —
        # sweeps over arbitrary frequencies must not grow it forever).
        self._memo: dict[float, float] = {}

    def volts(self, f_ghz: float) -> float:
        """Interpolated supply voltage at ``f_ghz`` (clamped at the ends)."""
        v = self._memo.get(f_ghz)
        if v is None:
            v = float(np.interp(f_ghz, self._f, self._v))
            if len(self._memo) < 1024:
                self._memo[f_ghz] = v
        return v

    @classmethod
    def linear(cls, v0: float, slope: float, f_min: float, f_max: float) -> "VoltageCurve":
        """Curve ``V = v0 + slope * f`` over ``[f_min, f_max]``."""
        return cls([(f_min, v0 + slope * f_min), (f_max, v0 + slope * f_max)])

    def table(self, freqs: Sequence[float]) -> list[tuple[float, float]]:
        return [(f, self.volts(f)) for f in freqs]
