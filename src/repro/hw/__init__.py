"""Hardware platform model.

Models an asymmetric multicore in the style of the NVIDIA Jetson TX2:

- two (or more) CPU *clusters*, each a DVFS domain — every core in a
  cluster runs at the cluster frequency (the paper's "core-clustered"
  design);
- a *memory system* with its own DVFS domain (EMC/DRAM frequency);
- per-domain voltage/frequency curves;
- a ground-truth power model (the "physics" that JOSS's regression
  models must learn from profiling);
- DVFS controllers with transition latency;
- power-rail energy accounting, both exact (piecewise integration) and
  INA3221-style periodic sampling with measurement noise.
"""

from repro.hw.opp import OppTable
from repro.hw.voltage import VoltageCurve
from repro.hw.core import Core, CoreType
from repro.hw.cluster import Cluster
from repro.hw.memory import MemorySystem
from repro.hw.power import PowerModel, PowerModelParams
from repro.hw.dvfs import DvfsController
from repro.hw.sensor import EnergyAccountant, PowerSensor
from repro.hw.platform import Platform, jetson_tx2, symmetric_platform

__all__ = [
    "OppTable",
    "VoltageCurve",
    "Core",
    "CoreType",
    "Cluster",
    "MemorySystem",
    "PowerModel",
    "PowerModelParams",
    "DvfsController",
    "EnergyAccountant",
    "PowerSensor",
    "Platform",
    "jetson_tx2",
    "symmetric_platform",
]
