"""Ground-truth power model (the physics the MPR models must learn).

The paper measures CPU and memory rail power with an INA3221 sensor;
here the "silicon" itself is simulated.  The model is deliberately a
bit richer than the regression forms JOSS fits (Eqs. 4 and 5 in the
paper): CPU activity depends on the *instantaneous* memory-boundness
of each running task, and memory power depends on achieved bandwidth —
terms the learned models can only approximate.  That gap, plus sensor
noise, is what produces the non-trivial accuracy distributions of
Figure 10.

All power values are watts; frequencies GHz; voltages volts;
bandwidths GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hw.cluster import Cluster
from repro.hw.core import CoreType
from repro.hw.memory import MemorySystem


@dataclass(frozen=True)
class PowerModelParams:
    """Platform-wide power constants (see ``jetson_tx2`` for values).

    Attributes
    ----------
    k_uncore:
        Cluster uncore (interconnect, L2) coefficient: ``k * V^2 * f``.
    k_idle_clock:
        Residual clock-tree activity of an online-but-idle core,
        relative to ``V^2 * f``.
    mem_idle_base:
        Memory background power independent of frequency (refresh).
    mem_idle_per_ghz:
        Memory background power per GHz of memory frequency (clocking).
    mem_energy_per_gb:
        Access energy per GB transferred, expressed as W per GB/s.
    k_mem_ctrl:
        Memory-controller dynamic coefficient: ``k * V^2 * f * util``.
    """

    k_uncore: float = 0.05
    k_idle_clock: float = 0.008
    mem_idle_base: float = 0.12
    mem_idle_per_ghz: float = 0.35
    mem_energy_per_gb: float = 0.045
    k_mem_ctrl: float = 0.12


class PowerModel:
    """Evaluates instantaneous rail power from platform state.

    The execution engine supplies, per busy core, the instantaneous
    memory-boundness of the activity it runs (fraction of time stalled
    under *current* frequencies), and the total achieved memory
    bandwidth; everything else is read from the hardware objects.
    """

    def __init__(self, params: PowerModelParams | None = None) -> None:
        self.params = params or PowerModelParams()

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------
    def core_dynamic_power(
        self, core_type: CoreType, f_ghz: float, volts: float, mb_inst: float
    ) -> float:
        """Dynamic power of one busy core running a task with
        instantaneous memory-boundness ``mb_inst`` in [0, 1]."""
        activity = (1.0 - mb_inst) + mb_inst * core_type.stall_activity
        return core_type.k_dyn * activity * volts * volts * f_ghz

    def core_static_power(self, core_type: CoreType, volts: float) -> float:
        """Leakage of one online core."""
        return core_type.k_static * volts * volts

    def core_idle_clock_power(
        self, core_type: CoreType, f_ghz: float, volts: float
    ) -> float:
        """Residual clock power of an online-but-idle core."""
        return self.params.k_idle_clock * volts * volts * f_ghz

    def cluster_power(
        self, cluster: Cluster, core_loads: Sequence[Optional[float]]
    ) -> float:
        """Total power of one cluster.

        ``core_loads[i]`` is the instantaneous memory-boundness of the
        task on core ``i`` (``None`` when the core is idle).

        The per-core helpers above are inlined here (this is evaluated
        after every engine state change); the arithmetic — including
        left-to-right operand order — matches them exactly.
        """
        f = cluster.freq
        v = cluster.volts
        ct = cluster.core_type
        k_static = ct.k_static
        k_dyn = ct.k_dyn
        stall = ct.stall_activity
        k_idle_clock = self.params.k_idle_clock
        p = self.params.k_uncore * v * v * f
        for load in core_loads:
            p += k_static * v * v
            if load is None:
                p += k_idle_clock * v * v * f
            else:
                p += k_dyn * ((1.0 - load) + load * stall) * v * v * f
        return p

    def cpu_idle_power(self, cluster: Cluster, f_ghz: float | None = None) -> float:
        """Cluster power when all cores are online but idle at ``f_ghz``.

        This is the quantity the paper characterises during benchmarking
        (section 4.3.3) and attributes proportionally across concurrent
        tasks.
        """
        f = cluster.freq if f_ghz is None else f_ghz
        v = cluster.voltage.volts(f)
        ct = cluster.core_type
        per_core = self.core_static_power(ct, v) + self.core_idle_clock_power(ct, f, v)
        return self.params.k_uncore * v * v * f + cluster.n_cores * per_core

    # ------------------------------------------------------------------
    # Memory side
    # ------------------------------------------------------------------
    def memory_power(self, memory: MemorySystem, achieved_bw: float) -> float:
        """Total memory-rail power at the current memory frequency with
        ``achieved_bw`` GB/s of traffic in flight.

        ``memory_idle_power`` and ``bandwidth_capacity`` are inlined
        (evaluated after most engine state changes); the arithmetic
        matches them exactly.
        """
        params = self.params
        f = memory.freq
        p = params.mem_idle_base + params.mem_idle_per_ghz * f
        v = memory.volts
        util = 0.0
        cap = memory.bw_cap_per_ghz * f
        if cap > 0:
            util = min(1.0, achieved_bw / cap)
        p += params.mem_energy_per_gb * achieved_bw
        p += params.k_mem_ctrl * v * v * f * util
        return p

    def memory_idle_power(
        self, memory: MemorySystem, f_ghz: float | None = None
    ) -> float:
        """Memory background power (no traffic) at ``f_ghz``."""
        f = memory.freq if f_ghz is None else f_ghz
        return self.params.mem_idle_base + self.params.mem_idle_per_ghz * f
