"""CPU clusters — the CPU-side DVFS domains.

All cores in a cluster share one frequency (the paper's
"core-clustered" design constraint, section 1): per-core DVFS is not
available, which is exactly what makes frequency *coordination* between
concurrently running tasks necessary (section 5.3).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FrequencyError
from repro.hw.core import Core, CoreType
from repro.hw.opp import OppTable
from repro.hw.voltage import VoltageCurve


class Cluster:
    """A set of identical cores sharing a frequency/voltage domain."""

    def __init__(
        self,
        cluster_id: int,
        core_type: CoreType,
        n_cores: int,
        opps: OppTable,
        voltage: VoltageCurve,
        core_id_base: int = 0,
    ) -> None:
        if n_cores <= 0:
            raise ValueError("cluster needs at least one core")
        self.cluster_id = cluster_id
        self.core_type = core_type
        self.opps = opps
        self.voltage = voltage
        #: Monotone counter bumped whenever per-core state that feeds
        #: the power model changes outside the frequency callbacks
        #: (hot-plug flips, activity churn); consumers pair it with the
        #: frequency to validate cached cluster power.
        self.power_epoch = 0
        #: Count of online cores, maintained by the ``Core.online``
        #: setter so hot paths never rescan the core list.
        self._n_online = n_cores
        #: Hot-unplugged cores still finishing an activity (grace
        #: semantics): they keep clocking and leaking, so the power
        #: model counts them alongside the online cores.  Incremented
        #: by the ``Core.online`` setter, decremented when the draining
        #: activity finishes.
        self._n_draining = 0
        self.cores = [Core(core_id_base + i, self) for i in range(n_cores)]
        self._freq = opps.max
        self._volts = voltage.volts(self._freq)
        #: Callbacks invoked as ``fn(cluster)`` after a frequency change.
        self.on_freq_change: list[Callable[["Cluster"], None]] = []

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    @property
    def freq(self) -> float:
        """Current cluster frequency (GHz)."""
        return self._freq

    @property
    def volts(self) -> float:
        """Supply voltage at the current frequency (cached at set_freq
        — this is read on every power evaluation)."""
        return self._volts

    def set_freq(self, f_ghz: float) -> None:
        """Apply a new frequency (must be an exact OPP).

        This is the *instantaneous* hardware action; transition latency
        is modelled by :class:`repro.hw.dvfs.DvfsController`, which is
        the only intended caller during simulation.
        """
        if f_ghz not in self.opps:
            raise FrequencyError(
                f"{f_ghz} GHz not an OPP of cluster {self.cluster_id} "
                f"({self.core_type.name})"
            )
        if abs(f_ghz - self._freq) < 1e-12:
            return
        self._freq = self.opps.nearest(f_ghz)
        self._volts = self.voltage.volts(self._freq)
        for fn in self.on_freq_change:
            fn(self)

    def busy_cores(self) -> list[Core]:
        return [c for c in self.cores if c.busy]

    def idle_cores(self) -> list[Core]:
        return [c for c in self.cores if not c.busy]

    def online_cores(self) -> list[Core]:
        """Cores currently accepting work (hot-plug aware)."""
        return [c for c in self.cores if c.online]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster({self.cluster_id}, {self.core_type.name}x{self.n_cores}, "
            f"f={self._freq}GHz)"
        )
