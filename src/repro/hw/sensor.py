"""Energy accounting: exact integration and INA3221-style sampling.

Two mechanisms coexist:

- :class:`EnergyAccountant` integrates piecewise-constant rail power
  exactly; the execution engine notifies it whenever any rail power
  changes.  Tests use this as the oracle.
- :class:`PowerSensor` mimics the paper's measurement methodology
  (section 6.1): the INA3221 is sampled every 5 ms, each sample carries
  multiplicative measurement noise, and energy is accumulated as
  ``sum(P_sample * dt)``.  All reported results use the sensor, like
  the paper; the exact accountant bounds the sampling error.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


class EnergyAccountant:
    """Exact piecewise-constant integration of named power rails."""

    def __init__(self, rails: tuple[str, ...] = ("cpu", "mem")) -> None:
        self.rails = rails
        self._power = {r: 0.0 for r in rails}
        self._energy = {r: 0.0 for r in rails}
        self._last_t = 0.0

    def update(self, now: float, powers: Mapping[str, float]) -> None:
        """Record that rail powers changed to ``powers`` at time ``now``.

        Integrates the *previous* powers over ``[last_t, now]`` first.
        """
        if now < self._last_t - 1e-12:
            raise SimulationError(
                f"energy accountant time went backwards ({now} < {self._last_t})"
            )
        dt = max(0.0, now - self._last_t)
        if dt > 0:
            for r in self.rails:
                self._energy[r] += self._power[r] * dt
        self._last_t = now
        for r, p in powers.items():
            if r not in self._power:
                raise SimulationError(f"unknown power rail {r!r}")
            self._power[r] = float(p)

    def update_pair(self, now: float, cpu: float, mem: float) -> None:
        """Fast path of :meth:`update` for the standard ``("cpu",
        "mem")`` rail pair — identical arithmetic and integration order,
        no per-call mapping allocation.  Callers must only use it when
        the accountant was built with exactly those rails (the execution
        engine checks once at construction)."""
        last = self._last_t
        if now < last - 1e-12:
            raise SimulationError(
                f"energy accountant time went backwards ({now} < {last})"
            )
        dt = now - last
        power = self._power
        if dt > 0:
            energy = self._energy
            energy["cpu"] += power["cpu"] * dt
            energy["mem"] += power["mem"] * dt
        self._last_t = now
        power["cpu"] = cpu
        power["mem"] = mem

    def integrate_to(self, now: float) -> None:
        """Integrate the current powers up to ``now`` without changing
        any rail — :meth:`update` with an empty mapping, minus the
        per-call mapping iteration."""
        last = self._last_t
        if now < last - 1e-12:
            raise SimulationError(
                f"energy accountant time went backwards ({now} < {last})"
            )
        dt = now - last
        if dt > 0:
            power = self._power
            energy = self._energy
            for r in self.rails:
                energy[r] += power[r] * dt
        self._last_t = now

    def finalize(self, now: float) -> None:
        """Integrate up to ``now`` without changing rail powers."""
        self.integrate_to(now)

    def power(self, rail: str) -> float:
        return self._power[rail]

    def energy(self, rail: str) -> float:
        """Energy accumulated so far on ``rail`` (joules)."""
        return self._energy[rail]

    def total_energy(self) -> float:
        return sum(self._energy.values())


class PowerSensor:
    """Periodic power sampler with measurement noise (INA3221 stand-in).

    ``read_fn`` normally returns a rail->watts mapping; returning
    ``None`` signals a *dropped* sample (a flaky I2C read — see
    :mod:`repro.faults`): no energy is accumulated for that interval
    and the drop is counted in :attr:`dropped`.
    """

    def __init__(
        self,
        sim: Simulator,
        read_fn: Callable[[], Optional[Mapping[str, float]]],
        interval_s: float = 0.005,
        noise_sigma: float = 0.02,
        rng: np.random.Generator | None = None,
        rails: tuple[str, ...] = ("cpu", "mem"),
        read_pair_fn: Optional[Callable[[], tuple[float, float]]] = None,
    ) -> None:
        if interval_s <= 0:
            raise SimulationError("sensor interval must be positive")
        self.sim = sim
        self.read_fn = read_fn
        #: Optional dict-free reader returning ``(cpu_w, mem_w)``; used
        #: only while ``read_fn`` is still the constructor-supplied one
        #: (fault injection wraps ``read_fn`` in place, which must win)
        #: and the rail set is the standard pair.  Same values, same
        #: noise draws — a pure allocation saving.
        self.read_pair_fn = read_pair_fn if rails == ("cpu", "mem") else None
        self._base_read = read_fn
        self.interval = float(interval_s)
        self.noise_sigma = float(noise_sigma)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.rails = rails
        self._energy = {r: 0.0 for r in rails}
        self.samples = 0
        #: Samples lost to read failures (fault injection).
        self.dropped = 0
        #: Time of the most recent *successful* sample (or of start()).
        self.last_sample_time = 0.0
        self._running = False
        self._pending: Optional[Event] = None
        #: Time up to which energy has been accounted (sample edge).
        self._last_edge = 0.0
        #: Block-drawn noise buffer.  ``Generator.standard_normal(n)``
        #: fills arrays with the same ziggurat draws a sequence of
        #: scalar calls would consume, so buffering preserves the noise
        #: stream bit-for-bit while amortising the per-call overhead.
        self._noise_buf: np.ndarray = np.empty(0)
        self._noise_i = 0

    def start(self) -> None:
        """Begin sampling; the first sample is taken one interval in."""
        if self._running:
            return
        self._running = True
        self.last_sample_time = self.sim.now
        self._last_edge = self.sim.now
        self._pending = self.sim.schedule(self.interval, self._sample)

    def stop(self) -> None:
        """Halt sampling.  Cancels the in-flight sample event so a later
        ``start()`` cannot revive it alongside the freshly scheduled one
        (which would double-count energy)."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def finalize(self, now: float) -> None:
        """Account the partial tail interval ``[last sample, now]`` and
        stop.  Without this, up to one interval of energy per run is
        silently dropped (the paper's methodology integrates to the
        final timestamp)."""
        if self._running:
            dt = now - self._last_edge
            if dt > 0:
                self._accumulate(dt)
                self._last_edge = now
        self.stop()

    def _sample(self) -> None:
        self._pending = None
        if not self._running:
            return
        self._accumulate(self.interval)
        self._last_edge = self.sim.now
        self._pending = self.sim.schedule(self.interval, self._sample)

    def _accumulate(self, dt: float) -> None:
        pair = self.read_pair_fn
        if pair is not None and self.read_fn is self._base_read:
            cpu_w, mem_w = pair()
            sigma = self.noise_sigma
            energy = self._energy
            if sigma > 0:
                buf, i = self._noise_buf, self._noise_i
                if i + 2 > len(buf):
                    buf = self._noise_buf = self.rng.standard_normal(256)
                    i = 0
                noise = 1.0 + sigma * buf[i]
                energy["cpu"] += (cpu_w * noise if noise > 0.0 else 0.0) * dt
                noise = 1.0 + sigma * buf[i + 1]
                energy["mem"] += (mem_w * noise if noise > 0.0 else 0.0) * dt
                self._noise_i = i + 2
            else:
                energy["cpu"] += cpu_w * dt
                energy["mem"] += mem_w * dt
            self.samples += 1
            self.last_sample_time = self.sim.now
            return
        true_powers = self.read_fn()
        if true_powers is None:  # dropped sample: the interval is lost
            self.dropped += 1
            return
        sigma = self.noise_sigma
        energy = self._energy
        if sigma > 0:
            buf, i = self._noise_buf, self._noise_i
            if i + len(self.rails) > len(buf):
                buf = self._noise_buf = self.rng.standard_normal(256)
                i = 0
            for r in self.rails:
                p = float(true_powers.get(r, 0.0))
                noise = 1.0 + sigma * buf[i]
                i += 1
                energy[r] += (p * noise if noise > 0.0 else 0.0) * dt
            self._noise_i = i
        else:
            for r in self.rails:
                energy[r] += float(true_powers.get(r, 0.0)) * dt
        self.samples += 1
        self.last_sample_time = self.sim.now

    def energy(self, rail: str) -> float:
        """Sampled energy on ``rail`` so far (joules)."""
        return self._energy[rail]

    def total_energy(self) -> float:
        return sum(self._energy.values())
