"""Energy accounting: exact integration and INA3221-style sampling.

Two mechanisms coexist:

- :class:`EnergyAccountant` integrates piecewise-constant rail power
  exactly; the execution engine notifies it whenever any rail power
  changes.  Tests use this as the oracle.
- :class:`PowerSensor` mimics the paper's measurement methodology
  (section 6.1): the INA3221 is sampled every 5 ms, each sample carries
  multiplicative measurement noise, and energy is accumulated as
  ``sum(P_sample * dt)``.  All reported results use the sensor, like
  the paper; the exact accountant bounds the sampling error.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class EnergyAccountant:
    """Exact piecewise-constant integration of named power rails."""

    def __init__(self, rails: tuple[str, ...] = ("cpu", "mem")) -> None:
        self.rails = rails
        self._power = {r: 0.0 for r in rails}
        self._energy = {r: 0.0 for r in rails}
        self._last_t = 0.0

    def update(self, now: float, powers: Mapping[str, float]) -> None:
        """Record that rail powers changed to ``powers`` at time ``now``.

        Integrates the *previous* powers over ``[last_t, now]`` first.
        """
        if now < self._last_t - 1e-12:
            raise SimulationError(
                f"energy accountant time went backwards ({now} < {self._last_t})"
            )
        dt = max(0.0, now - self._last_t)
        if dt > 0:
            for r in self.rails:
                self._energy[r] += self._power[r] * dt
        self._last_t = now
        for r, p in powers.items():
            if r not in self._power:
                raise SimulationError(f"unknown power rail {r!r}")
            self._power[r] = float(p)

    def finalize(self, now: float) -> None:
        """Integrate up to ``now`` without changing rail powers."""
        self.update(now, {})

    def power(self, rail: str) -> float:
        return self._power[rail]

    def energy(self, rail: str) -> float:
        """Energy accumulated so far on ``rail`` (joules)."""
        return self._energy[rail]

    def total_energy(self) -> float:
        return sum(self._energy.values())


class PowerSensor:
    """Periodic power sampler with measurement noise (INA3221 stand-in)."""

    def __init__(
        self,
        sim: Simulator,
        read_fn: Callable[[], Mapping[str, float]],
        interval_s: float = 0.005,
        noise_sigma: float = 0.02,
        rng: np.random.Generator | None = None,
        rails: tuple[str, ...] = ("cpu", "mem"),
    ) -> None:
        if interval_s <= 0:
            raise SimulationError("sensor interval must be positive")
        self.sim = sim
        self.read_fn = read_fn
        self.interval = float(interval_s)
        self.noise_sigma = float(noise_sigma)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.rails = rails
        self._energy = {r: 0.0 for r in rails}
        self.samples = 0
        self._running = False

    def start(self) -> None:
        """Begin sampling; the first sample is taken one interval in."""
        if self._running:
            return
        self._running = True
        self.sim.schedule(self.interval, self._sample)

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        true_powers = self.read_fn()
        for r in self.rails:
            p = float(true_powers.get(r, 0.0))
            if self.noise_sigma > 0:
                p *= max(0.0, 1.0 + self.noise_sigma * self.rng.standard_normal())
            self._energy[r] += p * self.interval
        self.samples += 1
        self.sim.schedule(self.interval, self._sample)

    def energy(self, rail: str) -> float:
        """Sampled energy on ``rail`` so far (joules)."""
        return self._energy[rail]

    def total_energy(self) -> float:
        return sum(self._energy.values())
