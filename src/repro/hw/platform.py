"""Platform assembly and factories.

A :class:`Platform` is a *stateful* collection of clusters plus the
memory system and the ground-truth power model; frequencies mutate
during a simulation run, so construct a fresh platform per run (the
factories are cheap).

``jetson_tx2()`` builds the paper's evaluation board: a dual-core
high-performance "Denver" cluster and a quad-core "A57" cluster sharing
one memory system, with the real TX2 frequency ladders.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.hw.cluster import Cluster
from repro.hw.core import Core, CoreType
from repro.hw.memory import MemorySystem
from repro.hw.opp import OppTable
from repro.hw.power import PowerModel, PowerModelParams
from repro.hw.voltage import VoltageCurve

#: Real Jetson TX2 CPU OPPs (GHz), identical for both clusters.
TX2_CPU_FREQS: tuple[float, ...] = (
    0.345, 0.499, 0.652, 0.806, 0.960, 1.110,
    1.270, 1.420, 1.570, 1.730, 1.880, 2.040,
)

#: Real Jetson TX2 EMC/DRAM OPPs (GHz); 1.866 is the paper's "1.87".
TX2_MEM_FREQS: tuple[float, ...] = (0.408, 0.665, 0.800, 1.062, 1.331, 1.600, 1.866)

#: High-performance NVIDIA Denver core: wide out-of-order, roughly
#: 2-3.4x the per-clock compute throughput of the A57 depending on the
#: kernel's ILP, and a faster memory pipeline; substantially higher
#: dynamic power.
DENVER = CoreType(
    name="denver",
    giga_ops_per_ghz=2.2,
    stream_bw_per_ghz=7.0,
    k_dyn=0.80,
    k_static=0.05,
    stall_activity=0.60,
)

#: Efficiency ARM Cortex-A57 core.
A57 = CoreType(
    name="a57",
    giga_ops_per_ghz=1.0,
    stream_bw_per_ghz=5.0,
    k_dyn=0.42,
    k_static=0.025,
    stall_activity=0.65,
)


class Platform:
    """Clusters + memory + ground-truth power model."""

    def __init__(
        self,
        clusters: Sequence[Cluster],
        memory: MemorySystem,
        power_model: PowerModel,
        name: str = "platform",
    ) -> None:
        if not clusters:
            raise ConfigurationError("platform needs at least one cluster")
        self.clusters = list(clusters)
        self.memory = memory
        self.power_model = power_model
        self.name = name
        self.cores: list[Core] = [c for cl in self.clusters for c in cl.cores]
        ids = [c.core_id for c in self.cores]
        if ids != list(range(len(ids))):
            raise ConfigurationError("core ids must be dense and ordered")
        for i, c in enumerate(self.cores):
            c.slot = i  # dense SoA slot (== core_id given the check above)
        # Clusters sharing a core-type name form an equivalence class:
        # the scheduler picks the *type*, the runtime may use any of its
        # clusters (this is what makes per-core-DVFS platforms — many
        # single-core clusters with the same type name — work).
        self._by_type: dict[str, list[Cluster]] = {}
        for cl in self.clusters:
            self._by_type.setdefault(cl.core_type.name, []).append(cl)
        # Topology is fixed after construction (hot-unplug flips the
        # ``online`` flag, never the core lists), so the per-type core
        # lists are built once; callers treat them as read-only.
        self._cores_by_type: dict[str, list[Core]] = {
            name: [c for cl in cls_ for c in cl.cores]
            for name, cls_ in self._by_type.items()
        }

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def cluster_of(self, core: Core) -> Cluster:
        return core.cluster

    def cluster_by_type(self, type_name: str) -> Cluster:
        """First cluster of a type (canonical representative)."""
        return self.clusters_of_type(type_name)[0]

    def clusters_of_type(self, type_name: str) -> list[Cluster]:
        """All clusters whose core type carries this name."""
        try:
            return self._by_type[type_name]
        except KeyError:
            raise ConfigurationError(
                f"no cluster of type {type_name!r} (have {sorted(self._by_type)})"
            ) from None

    def cores_of_type(self, type_name: str) -> list[Core]:
        """Cores of the named type (precomputed; do not mutate)."""
        try:
            return self._cores_by_type[type_name]
        except KeyError:
            raise ConfigurationError(
                f"no cluster of type {type_name!r} (have {sorted(self._by_type)})"
            ) from None

    def core_type_names(self) -> list[str]:
        """Distinct core-type names, in cluster order."""
        return list(self._by_type)

    def allowed_core_counts(self, cluster: Cluster) -> list[int]:
        """Power-of-two core counts usable for a moldable task on a
        cluster — 1, 2, ..., up to the cluster size (paper section 7.4
        counts ``log(N/M)`` options per cluster)."""
        out = []
        n = 1
        while n <= cluster.n_cores:
            out.append(n)
            n *= 2
        return out

    def resource_configs(self) -> list[tuple[Cluster, int]]:
        """All ``(cluster, n_cores)`` placement options (the paper's
        ``<T_C, N_C>`` pairs), one per distinct core-type name —
        equivalent clusters contribute a single entry."""
        out = []
        for clusters in self._by_type.values():
            cl = clusters[0]
            out.extend((cl, nc) for nc in self.allowed_core_counts(cl))
        return out

    def reset_frequencies(self) -> None:
        """Pin every domain at its maximum (the paper's initial state)."""
        for cl in self.clusters:
            cl.set_freq(cl.opps.max)
        self.memory.set_freq(self.memory.opps.max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{cl.core_type.name}x{cl.n_cores}" for cl in self.clusters
        )
        return f"Platform({self.name}: {parts})"


#: CPU V/f curve with the low-frequency voltage floor real silicon has
#: (TX2 CPU rails sit near 0.80 V below ~1 GHz, then scale to ~1.07 V).
#: The floor is what puts the CPU *energy* optimum at a mid-ladder
#: frequency (the paper's schedulers pick 1.11 GHz, not the minimum):
#: below the knee, dynamic energy per op stops shrinking while idle
#: energy keeps growing with runtime.
_TX2_CPU_VOLTAGE = VoltageCurve([(0.3, 0.80), (1.0, 0.80), (2.1, 1.08)])


def jetson_tx2(power_params: PowerModelParams | None = None) -> Platform:
    """Fresh NVIDIA Jetson TX2 platform model."""
    cpu_volt = _TX2_CPU_VOLTAGE
    mem_volt = VoltageCurve.linear(1.05, 0.05, 0.4, 1.9)
    cpu_opps = OppTable(TX2_CPU_FREQS)
    denver = Cluster(0, DENVER, 2, cpu_opps, cpu_volt, core_id_base=0)
    a57 = Cluster(1, A57, 4, cpu_opps, cpu_volt, core_id_base=2)
    memory = MemorySystem(
        OppTable(TX2_MEM_FREQS), mem_volt, bw_cap_per_ghz=12.0, stream_bw_per_ghz=7.5
    )
    return Platform(
        [denver, a57], memory, PowerModel(power_params), name="jetson-tx2"
    )


def jetson_tx2_per_core(power_params: PowerModelParams | None = None) -> Platform:
    """Idealised TX2 variant with **per-core DVFS**: every core is its
    own single-core frequency domain.

    The paper (section 1) notes that cores are grouped into clusters to
    cut the design cost of per-core DVFS, which is what forces JOSS's
    frequency *coordination*.  This factory removes that constraint so
    the cost of cluster-level DVFS can be quantified (see the
    ``percore`` experiment).  The single-core clusters keep the shared
    type names ("denver"/"a57"), so schedulers place by type as usual
    while every core's frequency is independently tunable; moldable
    execution is unavailable by construction (1-core clusters).
    """
    cpu_volt = _TX2_CPU_VOLTAGE
    mem_volt = VoltageCurve.linear(1.05, 0.05, 0.4, 1.9)
    cpu_opps = OppTable(TX2_CPU_FREQS)
    clusters = []
    base = 0
    for _ in range(2):
        clusters.append(
            Cluster(base, DENVER, 1, cpu_opps, cpu_volt, core_id_base=base)
        )
        base += 1
    for _ in range(4):
        clusters.append(
            Cluster(base, A57, 1, cpu_opps, cpu_volt, core_id_base=base)
        )
        base += 1
    memory = MemorySystem(
        OppTable(TX2_MEM_FREQS), mem_volt, bw_cap_per_ghz=12.0, stream_bw_per_ghz=7.5
    )
    return Platform(
        clusters, memory, PowerModel(power_params), name="jetson-tx2-per-core"
    )


#: ODROID-XU4 (Exynos 5422) OPPs: the big A15 and little A7 clusters
#: have *different* frequency ladders, and the LPDDR3 memory has no
#: DVFS knob at all — the board the paper cites as the other common
#: asymmetric evaluation platform ([2] in the paper).
XU4_A15_FREQS: tuple[float, ...] = (0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
XU4_A7_FREQS: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2, 1.4)
XU4_MEM_FREQS: tuple[float, ...] = (0.825,)

#: Cortex-A15: fast, notoriously power-hungry big core.
A15 = CoreType(
    name="a15",
    giga_ops_per_ghz=1.7,
    stream_bw_per_ghz=5.5,
    k_dyn=0.95,
    k_static=0.05,
    stall_activity=0.60,
)

#: Cortex-A7: the little in-order companion core.
A7 = CoreType(
    name="a7",
    giga_ops_per_ghz=0.6,
    stream_bw_per_ghz=2.5,
    k_dyn=0.16,
    k_static=0.015,
    stall_activity=0.70,
)


def odroid_xu4(power_params: PowerModelParams | None = None) -> Platform:
    """Fresh ODROID-XU4 platform model: A15x4 + A7x4, heterogeneous
    per-cluster OPP ladders, no memory DVFS.

    On this board JOSS degenerates gracefully: the memory-frequency
    grid has a single column, so JOSS behaves as JOSS_NoMemDVFS —
    still accounting for memory *energy*, which the paper shows beats
    CPU-energy-only scheduling even without the knob.
    """
    a15_volt = VoltageCurve([(0.6, 0.90), (1.0, 0.90), (2.1, 1.25)])
    a7_volt = VoltageCurve([(0.5, 0.90), (0.9, 0.90), (1.5, 1.10)])
    mem_volt = VoltageCurve.linear(1.2, 0.0, 0.5, 1.0)
    a15 = Cluster(0, A15, 4, OppTable(XU4_A15_FREQS), a15_volt, core_id_base=0)
    a7 = Cluster(1, A7, 4, OppTable(XU4_A7_FREQS), a7_volt, core_id_base=4)
    memory = MemorySystem(
        OppTable(XU4_MEM_FREQS), mem_volt, bw_cap_per_ghz=16.0,
        stream_bw_per_ghz=8.0,
    )
    return Platform(
        [a15, a7], memory, PowerModel(power_params), name="odroid-xu4"
    )


def symmetric_platform(
    n_clusters: int = 2,
    cores_per_cluster: int = 4,
    core_type: CoreType = A57,
    cpu_freqs: Iterable[float] = TX2_CPU_FREQS,
    mem_freqs: Iterable[float] = TX2_MEM_FREQS,
    power_params: PowerModelParams | None = None,
) -> Platform:
    """Symmetric multi-cluster platform (used for scaling/overhead
    studies and for exercising schedulers without core asymmetry)."""
    if n_clusters < 1 or cores_per_cluster < 1:
        raise ConfigurationError("need at least one cluster and one core")
    cpu_volt = VoltageCurve.linear(0.55, 0.25, 0.3, 2.1)
    mem_volt = VoltageCurve.linear(1.05, 0.05, 0.4, 1.9)
    opps = OppTable(cpu_freqs)
    clusters = []
    base = 0
    for i in range(n_clusters):
        clusters.append(
            Cluster(i, core_type, cores_per_cluster, opps, cpu_volt, core_id_base=base)
        )
        base += cores_per_cluster
    memory = MemorySystem(OppTable(mem_freqs), mem_volt)
    return Platform(
        clusters, memory, PowerModel(power_params), name=f"sym-{n_clusters}x{cores_per_cluster}"
    )


# ----------------------------------------------------------------------
# Factory registry (sweep jobs reference platforms by name)
# ----------------------------------------------------------------------
#: Named zero-argument factories.  Sweep job specs carry the *name* so
#: they stay picklable/hashable; worker processes resolve it here.
PLATFORM_FACTORIES: dict[str, "Callable[[], Platform]"] = {
    "jetson-tx2": jetson_tx2,
    "jetson-tx2-per-core": jetson_tx2_per_core,
    "odroid-xu4": odroid_xu4,
}


def platform_names() -> list[str]:
    """Registered platform factory names."""
    return sorted(PLATFORM_FACTORIES)


def platform_factory(name: str):
    """Resolve a registered factory by name."""
    try:
        return PLATFORM_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r}; registered: {platform_names()}"
        ) from None


def register_platform_factory(name: str, factory, replace: bool = False) -> None:
    """Register a custom zero-argument platform factory under ``name``."""
    if name in PLATFORM_FACTORIES and not replace:
        raise ConfigurationError(f"platform {name!r} is already registered")
    PLATFORM_FACTORIES[name] = factory
