"""Core types and cores.

A :class:`CoreType` captures the microarchitectural parameters of one
kind of core (the TX2 has two: the high-performance NVIDIA "Denver"
and the efficiency ARM "A57").  A :class:`Core` is one instance inside
a cluster; its execution state is owned by the runtime's worker layer,
but a minimal busy/idle flag lives here because the power model and
the idle-power attribution logic (paper section 5.3) need it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hw.cluster import Cluster


@dataclass(frozen=True)
class CoreType:
    """Microarchitectural parameters of one core flavour.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"denver"`` or ``"a57"``.
    giga_ops_per_ghz:
        Compute throughput per core per GHz (abstract giga-operations).
        This is the *base* rate; individual kernels can scale it via
        their per-type affinity factor (ILP-heavy kernels benefit more
        from a wide OoO core).
    stream_bw_per_ghz:
        Single-core achievable memory bandwidth per GHz of *core*
        frequency (GB/s per GHz) — models the issue-rate limit that
        couples core frequency to memory stall time (paper section 4.2).
    k_dyn:
        Dynamic power coefficient: ``P_dyn = k_dyn * activity * V^2 * f``
        (watts when V in volts and f in GHz).
    k_static:
        Leakage coefficient per online core: ``P_leak = k_static * V^2``.
    stall_activity:
        Activity factor while stalled on memory, relative to full
        compute activity (a stalled core still clocks and burns power,
        just less).
    """

    name: str
    giga_ops_per_ghz: float
    stream_bw_per_ghz: float
    k_dyn: float
    k_static: float
    stall_activity: float = 0.35

    def __post_init__(self) -> None:
        if self.giga_ops_per_ghz <= 0 or self.stream_bw_per_ghz <= 0:
            raise ValueError("throughput parameters must be positive")
        if not (0.0 <= self.stall_activity <= 1.0):
            raise ValueError("stall_activity must be in [0, 1]")


class Core:
    """One physical core inside a cluster.

    A plain slotted class (not a dataclass): ``busy`` and
    ``current_activity`` are written on every task start/finish and read
    on every power evaluation, so attribute access cost matters.
    """

    __slots__ = (
        "core_id", "cluster", "slot", "busy", "current_activity", "_online"
    )

    def __init__(self, core_id: int, cluster: "Cluster") -> None:
        self.core_id = core_id
        self.cluster = cluster
        #: Dense index into ``Platform.cores``, assigned by the platform
        #: at construction.  The execution engine keys its per-activity
        #: structure-of-arrays store by this (one running activity per
        #: core), so the hot start path reads an attribute instead of
        #: hashing the core through a dict.
        self.slot = -1
        self.busy = False
        #: Opaque handle to whatever the core is currently executing
        #: (an :class:`repro.exec_model.activity.Activity`); owned by the
        #: execution engine, stored here for power evaluation.
        self.current_activity: Optional[object] = None
        self._online = True

    @property
    def online(self) -> bool:
        """Hot-plug state: an offline core accepts no new work, stops
        leaking, and its worker sleeps until it is plugged back in.
        Toggled only by fault injection (``repro.faults``); a running
        activity is allowed to finish (grace semantics, like cpu-hotplug
        migration on Linux).

        The setter maintains the owning cluster's ``_n_online`` /
        ``_n_draining`` counters (the closed-form power sums read
        those, never a core-list scan) and bumps ``power_epoch`` for
        external consumers — flips bypass every frequency callback,
        these are the only signals they leave."""
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        cluster = self.cluster
        cluster.power_epoch += 1
        if value:
            cluster._n_online += 1
            if self.busy:  # was draining; now a regular busy core
                cluster._n_draining -= 1
        else:
            cluster._n_online -= 1
            if self.busy:  # keeps finishing its activity (grace)
                cluster._n_draining += 1

    @property
    def core_type(self) -> CoreType:
        return self.cluster.core_type

    @property
    def freq(self) -> float:
        """Current core frequency = cluster frequency (GHz)."""
        # Reads the cluster's backing field directly: this property is
        # on the engine's re-timing hot path and the extra property hop
        # through Cluster.freq is measurable.
        return self.cluster._freq

    def __hash__(self) -> int:
        return self.core_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self.busy else "idle"
        return f"Core({self.core_id}, {self.core_type.name}, {state})"
