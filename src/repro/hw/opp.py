"""Operating performance points (OPP) — the discrete frequency ladder.

Frequencies are in GHz throughout the package.  An :class:`OppTable`
is an immutable, ascending list of available frequencies with helpers
used by DVFS controllers and by the steepest-descent configuration
search (neighbour indexing on the frequency grid).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import FrequencyError


class OppTable:
    """Immutable ascending table of available frequencies (GHz)."""

    def __init__(self, freqs_ghz: Iterable[float]) -> None:
        freqs = tuple(sorted(float(f) for f in freqs_ghz))
        if not freqs:
            raise FrequencyError("OPP table must contain at least one frequency")
        if any(f <= 0 for f in freqs):
            raise FrequencyError("frequencies must be positive")
        if len(set(freqs)) != len(freqs):
            raise FrequencyError("duplicate frequencies in OPP table")
        self._freqs = freqs
        # Exact-membership fast path: frequencies flowing through DVFS
        # controllers and ``set_freq`` validation are OPP members passed
        # around verbatim, so the common ``in`` check is one hash lookup;
        # the tolerant linear scan below remains the fallback for values
        # reconstructed through arithmetic.
        self._exact = frozenset(freqs)
        # Snap results memoised per requested frequency: DVFS governors
        # and schedulers snap the same handful of targets over and over
        # (the table is immutable, so entries never invalidate).
        self._nearest: dict[float, float] = {}

    @property
    def freqs(self) -> tuple[float, ...]:
        return self._freqs

    @property
    def min(self) -> float:
        return self._freqs[0]

    @property
    def max(self) -> float:
        return self._freqs[-1]

    def __len__(self) -> int:
        return len(self._freqs)

    def __iter__(self):
        return iter(self._freqs)

    def __contains__(self, f: float) -> bool:
        return f in self._exact or any(abs(f - g) < 1e-9 for g in self._freqs)

    def index(self, f: float) -> int:
        """Index of frequency ``f`` (exact OPP member, tolerant to fp)."""
        for i, g in enumerate(self._freqs):
            if abs(f - g) < 1e-9:
                return i
        raise FrequencyError(f"{f} GHz is not an available OPP (have {self._freqs})")

    def at(self, i: int) -> float:
        return self._freqs[i]

    def nearest(self, f: float) -> float:
        """Available OPP closest to an arbitrary target frequency.

        Used to snap the averaging heuristic's arithmetic-mean request
        (paper section 5.3) onto the hardware ladder.
        """
        hit = self._nearest.get(f)
        if hit is not None:
            return hit
        arr = np.asarray(self._freqs)
        snapped = float(arr[int(np.argmin(np.abs(arr - f)))])
        self._nearest[f] = snapped
        return snapped

    def neighbours(self, f: float) -> tuple[float, ...]:
        """Immediately adjacent OPPs (one step down / up the ladder)."""
        i = self.index(f)
        out = []
        if i > 0:
            out.append(self._freqs[i - 1])
        if i < len(self._freqs) - 1:
            out.append(self._freqs[i + 1])
        return tuple(out)

    def as_array(self) -> np.ndarray:
        return np.asarray(self._freqs, dtype=float)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OppTable({list(self._freqs)})"


def make_opp(freqs_ghz: Sequence[float]) -> OppTable:
    """Convenience constructor (kept for API symmetry)."""
    return OppTable(freqs_ghz)
