"""DVFS controllers with transition latency.

Frequency changes on real hardware are not free: the TX2's cluster PLL
relock and the EMC frequency switch take tens to hundreds of
microseconds.  A :class:`DvfsController` accepts *requests*, snaps them
to the nearest OPP, and applies them after a configurable latency.  A
newer request supersedes a pending one (last-writer-wins), which is how
the paper's frequency-coordination averaging interacts with in-flight
transitions.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.errors import FrequencyError
from repro.sim.engine import Event, Simulator


class _FreqDomain(Protocol):
    """Anything with an OPP table and a settable frequency."""

    @property
    def freq(self) -> float: ...  # noqa: E704 - protocol stub

    opps: object

    def set_freq(self, f_ghz: float) -> None: ...  # noqa: E704


class DvfsController:
    """Latency-modelled frequency actuator for one domain."""

    #: Event priority: frequency changes apply before same-time task
    #: events so a task starting at t sees the post-transition frequency.
    APPLY_PRIORITY = -10

    def __init__(
        self,
        sim: Simulator,
        domain: _FreqDomain,
        transition_latency_s: float,
        name: str = "dvfs",
        transition_stall_s: float = 0.0,
    ) -> None:
        """
        ``transition_latency_s`` is the request-to-apply delay (PLL
        relock / EMC retrain); ``transition_stall_s`` optionally models
        the *execution stall* the switch inflicts on work using the
        domain (real EMC switches briefly block all traffic — the cost
        behind the paper's fine-grained-task coarsening).  Stalls are
        delivered through :attr:`on_stall` callbacks; zero disables.
        """
        self.sim = sim
        self.domain = domain
        self.latency = float(transition_latency_s)
        self.stall = float(transition_stall_s)
        self.name = name
        self.transitions = 0
        self.requests = 0
        self._pending: Optional[Event] = None
        self._pending_freq: Optional[float] = None
        #: Request-target -> snapped-OPP memo.  The OPP ladder is fixed
        #: for the controller's lifetime and coordination policies keep
        #: re-requesting the same handful of averaged targets, so the
        #: range check + nearest-OPP search is pure and cacheable.
        self._snap: dict[float, float] = {}
        #: Optional callbacks fired as ``fn(controller)`` after an
        #: actual frequency transition (an apply landing on the current
        #: frequency — a superseding request routed back to it — is
        #: silent, keeping observers in lockstep with ``transitions``).
        self.on_applied: list[Callable[["DvfsController"], None]] = []
        #: Callbacks fired as ``fn(controller, stall_seconds)`` when an
        #: actual transition occurs and ``transition_stall_s > 0``.
        self.on_stall: list[Callable[["DvfsController", float], None]] = []

    @property
    def target_freq(self) -> float:
        """Frequency the domain is heading to (pending or current)."""
        if self._pending_freq is not None:
            return self._pending_freq
        return self.domain.freq

    def request(self, f_ghz: float) -> float:
        """Request a frequency; returns the snapped OPP that will apply.

        Requests within (or within one ladder step of) the OPP range are
        snapped to the nearest OPP; anything farther out raises
        :class:`~repro.errors.FrequencyError` — silent snapping would
        mask a mis-scaled caller (GHz/MHz confusion, corrupted table).

        No-op (and no latency) if the snapped target equals the current
        frequency and nothing else is pending.
        """
        snapped = self._snap.get(f_ghz)
        if snapped is None:
            self._check_in_range(f_ghz)
            snapped = self.domain.opps.nearest(f_ghz)
            if len(self._snap) < 4096:  # bound pathological churn
                self._snap[f_ghz] = snapped
        self.requests += 1
        if self._pending is None and abs(snapped - self.domain.freq) < 1e-12:
            return snapped
        if self._pending_freq is not None and abs(snapped - self._pending_freq) < 1e-12:
            return snapped
        if self._pending is not None:
            self._pending.cancel()
        self._pending_freq = snapped
        if self.latency <= 0.0:
            self._apply(snapped)
        else:
            self._pending = self.sim.schedule(
                self.latency, self._apply, snapped, priority=self.APPLY_PRIORITY
            )
        return snapped

    def _check_in_range(self, f_ghz: float) -> None:
        """Reject targets more than one OPP step outside the ladder."""
        opps = self.domain.opps
        if len(opps) > 1:
            step_lo = opps.at(1) - opps.at(0)
            step_hi = opps.at(len(opps) - 1) - opps.at(len(opps) - 2)
        else:  # single-OPP domain (e.g. XU4 memory): be lenient
            step_lo = step_hi = opps.min
        if f_ghz < opps.min - step_lo or f_ghz > opps.max + step_hi:
            raise FrequencyError(
                f"{self.name}: requested {f_ghz} GHz is more than one OPP "
                f"step outside the ladder [{opps.min}, {opps.max}] GHz"
            )

    def _apply(self, f_ghz: float) -> None:
        self._pending = None
        self._pending_freq = None
        if abs(f_ghz - self.domain.freq) < 1e-12:
            # A newer request superseded the pending one with the
            # current frequency: nothing changes, no observer fires.
            return
        self.transitions += 1
        self.domain.set_freq(f_ghz)
        if self.stall > 0:
            for fn in self.on_stall:
                fn(self, self.stall)
        for fn in self.on_applied:
            fn(self)
