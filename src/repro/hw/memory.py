"""Memory system — the memory-side DVFS domain.

Models the TX2's EMC/LPDDR4 subsystem: a frequency ladder for the
memory controller + DRAM, a total bandwidth capacity proportional to
memory frequency, and a per-stream service rate used by the ground
truth timing model.  Bandwidth *contention* between concurrent tasks is
computed by :mod:`repro.exec_model.contention` on top of the capacity
exposed here.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FrequencyError
from repro.hw.opp import OppTable
from repro.hw.voltage import VoltageCurve


class MemorySystem:
    """Shared memory subsystem with its own DVFS knob."""

    def __init__(
        self,
        opps: OppTable,
        voltage: VoltageCurve,
        bw_cap_per_ghz: float = 12.0,
        stream_bw_per_ghz: float = 7.5,
    ) -> None:
        """
        Parameters
        ----------
        bw_cap_per_ghz:
            Total sustainable bandwidth per GHz of memory frequency
            (GB/s per GHz); ~22 GB/s at the TX2's 1.866 GHz maximum.
        stream_bw_per_ghz:
            Maximum bandwidth a single access stream can extract per
            GHz of memory frequency (latency-limited), GB/s per GHz.
        """
        self.opps = opps
        self.voltage = voltage
        self.bw_cap_per_ghz = float(bw_cap_per_ghz)
        self.stream_bw_per_ghz = float(stream_bw_per_ghz)
        self._freq = opps.max
        self._volts = voltage.volts(self._freq)
        #: Callbacks invoked as ``fn(memory)`` after a frequency change.
        self.on_freq_change: list[Callable[["MemorySystem"], None]] = []

    @property
    def freq(self) -> float:
        """Current memory frequency (GHz)."""
        return self._freq

    @property
    def volts(self) -> float:
        """Supply voltage at the current frequency (cached at set_freq
        — this is read on every power evaluation)."""
        return self._volts

    @property
    def bandwidth_capacity(self) -> float:
        """Total sustainable bandwidth at the current frequency (GB/s)."""
        return self.bw_cap_per_ghz * self._freq

    def stream_bandwidth(self) -> float:
        """Per-stream (single task) bandwidth limit at current f (GB/s)."""
        return self.stream_bw_per_ghz * self._freq

    def set_freq(self, f_ghz: float) -> None:
        """Apply a new memory frequency (exact OPP; see cluster note)."""
        if f_ghz not in self.opps:
            raise FrequencyError(f"{f_ghz} GHz not a memory OPP ({self.opps.freqs})")
        if abs(f_ghz - self._freq) < 1e-12:
            return
        self._freq = self.opps.nearest(f_ghz)
        self._volts = self.voltage.volts(self._freq)
        for fn in self.on_freq_change:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemorySystem(f={self._freq}GHz, cap={self.bandwidth_capacity:.1f}GB/s)"
