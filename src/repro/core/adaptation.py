"""Adaptive decision revalidation (extension beyond the paper).

JOSS as published samples each kernel once and fixes its configuration
for the rest of the run ("successive invocations of the same kernel use
the identified configuration", section 5.2).  That is sound when kernel
behaviour is stationary — but task working sets can drift (e.g. a
solver converging, cache behaviour changing with matrix fill-in).

This module adds a drift monitor: for every decided kernel it tracks an
exponential moving average of the ratio between measured and predicted
execution time; when the ratio leaves a tolerance band for a number of
consecutive observations, the kernel's decision is invalidated and it
re-enters the sampling pipeline.  The mechanism is disabled by default
(pure paper behaviour) and enabled via
``JossScheduler(adaptation=AdaptationPolicy(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class KernelDriftState:
    """Drift tracking for one decided kernel."""

    ema_ratio: float = 1.0
    violations: int = 0
    observations: int = 0


@dataclass
class AdaptationPolicy:
    """Configuration and state of the drift monitor.

    Attributes
    ----------
    enabled:
        Master switch; a disabled policy never invalidates decisions.
    tolerance:
        Allowed relative deviation of the measured/predicted time
        ratio's EMA from 1.0 before an observation counts as a
        violation (0.5 = 50%).
    patience:
        Consecutive violations required to invalidate a decision
        (guards against one-off interference spikes).
    alpha:
        EMA smoothing factor for the ratio.
    min_observations:
        Observations before the monitor may trigger (the EMA needs to
        warm up).
    """

    enabled: bool = True
    tolerance: float = 0.5
    patience: int = 5
    alpha: float = 0.3
    min_observations: int = 5
    #: Number of decisions invalidated so far (diagnostic).
    invalidations: int = field(default=0, init=False)
    #: Optional observer hook, called as ``on_invalidated(kernel_name)``
    #: whenever a decision is invalidated (wired by the scheduler).
    on_invalidated: Optional[Callable[[str], None]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _kernels: dict[str, KernelDriftState] = field(default_factory=dict, init=False)

    def observe(self, kernel_name: str, measured: float, predicted: float) -> bool:
        """Record one completed task; returns True when the kernel's
        decision should be invalidated (state resets for re-learning)."""
        if not self.enabled or measured <= 0 or predicted <= 0:
            return False
        st = self._kernels.setdefault(kernel_name, KernelDriftState())
        ratio = measured / predicted
        st.ema_ratio = (1 - self.alpha) * st.ema_ratio + self.alpha * ratio
        st.observations += 1
        if st.observations < self.min_observations:
            return False
        # A violation needs both the smoothed AND the instantaneous
        # ratio out of band: the EMA filters noise, the instantaneous
        # check stops a single spike's EMA tail from counting as
        # several violations.
        ema_out = abs(st.ema_ratio - 1.0) > self.tolerance
        inst_out = abs(ratio - 1.0) > self.tolerance
        if ema_out and inst_out:
            st.violations += 1
        else:
            st.violations = 0
        if st.violations >= self.patience:
            self.invalidations += 1
            self._kernels.pop(kernel_name, None)
            if self.on_invalidated is not None:
                self.on_invalidated(kernel_name)
            return True
        return False

    def state_of(self, kernel_name: str) -> KernelDriftState | None:
        return self._kernels.get(kernel_name)

    def reset(self) -> None:
        self._kernels.clear()
        self.invalidations = 0
