"""Scheduler health monitoring and graceful degradation (robustness
extension beyond the paper).

JOSS trusts two things the paper takes for granted: that its fitted
models keep predicting reality and that the power sensor keeps
reporting.  Under fault injection (:mod:`repro.faults`) either can
fail.  The :class:`HealthMonitor` builds on the drift-EMA mechanism of
:mod:`repro.core.adaptation` but reacts differently: instead of
immediately re-sampling (which trusts the models to be right *next*
time), a persistently mispredicted kernel falls back to the default
governor's behaviour — maximum frequencies and load-balanced placement,
the safe operating point every Linux board boots with — and only
re-enters the sampling pipeline after a hold period of clean fallback
invocations.  Sensor silence (no successful sample for a configurable
number of intervals) degrades *all* kernels at once, since no
energy-driven decision is trustworthy without measurements.

The monitor is off by default (``JossScheduler(health=None)``), in
which case scheduling is bit-identical to paper behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.core.adaptation import KernelDriftState


@dataclass
class HealthPolicy:
    """Configuration of the degradation machinery.

    Attributes
    ----------
    tolerance:
        Relative deviation of the measured/predicted EMA from 1.0 that
        counts as a violation.  Wider than the adaptation default: the
        fallback is a blunter response than re-sampling, so it should
        trigger on genuine misprediction, not drift.
    patience:
        Consecutive violations before a kernel degrades.
    alpha:
        EMA smoothing factor.
    min_observations:
        EMA warm-up before the monitor may trigger.
    recovery_hold:
        Completed fallback invocations of a degraded kernel before it
        is allowed to re-enter sampling.
    sensor_silence_intervals:
        Sampling intervals without a successful sensor sample before
        the scheduler degrades globally (0 disables silence detection).
    """

    tolerance: float = 1.0
    patience: int = 3
    alpha: float = 0.3
    min_observations: int = 3
    recovery_hold: int = 8
    sensor_silence_intervals: float = 10.0

    @classmethod
    def coerce(
        cls, value: "HealthPolicy | Mapping[str, Any] | bool | None"
    ) -> "Optional[HealthPolicy]":
        """Normalise the ``JossScheduler(health=...)`` argument.

        Accepts a policy, a plain mapping (so a policy can ride inside
        a JSON-serialisable :class:`~repro.sweep.spec.JobSpec`'s
        ``scheduler_kwargs``), ``True`` (defaults) or ``None``/``False``
        (disabled).
        """
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls(**dict(value))
        raise TypeError(f"cannot build a HealthPolicy from {value!r}")


@dataclass
class HealthMonitor:
    """Per-kernel degradation state driven by one :class:`HealthPolicy`."""

    policy: HealthPolicy
    #: Kernels currently in fallback -> clean completions so far.
    degraded: dict[str, int] = field(default_factory=dict, init=False)
    #: Total degradation entries (per-kernel + global), diagnostic.
    fallbacks: int = field(default=0, init=False)
    recoveries: int = field(default=0, init=False)
    #: Optional observer hooks, ``on_degrade(kernel)`` on a per-kernel
    #: fallback entry and ``on_recover(kernel)`` after the hold period
    #: is served (wired by the scheduler).
    on_degrade: Optional[Callable[[str], None]] = field(
        default=None, init=False, repr=False, compare=False
    )
    on_recover: Optional[Callable[[str], None]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _kernels: dict[str, KernelDriftState] = field(
        default_factory=dict, init=False
    )

    def observe(self, kernel_name: str, measured: float, predicted: float) -> bool:
        """Record one decided-mode completion; True => degrade now.

        Same violation-band hysteresis as
        :meth:`repro.core.adaptation.AdaptationPolicy.observe`: both the
        EMA and the instantaneous ratio must be out of band.
        """
        if measured <= 0 or predicted <= 0:
            return False
        p = self.policy
        st = self._kernels.setdefault(kernel_name, KernelDriftState())
        ratio = measured / predicted
        st.ema_ratio = (1 - p.alpha) * st.ema_ratio + p.alpha * ratio
        st.observations += 1
        if st.observations < p.min_observations:
            return False
        ema_out = abs(st.ema_ratio - 1.0) > p.tolerance
        inst_out = abs(ratio - 1.0) > p.tolerance
        if ema_out and inst_out:
            st.violations += 1
        else:
            st.violations = 0
        if st.violations >= p.patience:
            self.degrade(kernel_name)
            return True
        return False

    def degrade(self, kernel_name: str) -> None:
        """Put one kernel into fallback (idempotent)."""
        if kernel_name not in self.degraded:
            self.degraded[kernel_name] = 0
            self.fallbacks += 1
            if self.on_degrade is not None:
                self.on_degrade(kernel_name)
        self._kernels.pop(kernel_name, None)

    def is_degraded(self, kernel_name: str) -> bool:
        return kernel_name in self.degraded

    def note_fallback_completion(self, kernel_name: str) -> bool:
        """Count one completed fallback invocation; True => the kernel
        has served its hold period and may re-enter sampling."""
        if kernel_name not in self.degraded:
            return False
        self.degraded[kernel_name] += 1
        if self.degraded[kernel_name] >= self.policy.recovery_hold:
            del self.degraded[kernel_name]
            self.recoveries += 1
            if self.on_recover is not None:
                self.on_recover(kernel_name)
            return True
        return False

    def sensor_silent(self, now: float, last_sample: float, interval: float) -> bool:
        """Whether the sensor has been quiet long enough to distrust it."""
        n = self.policy.sensor_silence_intervals
        if n <= 0:
            return False
        return (now - last_sample) > n * interval

    def state_of(self, kernel_name: str) -> KernelDriftState | None:
        return self._kernels.get(kernel_name)

    def reset(self) -> None:
        self._kernels.clear()
        self.degraded.clear()
        self.fallbacks = 0
        self.recoveries = 0
