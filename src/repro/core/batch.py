"""Vectorised batch decision pipeline (LUT build + config selection).

The per-kernel decision flow (``suite.build_tables`` then
``goal.select``) evaluates each MPR model once per kernel per config
and runs each steepest-descent walk as a Python loop.  This module
lifts the whole flow for *all kernels of a workload* into single NumPy
passes:

- table population batches every kernel sharing a ``<T_C, N_C>``
  config through one stacked model evaluation per model
  (:meth:`repro.models.suite.ModelSuite.build_tables_batch`);
- selection stacks the per-kernel cost grids into ``(K, n_fc, n_fm)``
  arrays and runs the exhaustive scans and steepest-descent walks for
  all kernels simultaneously (an active-mask walk: kernels drop out as
  they reach their local minimum).

The scalar path (:mod:`repro.core.selection` driven by
:mod:`repro.core.goals`) is kept untouched as the reference
implementation.  The batch path reproduces it *exactly*: identical
chosen configurations, bit-identical :class:`PredictionTable`
contents, and identical ``evaluations`` accounting (the section 7.4
overhead metric) — property-tested in
``tests/core/test_batch_equivalence.py``.

Known (documented) divergence: cost grids containing NaN.  The scalar
tie-breaks use Python ``min``, whose NaN ordering is
occurrence-dependent; the batch path uses ``np.argmin``.  No shipped
goal produces NaN costs (infeasible cells are ``inf``), so the paths
agree on every reachable input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.goals import (
    Concurrency,
    DeadlineGoal,
    MaxPerformance,
    MaxPerformanceUnderPowerCap,
    MinCpuEnergy,
    MinTotalEnergy,
    PerformanceConstraint,
    Selector,
    TradeoffGoal,
    _conc_of,
)
from repro.core.selection import SelectionResult, TableKey
from repro.errors import ModelError
from repro.models.suite import ConfigKey, ModelSuite
from repro.models.tables import PredictionTable

#: Per-kernel table sets, as ``ModelSuite.build_tables_batch`` returns.
TablesByKernel = Mapping[str, Mapping[TableKey, PredictionTable]]

#: Per-kernel cost grids (same outer/inner ordering as the tables).
_CostsByKernel = dict[str, dict[TableKey, np.ndarray]]

#: Neighbour scan order of the scalar walk's ``(di, dj)`` double loop.
_OFFSETS = np.array(
    [(-1, -1), (-1, 0), (-1, 1), (0, -1), (0, 1), (1, -1), (1, 0), (1, 1)]
)


@dataclass(frozen=True)
class BatchDecision:
    """One kernel's resolved decision: its LUTs plus the selection."""

    tables: dict[TableKey, PredictionTable]
    selection: SelectionResult
    f_c: float
    f_m: float


def resolve_kernels(
    suite: ModelSuite,
    kernel_params: Mapping[str, Mapping[ConfigKey, tuple[float, float]]],
    grids: Mapping[str, tuple[np.ndarray, np.ndarray]],
    goal: TradeoffGoal,
    selector: Selector = "steepest",
    concurrency: Concurrency = 1.0,
) -> dict[str, BatchDecision]:
    """Resolve every kernel's configuration decision in one batch.

    ``kernel_params`` maps kernel name to its per-config
    ``(mb, time_ref)``; ``grids`` maps cluster name to its
    ``(f_c_grid, f_m_grid)``.  Returns one :class:`BatchDecision` per
    kernel, equal to what the scalar ``suite.build_tables`` +
    ``goal.select`` flow produces kernel-by-kernel.
    """
    tables_by_kernel = suite.build_tables_batch(kernel_params, grids)
    selections = batch_select(tables_by_kernel, goal, selector, concurrency)
    out: dict[str, BatchDecision] = {}
    for kname, tables in tables_by_kernel.items():
        sel = selections[kname]
        f_c, f_m = sel.freqs(tables)
        out[kname] = BatchDecision(dict(tables), sel, f_c, f_m)
    return out


# ----------------------------------------------------------------------
# Goal dispatch
# ----------------------------------------------------------------------
def batch_select(
    tables_by_kernel: TablesByKernel,
    goal: TradeoffGoal,
    selector: Selector = "steepest",
    concurrency: Concurrency = 1.0,
) -> dict[str, SelectionResult]:
    """Run ``goal.select`` for every kernel, batched where the goal's
    cost structure is known.  Goals this module does not understand
    (user-defined subclasses included — ``type`` is matched exactly so
    overridden behaviour is never silently dropped) fall back to the
    scalar ``goal.select`` per kernel.
    """
    kind = type(goal)
    if kind is MinTotalEnergy:
        costs = _grids_of(
            tables_by_kernel,
            lambda tab: tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
        )
        return _demand_feasible(_select_many(costs, selector), goal)
    if kind is MinCpuEnergy:
        costs = _grids_of(
            tables_by_kernel,
            lambda tab: tab.cpu_energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
        )
        return _demand_feasible(_select_many(costs, selector), goal)
    if kind is MaxPerformance:
        costs = _grids_of(tables_by_kernel, lambda tab: tab.time)
        return _demand_feasible(_select_many(costs, selector), goal)
    if kind is PerformanceConstraint:
        return _select_perf_constraint(
            tables_by_kernel, goal, selector, concurrency
        )
    if kind is MaxPerformanceUnderPowerCap:
        return _select_power_cap(tables_by_kernel, goal, selector, concurrency)
    if kind is DeadlineGoal:
        return _select_deadline(tables_by_kernel, goal, selector, concurrency)
    return {
        kname: goal.select(tables, selector, concurrency)
        for kname, tables in tables_by_kernel.items()
    }


def _grids_of(tables_by_kernel: TablesByKernel, cost_fn) -> _CostsByKernel:
    return {
        kname: {
            key: np.asarray(cost_fn(tab), dtype=float)
            for key, tab in tables.items()
        }
        for kname, tables in tables_by_kernel.items()
    }


def _demand_feasible(
    results: dict[str, SelectionResult | None], goal: TradeoffGoal
) -> dict[str, SelectionResult]:
    for kname, res in results.items():
        if res is None or not np.isfinite(res.cost):
            raise ModelError(
                f"no feasible configuration for kernel {kname!r} "
                f"under goal {goal.name}"
            )
    return results  # type: ignore[return-value]


def _select_perf_constraint(
    tables_by_kernel: TablesByKernel,
    goal: PerformanceConstraint,
    selector: Selector,
    concurrency: Concurrency,
) -> dict[str, SelectionResult]:
    base = batch_select(
        tables_by_kernel, MinTotalEnergy(), selector, concurrency
    )
    deadlines: dict[str, float] = {}
    for kname, res in base.items():
        tab = tables_by_kernel[kname][(res.cluster, res.n_cores)]
        deadlines[kname] = float(tab.time[res.i_fc, res.i_fm]) / goal.speedup
    costs = {
        kname: {
            key: np.where(
                tab.time <= deadlines[kname],
                tab.energy_grid(
                    _conc_of(concurrency, (tab.cluster, tab.n_cores))
                ),
                np.inf,
            )
            for key, tab in tables.items()
        }
        for kname, tables in tables_by_kernel.items()
    }
    constrained = _select_many(costs, selector)
    # Unsatisfiable kernels fall back to the fastest configuration (the
    # paper's fallback); evaluations of the discarded constrained run
    # are dropped, exactly as the scalar goal's try/except does.
    unsat = {
        kname: tables_by_kernel[kname]
        for kname, res in constrained.items()
        if res is None or not np.isfinite(res.cost)
    }
    if unsat:
        fastest = batch_select(unsat, MaxPerformance(), selector, concurrency)
        constrained.update(fastest)
    out: dict[str, SelectionResult] = {}
    for kname, res in constrained.items():
        assert res is not None
        out[kname] = SelectionResult(
            res.cluster, res.n_cores, res.i_fc, res.i_fm, res.cost,
            base[kname].evaluations + res.evaluations,
        )
    return out


def _select_power_cap(
    tables_by_kernel: TablesByKernel,
    goal: MaxPerformanceUnderPowerCap,
    selector: Selector,
    concurrency: Concurrency,
) -> dict[str, SelectionResult]:
    def power_grid(tab: PredictionTable) -> np.ndarray:
        conc = _conc_of(concurrency, (tab.cluster, tab.n_cores))
        return tab.energy_grid(conc) / tab.time

    capped = _grids_of(
        tables_by_kernel,
        lambda tab: np.where(
            power_grid(tab) <= goal.cap_watts, tab.time, np.inf
        ),
    )
    results = _select_many(capped, selector)
    unsat = {
        kname: tables_by_kernel[kname]
        for kname, res in results.items()
        if res is None or not np.isfinite(res.cost)
    }
    if unsat:
        fallback = _select_many(_grids_of(unsat, power_grid), selector)
        results.update(_demand_feasible(fallback, goal))
    return results  # type: ignore[return-value]


def _select_deadline(
    tables_by_kernel: TablesByKernel,
    goal: DeadlineGoal,
    selector: Selector,
    concurrency: Concurrency,
) -> dict[str, SelectionResult]:
    feasible = _grids_of(
        tables_by_kernel,
        lambda tab: np.where(
            tab.time <= goal.deadline_s,
            tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
            np.inf,
        ),
    )
    results = _select_many(feasible, selector)
    # Predicted-infeasible kernels fall back to the fastest
    # configuration; evaluations of the discarded constrained run are
    # dropped and the misses recorded, exactly as the scalar goal does.
    unsat = {
        kname: tables_by_kernel[kname]
        for kname, res in results.items()
        if res is None or not np.isfinite(res.cost)
    }
    if unsat:
        goal.predicted_misses += len(unsat)
        fastest = batch_select(unsat, MaxPerformance(), selector, concurrency)
        results.update(fastest)
    return results  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Batched selectors
# ----------------------------------------------------------------------
def _select_many(
    costs_by_kernel: _CostsByKernel, selector: Selector
) -> dict[str, SelectionResult | None]:
    """Run one selector over every kernel's cost grids, batched across
    kernels with identical (config keys, grid shapes) signatures.
    ``None`` marks a kernel whose scalar counterpart would raise
    :class:`ModelError` (all costs infinite) — callers decide whether
    that means "fall back" or "fail"."""
    if selector not in ("exhaustive", "steepest"):
        raise ModelError(f"unknown selector {selector!r}")
    groups: dict[tuple, list[str]] = {}
    for kname, costs in costs_by_kernel.items():
        if not costs:
            raise ModelError("no prediction tables to select from")
        sig = tuple((key, grid.shape) for key, grid in costs.items())
        groups.setdefault(sig, []).append(kname)
    out: dict[str, SelectionResult | None] = {}
    for sig, knames in groups.items():
        keys = [key for key, _ in sig]
        stacked = [
            np.stack([costs_by_kernel[k][key] for k in knames])
            for key in keys
        ]
        if selector == "exhaustive":
            results = _exhaustive_many(keys, stacked)
        else:
            results = _steepest_many(keys, stacked)
        for kname, res in zip(knames, results):
            out[kname] = res
    # Preserve the input's kernel order.
    return {kname: out[kname] for kname in costs_by_kernel}


def _exhaustive_many(
    keys: list[TableKey], stacked: list[np.ndarray]
) -> list[SelectionResult | None]:
    """Batched ``exhaustive_select``: per-table flat argmin, then a
    strict ``<`` sweep across tables in dict order (first table wins
    ties, mirroring the scalar comparison)."""
    k = stacked[0].shape[0]
    evals = sum(arr[0].size for arr in stacked)
    rows = np.arange(k)
    best_val = best_flat = best_key = None
    for ci, arr in enumerate(stacked):
        flat = arr.reshape(k, -1)
        idx = np.argmin(flat, axis=1)
        val = flat[rows, idx]
        if best_val is None:
            best_val, best_flat = val, idx
            best_key = np.zeros(k, dtype=int)
        else:
            better = val < best_val
            best_val = np.where(better, val, best_val)
            best_flat = np.where(better, idx, best_flat)
            best_key = np.where(better, ci, best_key)
    results: list[SelectionResult | None] = []
    for r in range(k):
        if not np.isfinite(best_val[r]):
            results.append(None)
            continue
        key = keys[int(best_key[r])]
        shape = stacked[int(best_key[r])].shape[1:]
        i_fc, i_fm = np.unravel_index(int(best_flat[r]), shape)
        results.append(
            SelectionResult(
                key[0], key[1], int(i_fc), int(i_fm),
                float(best_val[r]), evals,
            )
        )
    return results


def _steepest_many(
    keys: list[TableKey], stacked: list[np.ndarray]
) -> list[SelectionResult | None]:
    """Batched ``steepest_descent_select``: corner census and table
    pick per kernel, then one active-mask walk per chosen-table shape
    moving every still-descending kernel one step per pass."""
    k = stacked[0].shape[0]
    n_tables = len(keys)
    evals = np.full(k, 4 * n_tables, dtype=np.int64)

    # Step 1: the four corners of every table, in the scalar's
    # (lo,lo), (lo,hi), (hi,lo), (hi,hi) order -> (K, C, 4).
    corner_vals = np.empty((k, n_tables, 4))
    corner_pos: list[list[tuple[int, int]]] = []
    for ci, arr in enumerate(stacked):
        n_fc, n_fm = arr.shape[1:]
        pos = [(0, 0), (0, n_fm - 1), (n_fc - 1, 0), (n_fc - 1, n_fm - 1)]
        corner_pos.append(pos)
        for p, (i, j) in enumerate(pos):
            corner_vals[:, ci, p] = arr[:, i, j]

    # Step 2: most corner wins; ties broken on the best corner value,
    # first table in dict order winning exact ties (argmin semantics
    # match the scalar's Python ``min`` for inf-padded grids).
    wins = np.zeros((k, n_tables), dtype=np.int64)
    for p in range(4):
        winner = np.argmin(corner_vals[:, :, p], axis=1)
        wins[np.arange(k), winner] += 1
    min_corner = corner_vals.min(axis=2)
    top = wins == wins.max(axis=1, keepdims=True)
    tiebreak = np.where(top, min_corner, np.inf)
    best_table = np.argmin(tiebreak, axis=1)

    # Step 3: walk each kernel from its chosen table's best corner.
    # Kernels are regrouped by chosen-table shape so the walk itself is
    # one vectorised pass per shape.
    results: list[SelectionResult | None] = [None] * k
    by_shape: dict[tuple[int, int], list[int]] = {}
    for r in range(k):
        by_shape.setdefault(stacked[best_table[r]].shape[1:], []).append(r)
    for shape, rows in by_shape.items():
        n_fc, n_fm = shape
        kg = len(rows)
        cost = np.empty((kg, n_fc, n_fm))
        i0 = np.empty(kg, dtype=np.int64)
        j0 = np.empty(kg, dtype=np.int64)
        dead = np.zeros(kg, dtype=bool)
        for g, r in enumerate(rows):
            ci = int(best_table[r])
            cost[g] = stacked[ci][r]
            best_corner = int(np.argmin(corner_vals[r, ci]))
            i, j = corner_pos[ci][best_corner]
            if not np.isfinite(cost[g, i, j]):
                # Infeasible corner: scan the chosen table for its best
                # finite cell (scalar fallback, full-grid eval charge).
                grid = cost[g]
                if np.isfinite(grid).any():
                    i, j = np.unravel_index(
                        int(np.nanargmin(
                            np.where(np.isfinite(grid), grid, np.inf)
                        )),
                        grid.shape,
                    )
                    evals[r] += grid.size
                else:
                    dead[g] = True
            i0[g], j0[g] = i, j
        active = ~dead
        cur = cost[np.arange(kg), i0, j0]
        gi, gj = i0, j0
        while active.any():
            ai = gi[active]
            aj = gj[active]
            ni = ai[:, None] + _OFFSETS[:, 0][None, :]
            nj = aj[:, None] + _OFFSETS[:, 1][None, :]
            in_b = (ni >= 0) & (ni < n_fc) & (nj >= 0) & (nj < n_fm)
            arows = np.nonzero(active)[0]
            # Every in-bounds neighbour is charged each pass, including
            # the final pass that finds no descent — scalar parity.
            evals[np.asarray(rows)[arows]] += in_b.sum(axis=1)
            vals = cost[
                arows[:, None],
                np.clip(ni, 0, n_fc - 1),
                np.clip(nj, 0, n_fm - 1),
            ]
            vals = np.where(in_b, vals, np.inf)
            pick = np.argmin(vals, axis=1)
            picked = vals[np.arange(len(arows)), pick]
            moved = picked < cur[active]
            step_i = ni[np.arange(len(arows)), pick]
            step_j = nj[np.arange(len(arows)), pick]
            gi[arows] = np.where(moved, step_i, ai)
            gj[arows] = np.where(moved, step_j, aj)
            cur[arows] = np.where(moved, picked, cur[active])
            nxt = active.copy()
            nxt[arows] = moved
            active = nxt
        for g, r in enumerate(rows):
            if dead[g]:
                results[r] = None
                continue
            key = keys[int(best_table[r])]
            results[r] = SelectionResult(
                key[0], key[1], int(gi[g]), int(gj[g]),
                float(cur[g]), int(evals[r]),
            )
    return results
