"""JOSS — the paper's primary contribution (sections 3 and 5).

The :class:`~repro.core.joss.JossScheduler` combines:

- online two-frequency sampling per kernel to estimate MB without PMCs
  (:mod:`repro.core.sampling`, paper section 5.1);
- per-kernel prediction look-up tables built from the fitted model
  suite (:mod:`repro.models`);
- configuration selection for a trade-off goal via exhaustive search
  or the steepest-descent pruning of Fig. 7
  (:mod:`repro.core.selection`, :mod:`repro.core.goals`);
- frequency coordination between concurrent tasks by averaging, and
  proportional idle-power attribution (:mod:`repro.core.coordination`);
- task coarsening for fine-grained tasks (:mod:`repro.core.coarsening`).

Variants used in the evaluation: plain JOSS (min total energy),
``JOSS_NoMemDVFS`` (memory knob unavailable), JOSS with a performance
constraint, and MAXP.
"""

from repro.core.goals import (
    MaxPerformance,
    MaxPerformanceUnderPowerCap,
    MinCpuEnergy,
    MinTotalEnergy,
    PerformanceConstraint,
    TradeoffGoal,
)
from repro.core.selection import (
    SelectionResult,
    exhaustive_select,
    steepest_descent_select,
)
from repro.core.sampling import SamplingPlanner
from repro.core.coordination import FrequencyCoordinator
from repro.core.coarsening import CoarseningPolicy
from repro.core.adaptation import AdaptationPolicy
from repro.core.joss import JossScheduler

__all__ = [
    "TradeoffGoal",
    "MinTotalEnergy",
    "MinCpuEnergy",
    "PerformanceConstraint",
    "MaxPerformance",
    "MaxPerformanceUnderPowerCap",
    "SelectionResult",
    "exhaustive_select",
    "steepest_descent_select",
    "SamplingPlanner",
    "FrequencyCoordinator",
    "CoarseningPolicy",
    "AdaptationPolicy",
    "JossScheduler",
]
