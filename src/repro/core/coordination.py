"""Frequency coordination on shared DVFS domains (paper section 5.3).

Cluster and memory frequencies are shared by concurrently running
tasks with potentially conflicting desires.  JOSS detects concurrency
and balances demands with an *arithmetic mean* between the incoming
task's desired frequency and the domain's current (target) frequency,
snapped to the nearest OPP.  The paper evaluated min/max/weighted
variants and found the mean best — all variants are implemented here
for the ablation bench.
"""

from __future__ import annotations

from typing import Literal

from repro.errors import ConfigurationError

Strategy = Literal["mean", "min", "max", "ours", "theirs"]

_STRATEGIES = ("mean", "min", "max", "ours", "theirs")


class FrequencyCoordinator:
    """Resolves a desired frequency against the current shared setting."""

    def __init__(self, strategy: Strategy = "mean") -> None:
        if strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown coordination strategy {strategy!r} "
                f"(options: {_STRATEGIES})"
            )
        self.strategy = strategy

    def resolve(
        self, desired: float, current: float, others_running: bool
    ) -> float:
        """Frequency to request for a task wanting ``desired`` when the
        domain currently targets ``current``.

        With no other task running on the domain the desire wins
        outright; otherwise the strategy arbitrates.  The caller snaps
        the result to an OPP (the DVFS controller does this anyway).
        """
        if not others_running:
            return desired
        if self.strategy == "mean":
            return 0.5 * (desired + current)
        if self.strategy == "min":
            return min(desired, current)
        if self.strategy == "max":
            return max(desired, current)
        if self.strategy == "ours":
            return desired
        return current  # "theirs": leave the shared setting alone
