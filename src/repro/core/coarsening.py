"""Task coarsening for fine-grained tasks (paper section 5.3).

DVFS transitions cost tens-to-hundreds of microseconds; throttling for
a task that runs a few microseconds is counterproductive.  Following
the STEER algorithm the paper adopts, fine-grained tasks keep their
``<T_C, N_C>`` placement but the joint ``<f_C, f_M>`` request is only
issued once enough queued work of the same kernel is visible on the
selected core type to amortise the transition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.scheduler_api import RuntimeContext


class CoarseningPolicy:
    """Decides whether a task is fine-grained and whether its DVFS
    request should fire now."""

    def __init__(
        self,
        enabled: bool = True,
        fine_grained_threshold_s: float = 500e-6,
        batch_size: int = 4,
    ) -> None:
        """
        Parameters
        ----------
        fine_grained_threshold_s:
            Reference-time threshold below which a kernel counts as
            fine-grained.
        batch_size:
            Number of same-kernel tasks that must be visible (running +
            queued on the target cluster) before throttling for them.
        """
        self.enabled = enabled
        self.threshold = float(fine_grained_threshold_s)
        self.batch_size = int(batch_size)
        #: Number of DVFS requests suppressed (diagnostic).
        self.suppressed = 0

    def is_fine_grained(self, reference_time: float) -> bool:
        return self.enabled and reference_time < self.threshold

    def should_throttle(
        self,
        ctx: "RuntimeContext",
        cores: "Iterable[Core]",
        kernel_name: str,
        reference_time: float,
    ) -> bool:
        """True when the DVFS request for this task should be issued.

        ``cores`` is the set whose queues to scan for batched work of
        the same kernel — the selected core type's cores.
        """
        if not self.is_fine_grained(reference_time):
            return True
        visible = 1  # the task itself
        for core in cores:
            q = ctx.queues[core.core_id]
            visible += sum(1 for name in q.peek_types() if name == kernel_name)
        if visible >= self.batch_size:
            return True
        self.suppressed += 1
        return False
