"""Configuration selection (paper section 5.2.1 and Fig. 7).

Given the per-``<T_C, N_C>`` prediction tables of one kernel and a
cost grid per table (energy, CPU energy, or time, depending on the
goal), find the knob setting with the least cost:

- :func:`exhaustive_select` scans every cell of every table;
- :func:`steepest_descent_select` implements the paper's pruning:
  (1) evaluate the four corner configurations of each table,
  (2) pick the table winning the most corners,
  (3) hill-descend from that table's best corner over immediate
  neighbours until a local minimum.

Both return a :class:`SelectionResult` carrying the number of cost
evaluations performed, feeding the section 7.4 overhead comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.errors import ModelError
from repro.models.tables import PredictionTable

#: Cost grids are (n_fc, n_fm); a goal turns a table into costs.
CostFn = Callable[[PredictionTable], np.ndarray]

#: Key identifying one table: (core type name, n_cores).
TableKey = tuple[str, int]


@dataclass(frozen=True)
class SelectionResult:
    """Chosen configuration and search statistics."""

    cluster: str
    n_cores: int
    i_fc: int
    i_fm: int
    cost: float
    evaluations: int

    def freqs(self, tables: Mapping[TableKey, PredictionTable]) -> tuple[float, float]:
        tab = tables[(self.cluster, self.n_cores)]
        return tab.freqs_at(self.i_fc, self.i_fm)


def exhaustive_select(
    tables: Mapping[TableKey, PredictionTable], cost_fn: CostFn
) -> SelectionResult:
    """Scan the full four-knob space for the least-cost configuration."""
    if not tables:
        raise ModelError("no prediction tables to select from")
    best: SelectionResult | None = None
    evals = 0
    for (cluster, n_cores), tab in tables.items():
        cost = np.asarray(cost_fn(tab), dtype=float)
        evals += cost.size
        i_flat = int(np.argmin(cost))
        i_fc, i_fm = np.unravel_index(i_flat, cost.shape)
        c = float(cost[i_fc, i_fm])
        if best is None or c < best.cost:
            best = SelectionResult(cluster, n_cores, int(i_fc), int(i_fm), c, 0)
    assert best is not None
    if not np.isfinite(best.cost):
        raise ModelError("no feasible configuration (all costs infinite)")
    return SelectionResult(
        best.cluster, best.n_cores, best.i_fc, best.i_fm, best.cost, evals
    )


def steepest_descent_select(
    tables: Mapping[TableKey, PredictionTable], cost_fn: CostFn
) -> SelectionResult:
    """The paper's three-step pruning search (Fig. 7)."""
    if not tables:
        raise ModelError("no prediction tables to select from")
    evals = 0
    # Step 1: four corner configurations of every <T_C, N_C> table.
    # Corners are labelled logically (low/high per axis) because tables
    # may have different grid shapes on platforms with per-cluster OPP
    # ladders.
    CORNERS = (("lo", "lo"), ("lo", "hi"), ("hi", "lo"), ("hi", "hi"))
    corner_vals: dict[TableKey, dict[tuple[str, str], float]] = {}
    corner_idx: dict[TableKey, dict[tuple[str, str], tuple[int, int]]] = {}
    grids: dict[TableKey, np.ndarray] = {}
    for key, tab in tables.items():
        cost = np.asarray(cost_fn(tab), dtype=float)
        grids[key] = cost
        n_fc, n_fm = cost.shape
        vals, idxs = {}, {}
        for ci, cj in CORNERS:
            i = 0 if ci == "lo" else n_fc - 1
            j = 0 if cj == "lo" else n_fm - 1
            vals[(ci, cj)] = float(cost[i, j])
            idxs[(ci, cj)] = (i, j)
            evals += 1
        corner_vals[key] = vals
        corner_idx[key] = idxs

    # Step 2: the table with the most lowest-corner wins.
    wins: dict[TableKey, int] = {k: 0 for k in tables}
    for pos in CORNERS:
        winner = min(corner_vals, key=lambda k: corner_vals[k][pos])
        wins[winner] += 1
    # Tie-break on the globally best corner value.
    best_table = min(
        tables, key=lambda k: (-wins[k], min(corner_vals[k].values()))
    )
    cost = grids[best_table]

    # Step 3: hill-descend from that table's best corner.
    best_corner = min(
        corner_vals[best_table], key=lambda p: corner_vals[best_table][p]
    )
    i, j = corner_idx[best_table][best_corner]
    current = cost[i, j]
    if not np.isfinite(current):
        # Constrained goals can make whole corners infeasible; fall back
        # to the best finite cell of the chosen table, if any.
        if np.isfinite(cost).any():
            i, j = np.unravel_index(int(np.nanargmin(np.where(np.isfinite(cost), cost, np.inf))), cost.shape)
            current = cost[i, j]
            evals += cost.size
        else:
            raise ModelError("no feasible configuration in the selected table")
    n_fc, n_fm = cost.shape
    while True:
        best_step = None
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if di == 0 and dj == 0:
                    continue
                ni, nj = i + di, j + dj
                if not (0 <= ni < n_fc and 0 <= nj < n_fm):
                    continue
                evals += 1
                if cost[ni, nj] < current:
                    if best_step is None or cost[ni, nj] < cost[best_step]:
                        best_step = (ni, nj)
        if best_step is None:
            break
        i, j = best_step
        current = cost[i, j]
    return SelectionResult(
        best_table[0], best_table[1], int(i), int(j), float(current), evals
    )
