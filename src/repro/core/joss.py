"""The JOSS runtime scheduler (paper sections 3 and 5).

Per-kernel pipeline:

1. **Sampling** — early invocations are timed on every ``<T_C, N_C>``
   at two core frequencies (section 5.1) to estimate MB via Eq. 3.
2. **Prediction** — the fitted model suite fills the kernel's per-config
   look-up tables of time / CPU power / memory power over the full
   ``(f_C, f_M)`` OPP grids.
3. **Selection** — the trade-off goal picks ``<T_C, N_C, f_C, f_M>``
   via steepest descent (default) or exhaustive search (section 5.2),
   splitting shared idle power across the instantaneous task
   concurrency.
4. **Execution** — successive invocations reuse the decision; DVFS
   requests go through the frequency coordinator (arithmetic-mean
   balancing on shared domains, section 5.3) and the task-coarsening
   filter for fine-grained kernels.

Variants: ``use_memory_dvfs=False`` pins f_M at its maximum (the
JOSS_NoMemDVFS datapoint); goals other than minimum total energy give
the performance-constrained and MAXP schedulers of section 7.2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.adaptation import AdaptationPolicy
from repro.core.batch import resolve_kernels
from repro.core.coarsening import CoarseningPolicy
from repro.core.coordination import FrequencyCoordinator, Strategy
from repro.core.goals import (
    DeadlineGoal,
    MaxPerformance,
    MaxPerformanceUnderPowerCap,
    MinTotalEnergy,
    PerformanceConstraint,
    Selector,
    TradeoffGoal,
    parse_goal,
)
from repro.core.health import HealthMonitor, HealthPolicy
from repro.core.sampling import SamplingPlanner
from repro.core.selection import SelectionResult
from repro.errors import SchedulingError
from repro.models.suite import ModelSuite
from repro.models.tables import PredictionTable
from repro.runtime.placement import Placement
from repro.runtime.scheduler_api import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.task import Task


class JossScheduler(Scheduler):
    """Joint scheduling and scaling over the four knobs."""

    name = "JOSS"

    def __init__(
        self,
        suite: ModelSuite,
        goal: Optional[TradeoffGoal] = None,
        selector: Selector = "steepest",
        use_memory_dvfs: bool = True,
        coordination: Strategy = "mean",
        coarsening: Optional[CoarseningPolicy] = None,
        adaptation: Optional[AdaptationPolicy] = None,
        health=None,
        name: Optional[str] = None,
        batch_decisions: bool = True,
    ) -> None:
        super().__init__()
        self.suite = suite
        # Strings (and GoalSpec) resolve through the parse_goal
        # registry, so JSON-safe spellings like "deadline-0.5s" work
        # anywhere a goal travels through specs or RPC params.
        self.goal = parse_goal(goal) if goal is not None else MinTotalEnergy()
        self.selector: Selector = selector
        self.use_memory_dvfs = use_memory_dvfs
        #: Route kernel resolution through the vectorised batch
        #: pipeline (:mod:`repro.core.batch`).  Produces bit-identical
        #: tables and identical selections/eval counts to the scalar
        #: flow; ``False`` keeps the reference path for A/B testing.
        self.batch_decisions = batch_decisions
        self.coordinator = FrequencyCoordinator(coordination)
        self.coarsening = coarsening if coarsening is not None else CoarseningPolicy()
        #: Optional drift monitor (extension; None = paper behaviour).
        self.adaptation = adaptation
        #: Optional degradation machinery (robustness extension; None =
        #: paper behaviour).  Accepts HealthPolicy / mapping / True.
        self.health = HealthPolicy.coerce(health)
        if name is not None:
            self.name = name
        self.planner: Optional[SamplingPlanner] = None
        #: Resolved per-kernel decisions: kernel -> (selection, f_c, f_m).
        self.decisions: dict[str, tuple[SelectionResult, float, float]] = {}
        #: Per-kernel prediction tables (kept for constraint queries).
        self.tables: dict[str, dict[tuple[str, int], PredictionTable]] = {}
        self._selection_evals = 0
        self._batch_tables_built = 0
        self._monitor: Optional[HealthMonitor] = None
        self._global_degraded = False
        self._degraded_since: Optional[float] = None
        self._degraded_energy_mark = 0.0

    # ------------------------------------------------------------------
    # Convenience constructors for the paper's variants
    # ------------------------------------------------------------------
    @classmethod
    def no_mem_dvfs(cls, suite: ModelSuite, **kw) -> "JossScheduler":
        """JOSS with the memory knob unavailable (f_M pinned at max)."""
        kw.setdefault("name", "JOSS_NoMemDVFS")
        return cls(suite, use_memory_dvfs=False, **kw)

    @classmethod
    def with_speedup(cls, suite: ModelSuite, speedup: float, **kw) -> "JossScheduler":
        """JOSS under a performance constraint (section 5.2.2)."""
        kw.setdefault("name", f"JOSS_{speedup:g}x")
        return cls(suite, goal=PerformanceConstraint(speedup), **kw)

    @classmethod
    def maxp(cls, suite: ModelSuite, **kw) -> "JossScheduler":
        """JOSS maximising task performance (the MAXP datapoint)."""
        kw.setdefault("name", "JOSS_MAXP")
        return cls(suite, goal=MaxPerformance(), **kw)

    @classmethod
    def with_power_cap(cls, suite: ModelSuite, cap_watts: float, **kw) -> "JossScheduler":
        """JOSS maximising performance under a per-task power cap
        (extension; see :class:`MaxPerformanceUnderPowerCap`)."""
        kw.setdefault("name", f"JOSS_cap{cap_watts:g}W")
        return cls(suite, goal=MaxPerformanceUnderPowerCap(cap_watts), **kw)

    @classmethod
    def with_deadline(cls, suite: ModelSuite, deadline_s: float, **kw) -> "JossScheduler":
        """JOSS minimising energy under a per-kernel deadline
        (extension; see :class:`DeadlineGoal`)."""
        kw.setdefault("name", f"JOSS_deadline-{deadline_s:g}s")
        return cls(suite, goal=DeadlineGoal(deadline_s), **kw)

    # ------------------------------------------------------------------
    # Scheduler lifecycle
    # ------------------------------------------------------------------
    def on_run_begin(self) -> None:
        per_config = {
            key: self.suite.ref_freqs(*key) for key in self.suite.config_keys()
        }
        self.planner = SamplingPlanner(
            self.suite.config_keys(),
            self.suite.f_c_ref,
            self.suite.f_c_sample,
            per_config=per_config,
        )
        self.decisions.clear()
        self.tables.clear()
        self._selection_evals = 0
        self._batch_tables_built = 0
        if hasattr(self.goal, "predicted_misses"):
            self.goal.predicted_misses = 0  # per-run counter
        if self.adaptation is not None:
            self.adaptation.reset()
            self.adaptation.on_invalidated = self._on_drift_invalidated
        self._monitor = (
            HealthMonitor(self.health) if self.health is not None else None
        )
        if self._monitor is not None:
            self._monitor.on_degrade = self._on_health_degrade
            self._monitor.on_recover = self._on_health_recover
        self._global_degraded = False
        self._degraded_since = None
        self._degraded_energy_mark = 0.0

    def place(self, task: "Task") -> Placement:
        assert self.ctx is not None and self.planner is not None
        kname = task.kernel.name
        if self._monitor is not None:
            self._check_sensor_health()
            if self._global_degraded or self._monitor.is_degraded(kname):
                return self._fallback_place(task)
        decided = self.decisions.get(kname)
        if decided is not None:
            sel, f_c, f_m = decided
            cluster = self.ctx.platform.cluster_by_type(sel.cluster)
            return Placement(
                cluster=cluster,
                n_cores=sel.n_cores,
                f_c=f_c,
                f_m=f_m if self.use_memory_dvfs else None,
            )
        # Sampling path: measure the next pending slot for this kernel.
        slot = self.planner.next_slot(kname)
        task.meta["sample_slot"] = slot
        cluster = self.ctx.platform.cluster_by_type(slot.cluster)
        return Placement(
            cluster=cluster,
            n_cores=slot.n_cores,
            f_c=slot.f_c,
            f_m=self.suite.f_m_ref,
        )

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        assert self.ctx is not None
        p = task.placement
        if p is None:
            return
        if task.meta.get("degraded"):
            # Performance-governor safe defaults: pin the hosting
            # cluster and the memory at their maxima — no model needed.
            self.ctx.request_cluster_freq(core.cluster, core.cluster.opps.max)
            self.ctx.request_memory_freq(self.ctx.platform.memory.opps.max)
            return
        slot = task.meta.get("sample_slot")
        if slot is not None:
            # Measurements need the requested frequencies verbatim — but
            # a stale duplicate (its slot was filled by an earlier task
            # while this one sat in a queue) must NOT drag the cluster
            # back to the old sampling phase and pollute the in-flight
            # measurements; it follows the current phase instead.
            assert self.planner is not None
            if slot in self.planner.state(task.kernel.name).results:
                f_c = self.planner.phase(slot.cluster)
            else:
                f_c = slot.f_c
            self.ctx.request_cluster_freq(core.cluster, f_c)
            if p.f_m is not None:
                self.ctx.request_memory_freq(p.f_m)
            # Remember whether the cluster was already heading to the
            # slot frequency; checked again at completion to reject
            # measurements polluted by concurrent frequency fights.
            ctl = self.ctx.cluster_dvfs[core.cluster.cluster_id]
            task.meta["sample_fc_ok"] = abs(ctl.target_freq - slot.f_c) < 1e-9
            return
        decided = self.decisions.get(task.kernel.name)
        if decided is None or p.f_c is None:
            return
        sel, f_c, f_m = decided
        t_ref = self.planner.reference_time(task.kernel.name, sel.cluster, sel.n_cores)
        same_type_cores = self.ctx.platform.cores_of_type(core.core_type.name)
        if not self.coarsening.should_throttle(
            self.ctx, same_type_cores, task.kernel.name, t_ref
        ):
            return
        # Frequency coordination on the shared domains (section 5.3).
        cpu_ctl = self.ctx.cluster_dvfs[core.cluster.cluster_id]
        others_cluster = self.ctx.cluster_active_tasks(core.cluster) >= 1
        self.ctx.request_cluster_freq(
            core.cluster,
            self.coordinator.resolve(f_c, cpu_ctl.target_freq, others_cluster),
        )
        if self.use_memory_dvfs:
            others_mem = self.ctx.busy_core_count() >= 1
            self.ctx.request_memory_freq(
                self.coordinator.resolve(
                    f_m, self.ctx.memory_dvfs.target_freq, others_mem
                )
            )

    def on_task_complete(self, task: "Task") -> None:
        assert self.planner is not None
        if task.meta.pop("degraded", False):
            if self._monitor is not None and self._monitor.note_fallback_completion(
                task.kernel.name
            ):
                # Hold period served: the kernel re-enters sampling on
                # its next invocation (decision and measurements were
                # discarded when it degraded).
                self._degradation_changed()
            return
        slot = task.meta.pop("sample_slot", None)
        if slot is None:
            self._observe_drift(task)
            return
        kname = task.kernel.name
        measured = task.exec_time if task.exec_time > 0 else task.duration
        assert self.ctx is not None
        cluster = self.ctx.platform.cluster_by_type(slot.cluster)
        trusted = bool(task.meta.pop("sample_fc_ok", True)) and (
            abs(cluster.freq - slot.f_c) < 1e-9
        )
        bus = getattr(self.ctx, "bus", None)
        if bus is not None and bus.active:
            before = self.planner.phases()
            self.planner.record(kname, slot, measured, trusted=trusted)
            for cl, f_c in self.planner.phases().items():
                if before.get(cl) != f_c:
                    bus.emit(
                        "sampling_phase", self.ctx.now,
                        scheduler=self.name, cluster=cl, phase=f_c,
                    )
        else:
            self.planner.record(kname, slot, measured, trusted=trusted)
        if self.planner.resolved(kname) and kname not in self.decisions:
            self._resolve_kernel(kname)

    def on_run_end(self) -> None:
        assert self.ctx is not None and self.planner is not None
        m = self.ctx.metrics
        if m is not None:
            m.sampling_time = self.planner.total_sampling_time()
            m.extras["selection_evaluations"] = self._selection_evals
            m.extras["coarsening_suppressed"] = self.coarsening.suppressed
            misses = getattr(self.goal, "predicted_misses", None)
            if misses is not None:
                # Kernels whose deadline was predicted unreachable at
                # selection time (fell back to max-perf).
                m.extras["predicted_deadline_misses"] = misses
            if self.adaptation is not None:
                m.extras["adaptation_invalidations"] = self.adaptation.invalidations
            m.extras["decisions"] = {
                k: self._describe_decision(k) for k in self.decisions
            }
        if self._monitor is not None:
            if self._degraded_since is not None:
                self._close_degraded_window(self.ctx.now)
            if m is not None:
                m.fallback_count = self._monitor.fallbacks
                m.extras["health_recoveries"] = self._monitor.recoveries
                m.extras["health_degraded_kernels"] = sorted(
                    self._monitor.degraded
                )
        registry = getattr(self.ctx, "registry", None)
        if registry is not None:
            self._publish_counters(registry)

    def _publish_counters(self, registry) -> None:
        """Fold this run's scheduler bookkeeping into an installed
        :class:`repro.obs.MetricRegistry`."""
        lbl = {"scheduler": self.name}
        registry.counter(
            "joss_selection_evaluations_total",
            "configurations evaluated by the selector", ("scheduler",),
        ).inc(self._selection_evals, **lbl)
        registry.counter(
            "joss_decisions_total",
            "kernels resolved to a <T_C, N_C, f_C, f_M> decision",
            ("scheduler",),
        ).inc(len(self.decisions), **lbl)
        registry.counter(
            "batch_tables_built",
            "prediction tables built via the batch decision pipeline",
            ("scheduler",),
        ).inc(self._batch_tables_built, **lbl)
        registry.counter(
            "joss_coarsening_suppressed_total",
            "DVFS requests suppressed by task coarsening", ("scheduler",),
        ).inc(self.coarsening.suppressed, **lbl)
        if self.adaptation is not None:
            registry.counter(
                "joss_drift_invalidations_total",
                "decisions invalidated by the drift monitor", ("scheduler",),
            ).inc(self.adaptation.invalidations, **lbl)
        if self._monitor is not None:
            registry.counter(
                "joss_health_fallbacks_total",
                "health-monitor degradation entries", ("scheduler",),
            ).inc(self._monitor.fallbacks, **lbl)
            registry.counter(
                "joss_health_recoveries_total",
                "kernels recovered from fallback", ("scheduler",),
            ).inc(self._monitor.recoveries, **lbl)

    # ------------------------------------------------------------------
    # Observer hooks (drift / health transitions)
    # ------------------------------------------------------------------
    def _emit(self, event_type: str, **fields) -> None:
        bus = getattr(self.ctx, "bus", None)
        if bus is not None and bus.active:
            bus.emit(event_type, self.ctx.now, scheduler=self.name, **fields)

    def _on_drift_invalidated(self, kernel_name: str) -> None:
        self._emit("decision_invalidated", kernel=kernel_name, reason="drift")

    def _on_health_degrade(self, kernel_name: str) -> None:
        self._emit("decision_invalidated", kernel=kernel_name, reason="health")

    def _on_health_recover(self, kernel_name: str) -> None:
        self._emit("health_recovered", kernel=kernel_name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _freq_grids(self, cluster_name: str) -> tuple[np.ndarray, np.ndarray]:
        assert self.ctx is not None
        cluster = self.ctx.platform.cluster_by_type(cluster_name)
        f_c_grid = cluster.opps.as_array()
        if self.use_memory_dvfs:
            f_m_grid = self.ctx.platform.memory.opps.as_array()
        else:
            f_m_grid = np.asarray([self.suite.f_m_ref])
        return f_c_grid, f_m_grid

    def _resolve_kernel(self, kname: str) -> None:
        """Build the kernel's look-up tables and select its config."""
        assert self.ctx is not None and self.planner is not None
        params: dict[tuple[str, int], tuple[float, float]] = {}
        grids: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for cl_name, n_cores in self.suite.config_keys():
            mb = self.planner.mb(kname, cl_name, n_cores)
            t_ref = self.planner.reference_time(kname, cl_name, n_cores)
            if cl_name not in grids:
                grids[cl_name] = self._freq_grids(cl_name)
            params[(cl_name, n_cores)] = (mb, t_ref)
        concurrency = self._expected_concurrency()
        if self.batch_decisions:
            # Vectorised pipeline: stacked model evaluation + batched
            # selection (bit-identical to the scalar flow below).
            dec = resolve_kernels(
                self.suite, {kname: params}, grids,
                self.goal, self.selector, concurrency,
            )[kname]
            tables = dec.tables
            sel, f_c, f_m = dec.selection, dec.f_c, dec.f_m
            self._batch_tables_built += len(tables)
        else:
            # Scalar reference flow: one build_tables call shares each
            # cluster's OPP mesh across its <T_C, N_C> configs (dict
            # order == config_keys order).
            tables = self.suite.build_tables(params, grids)
            sel = self.goal.select(
                tables, self.selector, concurrency=concurrency
            )
            f_c, f_m = sel.freqs(tables)
        self.tables[kname] = tables
        self.decisions[kname] = (sel, f_c, f_m)
        self._selection_evals += sel.evaluations
        bus = getattr(self.ctx, "bus", None)
        if bus is not None and bus.active:
            bus.emit(
                "config_selected", self.ctx.now,
                scheduler=self.name, kernel=kname,
                cluster=sel.cluster, n_cores=sel.n_cores,
                f_c=f_c, f_m=f_m if self.use_memory_dvfs else None,
                evaluations=sel.evaluations,
            )

    def _expected_concurrency(self) -> dict[tuple[str, int], float]:
        """Per-``<T_C, N_C>`` task-concurrency estimate for idle-power
        attribution (paper section 5.3).

        The runtime's instantaneous busy-core count gives the current
        parallelism; a configuration using ``n_cores`` cores caps how
        many tasks can actually share the platform if it is chosen
        (one 4-core moldable task occupies what four single-core tasks
        would), so its per-task idle share is correspondingly larger.
        """
        assert self.ctx is not None
        platform = self.ctx.platform
        observed = max(1, self.ctx.busy_core_count())
        conc: dict[tuple[str, int], float] = {}
        for cl_name, n_cores in self.suite.config_keys():
            type_cores = len(platform.cores_of_type(cl_name))
            other_cores = platform.n_cores - type_cores
            capacity = other_cores + type_cores / n_cores
            conc[(cl_name, n_cores)] = float(max(1.0, min(observed, capacity)))
        return conc

    def _observe_drift(self, task: "Task") -> None:
        """Feed a decided kernel's measured time to the drift monitors:
        adaptation re-enters sampling on divergence; the health monitor
        degrades the kernel to governor fallback instead."""
        if self.adaptation is None and self._monitor is None:
            return
        kname = task.kernel.name
        decided = self.decisions.get(kname)
        tables = self.tables.get(kname)
        if decided is None or tables is None:
            return
        sel, _f_c, _f_m = decided
        predicted = float(
            tables[(sel.cluster, sel.n_cores)].time[sel.i_fc, sel.i_fm]
        )
        measured = task.exec_time if task.exec_time > 0 else task.duration
        if self._monitor is not None and self._monitor.observe(
            kname, measured, predicted
        ):
            assert self.planner is not None
            self.decisions.pop(kname, None)
            self.tables.pop(kname, None)
            self.planner.forget_kernel(kname)
            self._degradation_changed()
            return
        if self.adaptation is not None and self.adaptation.observe(
            kname, measured, predicted
        ):
            assert self.planner is not None
            self.decisions.pop(kname, None)
            self.tables.pop(kname, None)
            self.planner.forget_kernel(kname)

    # ------------------------------------------------------------------
    # Graceful degradation (robustness extension, see repro.core.health)
    # ------------------------------------------------------------------
    def _check_sensor_health(self) -> None:
        """Enter/leave global degradation on sensor silence."""
        assert self.ctx is not None and self._monitor is not None
        sensor = getattr(self.ctx, "sensor", None)
        if sensor is None:
            return
        silent = self._monitor.sensor_silent(
            self.ctx.now, sensor.last_sample_time, sensor.interval
        )
        if silent and not self._global_degraded:
            self._global_degraded = True
            self._monitor.fallbacks += 1
            self._degradation_changed()
        elif not silent and self._global_degraded:
            self._global_degraded = False
            self._degradation_changed()

    def _fallback_place(self, task: "Task") -> Placement:
        """Default-governor placement: one core, load-balanced at
        random over the whole platform, frequencies pinned at max when
        the task starts (see :meth:`on_task_execute`)."""
        assert self.ctx is not None
        task.meta["degraded"] = True
        cores = self.ctx.platform.cores
        rng = self.ctx.rng.stream("degraded-place")
        core = cores[int(rng.integers(len(cores)))]
        return Placement(cluster=core.cluster, n_cores=1)

    def _degradation_changed(self) -> None:
        """Open or close the degraded-mode accounting window whenever
        the set of degraded kernels (or the global flag) transitions
        between empty and non-empty."""
        assert self.ctx is not None and self._monitor is not None
        now = self.ctx.now
        active = self._global_degraded or bool(self._monitor.degraded)
        if active and self._degraded_since is None:
            acc = self.ctx.engine.accountant
            acc.finalize(now)
            self._degraded_since = now
            self._degraded_energy_mark = acc.total_energy()
            # The legacy "degraded-enter" trace record comes out of the
            # bus via the tracer bridge (repro.obs.exporters).
            bus = getattr(self.ctx, "bus", None)
            if bus is not None and bus.active:
                bus.emit("degraded_enter", now, scheduler=self.name)
        elif not active and self._degraded_since is not None:
            self._close_degraded_window(now)

    def _close_degraded_window(self, now: float) -> None:
        assert self.ctx is not None
        acc = self.ctx.engine.accountant
        acc.finalize(now)
        m = self.ctx.metrics
        if m is not None:
            m.degraded_time += now - self._degraded_since
            m.degraded_energy += acc.total_energy() - self._degraded_energy_mark
        bus = getattr(self.ctx, "bus", None)
        if bus is not None and bus.active:
            bus.emit("degraded_exit", now, scheduler=self.name)
        self._degraded_since = None

    def _describe_decision(self, kname: str) -> str:
        sel, f_c, f_m = self.decisions[kname]
        fm_str = f"{f_m:.3f}" if self.use_memory_dvfs else "max"
        return f"<{sel.cluster}, {sel.n_cores}, {f_c:.3f}, {fm_str}>"

    def decision_for(self, kernel_name: str) -> Optional[str]:
        """Paper-style description of the chosen config, if resolved."""
        if kernel_name not in self.decisions:
            return None
        return self._describe_decision(kernel_name)

    def require_decision(self, kernel_name: str) -> tuple[SelectionResult, float, float]:
        d = self.decisions.get(kernel_name)
        if d is None:
            raise SchedulingError(f"kernel {kernel_name} not resolved yet")
        return d
