"""Energy/performance trade-off goals (paper section 5.2).

A goal turns per-config prediction tables into a selection:

- :class:`MinTotalEnergy` — scenario (1): least CPU+memory energy,
  with idle power attributed across concurrent tasks;
- :class:`MinCpuEnergy` — what STEER optimises (memory energy ignored);
- :class:`PerformanceConstraint` — scenario (2), section 5.2.2: least
  energy among configurations at least ``speedup`` x faster than the
  min-energy configuration; falls back to the fastest configuration
  when the constraint is unsatisfiable;
- :class:`MaxPerformance` — MAXP: fastest configuration regardless of
  energy.
"""

from __future__ import annotations

import abc
from typing import Literal, Mapping

import numpy as np

from repro.core.selection import (
    SelectionResult,
    TableKey,
    exhaustive_select,
    steepest_descent_select,
)
from repro.errors import ModelError
from repro.models.tables import PredictionTable

Selector = Literal["exhaustive", "steepest"]

#: Concurrency for idle-power attribution: a scalar applied to every
#: table, or a per-``<T_C, N_C>`` mapping (a 4-core moldable config can
#: run fewer tasks concurrently than four single-core ones, so it
#: carries a larger idle share per task).
Concurrency = float | Mapping[TableKey, float]


def _conc_of(concurrency: Concurrency, key: TableKey) -> float:
    if isinstance(concurrency, Mapping):
        return float(concurrency.get(key, 1.0))
    return float(concurrency)


def _run(selector: Selector, tables, cost_fn) -> SelectionResult:
    if selector == "exhaustive":
        return exhaustive_select(tables, cost_fn)
    if selector == "steepest":
        return steepest_descent_select(tables, cost_fn)
    raise ModelError(f"unknown selector {selector!r}")


class TradeoffGoal(abc.ABC):
    """Strategy object choosing a configuration from prediction tables."""

    name: str = "goal"

    @abc.abstractmethod
    def select(
        self,
        tables: Mapping[TableKey, PredictionTable],
        selector: Selector = "steepest",
        concurrency: float = 1.0,
    ) -> SelectionResult:
        """Pick the configuration satisfying this goal."""


class MinTotalEnergy(TradeoffGoal):
    """Least total (CPU + memory) energy — JOSS's default goal."""

    name = "min-total-energy"

    def select(self, tables, selector="steepest", concurrency=1.0):
        return _run(
            selector,
            tables,
            lambda tab: tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
        )


class MinCpuEnergy(TradeoffGoal):
    """Least CPU energy, memory rail ignored (STEER's objective)."""

    name = "min-cpu-energy"

    def select(self, tables, selector="steepest", concurrency=1.0):
        return _run(
            selector,
            tables,
            lambda tab: tab.cpu_energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
        )


class MaxPerformance(TradeoffGoal):
    """Fastest configuration (the paper's MAXP datapoint)."""

    name = "maxp"

    def select(self, tables, selector="steepest", concurrency=1.0):
        return _run(selector, tables, lambda tab: tab.time)


class MaxPerformanceUnderPowerCap(TradeoffGoal):
    """Fastest configuration whose average power stays under a cap.

    An *extension* beyond the paper's two scenarios, covering the
    related-work setting the paper cites (Patki et al. [35]:
    hardware overprovisioning under power constraints): per-task
    average power = task energy / task time must not exceed
    ``cap_watts``.  Falls back to the least-power configuration when
    the cap is unsatisfiable.
    """

    def __init__(self, cap_watts: float) -> None:
        if cap_watts <= 0:
            raise ModelError("power cap must be positive")
        self.cap_watts = float(cap_watts)
        self.name = f"powercap-{cap_watts:g}W"

    def _power_grid(self, tab: PredictionTable, concurrency) -> np.ndarray:
        conc = _conc_of(concurrency, (tab.cluster, tab.n_cores))
        return tab.energy_grid(conc) / tab.time

    def select(self, tables, selector="steepest", concurrency=1.0):
        def capped_time(tab: PredictionTable) -> np.ndarray:
            power = self._power_grid(tab, concurrency)
            return np.where(power <= self.cap_watts, tab.time, np.inf)

        try:
            res = _run(selector, tables, capped_time)
        except ModelError:
            res = None
        if res is not None and np.isfinite(res.cost):
            return res
        # Unsatisfiable: least average power (closest to compliance).
        return _run(
            selector, tables, lambda tab: self._power_grid(tab, concurrency)
        )


class PerformanceConstraint(TradeoffGoal):
    """Least energy subject to ``time <= t_min_energy / speedup``.

    The constraint is relative to the configuration that minimises
    total energy (paper section 5.2.2).  If no configuration meets the
    target, the fastest configuration is selected.
    """

    def __init__(self, speedup: float) -> None:
        if speedup <= 0:
            raise ModelError("speedup must be positive")
        self.speedup = float(speedup)
        self.name = f"perf-{speedup:g}x"

    def select(self, tables, selector="steepest", concurrency=1.0):
        base = MinTotalEnergy().select(tables, selector, concurrency)
        t0 = float(
            tables[(base.cluster, base.n_cores)].time[base.i_fc, base.i_fm]
        )
        deadline = t0 / self.speedup
        evals = base.evaluations

        def constrained_cost(tab: PredictionTable) -> np.ndarray:
            energy = tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            )
            return np.where(tab.time <= deadline, energy, np.inf)

        try:
            res = _run(selector, tables, constrained_cost)
        except ModelError:
            res = None
        if res is None or not np.isfinite(res.cost):
            # Unsatisfiable: fastest configuration (paper's fallback).
            res = MaxPerformance().select(tables, selector, concurrency)
        return SelectionResult(
            res.cluster, res.n_cores, res.i_fc, res.i_fm, res.cost,
            evals + res.evaluations,
        )
