"""Energy/performance trade-off goals (paper section 5.2).

A goal turns per-config prediction tables into a selection:

- :class:`MinTotalEnergy` — scenario (1): least CPU+memory energy,
  with idle power attributed across concurrent tasks
  (``min-total-energy``);
- :class:`MinCpuEnergy` — what STEER optimises, memory energy ignored
  (``min-cpu-energy``);
- :class:`PerformanceConstraint` — scenario (2), section 5.2.2: least
  energy among configurations at least ``speedup`` x faster than the
  min-energy configuration; falls back to the fastest configuration
  when the constraint is unsatisfiable (``perf-<S>x``);
- :class:`MaxPerformance` — MAXP: fastest configuration regardless of
  energy (``maxp``);
- :class:`MaxPerformanceUnderPowerCap` — extension: fastest
  configuration whose average power stays under a cap; falls back to
  the least-power configuration when the cap is unsatisfiable
  (``powercap-<P>W``);
- :class:`DeadlineGoal` — deadline scenario (open arrivals,
  :mod:`repro.workloads.arrivals`): least energy among configurations
  predicted to finish within an absolute per-kernel budget; falls back
  to the fastest configuration and records a predicted miss when no
  configuration is feasible — the HiDVFS/EAPS
  feasibility-check-then-minimise-energy shape (``deadline-<D>s``).

The parenthesised spellings are the canonical goal names: every string
entry point (CLI ``--goal``, bench specs, serve job params, dynamic
``JOSS_*`` scheduler variants) resolves through :func:`parse_goal`,
which round-trips ``parse_goal(name).name == name``.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import Literal, Mapping

import numpy as np

from repro.core.selection import (
    SelectionResult,
    TableKey,
    exhaustive_select,
    steepest_descent_select,
)
from repro.errors import ModelError
from repro.models.tables import PredictionTable

Selector = Literal["exhaustive", "steepest"]

#: Concurrency for idle-power attribution: a scalar applied to every
#: table, or a per-``<T_C, N_C>`` mapping (a 4-core moldable config can
#: run fewer tasks concurrently than four single-core ones, so it
#: carries a larger idle share per task).
Concurrency = float | Mapping[TableKey, float]


def _conc_of(concurrency: Concurrency, key: TableKey) -> float:
    if isinstance(concurrency, Mapping):
        return float(concurrency.get(key, 1.0))
    return float(concurrency)


def _run(selector: Selector, tables, cost_fn) -> SelectionResult:
    if selector == "exhaustive":
        return exhaustive_select(tables, cost_fn)
    if selector == "steepest":
        return steepest_descent_select(tables, cost_fn)
    raise ModelError(f"unknown selector {selector!r}")


class TradeoffGoal(abc.ABC):
    """Strategy object choosing a configuration from prediction tables."""

    name: str = "goal"

    @abc.abstractmethod
    def select(
        self,
        tables: Mapping[TableKey, PredictionTable],
        selector: Selector = "steepest",
        concurrency: float = 1.0,
    ) -> SelectionResult:
        """Pick the configuration satisfying this goal."""


class MinTotalEnergy(TradeoffGoal):
    """Least total (CPU + memory) energy — JOSS's default goal."""

    name = "min-total-energy"

    def select(self, tables, selector="steepest", concurrency=1.0):
        return _run(
            selector,
            tables,
            lambda tab: tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
        )


class MinCpuEnergy(TradeoffGoal):
    """Least CPU energy, memory rail ignored (STEER's objective)."""

    name = "min-cpu-energy"

    def select(self, tables, selector="steepest", concurrency=1.0):
        return _run(
            selector,
            tables,
            lambda tab: tab.cpu_energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            ),
        )


class MaxPerformance(TradeoffGoal):
    """Fastest configuration (the paper's MAXP datapoint)."""

    name = "maxp"

    def select(self, tables, selector="steepest", concurrency=1.0):
        return _run(selector, tables, lambda tab: tab.time)


class MaxPerformanceUnderPowerCap(TradeoffGoal):
    """Fastest configuration whose average power stays under a cap.

    An *extension* beyond the paper's two scenarios, covering the
    related-work setting the paper cites (Patki et al. [35]:
    hardware overprovisioning under power constraints): per-task
    average power = task energy / task time must not exceed
    ``cap_watts``.  Falls back to the least-power configuration when
    the cap is unsatisfiable.
    """

    def __init__(self, cap_watts: float) -> None:
        if cap_watts <= 0:
            raise ModelError("power cap must be positive")
        self.cap_watts = float(cap_watts)
        self.name = f"powercap-{cap_watts:g}W"

    def _power_grid(self, tab: PredictionTable, concurrency) -> np.ndarray:
        conc = _conc_of(concurrency, (tab.cluster, tab.n_cores))
        return tab.energy_grid(conc) / tab.time

    def select(self, tables, selector="steepest", concurrency=1.0):
        def capped_time(tab: PredictionTable) -> np.ndarray:
            power = self._power_grid(tab, concurrency)
            return np.where(power <= self.cap_watts, tab.time, np.inf)

        try:
            res = _run(selector, tables, capped_time)
        except ModelError:
            res = None
        if res is not None and np.isfinite(res.cost):
            return res
        # Unsatisfiable: least average power (closest to compliance).
        return _run(
            selector, tables, lambda tab: self._power_grid(tab, concurrency)
        )


class PerformanceConstraint(TradeoffGoal):
    """Least energy subject to ``time <= t_min_energy / speedup``.

    The constraint is relative to the configuration that minimises
    total energy (paper section 5.2.2).  If no configuration meets the
    target, the fastest configuration is selected.
    """

    def __init__(self, speedup: float) -> None:
        if speedup <= 0:
            raise ModelError("speedup must be positive")
        self.speedup = float(speedup)
        self.name = f"perf-{speedup:g}x"

    def select(self, tables, selector="steepest", concurrency=1.0):
        base = MinTotalEnergy().select(tables, selector, concurrency)
        t0 = float(
            tables[(base.cluster, base.n_cores)].time[base.i_fc, base.i_fm]
        )
        deadline = t0 / self.speedup
        evals = base.evaluations

        def constrained_cost(tab: PredictionTable) -> np.ndarray:
            energy = tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            )
            return np.where(tab.time <= deadline, energy, np.inf)

        try:
            res = _run(selector, tables, constrained_cost)
        except ModelError:
            res = None
        if res is None or not np.isfinite(res.cost):
            # Unsatisfiable: fastest configuration (paper's fallback).
            res = MaxPerformance().select(tables, selector, concurrency)
        return SelectionResult(
            res.cluster, res.n_cores, res.i_fc, res.i_fm, res.cost,
            evals + res.evaluations,
        )


class DeadlineGoal(TradeoffGoal):
    """Least energy among configurations predicted to meet a deadline.

    Unlike :class:`PerformanceConstraint`, whose time budget is
    *relative* (derived from the min-energy configuration), the budget
    here is an *absolute* per-kernel wall-clock allowance in seconds —
    the shape deadline-aware DVFS governors (HiDVFS, EAPS) use: first
    restrict to the feasible set, then minimise energy inside it.
    When no configuration is predicted feasible the fastest one is
    selected (least tardiness achievable) and the miss is recorded in
    :attr:`predicted_misses` so schedulers can surface it.

    Per-DAG deadlines are enforced at the arrival layer
    (:mod:`repro.workloads.arrivals` annotates every task with its DAG
    instance's absolute deadline); this goal covers the per-kernel
    half: dividing a DAG budget across its critical path yields the
    per-kernel ``deadline_s``.
    """

    def __init__(self, deadline_s: float) -> None:
        if deadline_s <= 0:
            raise ModelError("deadline must be positive")
        self.deadline_s = float(deadline_s)
        self.name = f"deadline-{deadline_s:g}s"
        #: Kernels for which no configuration was predicted feasible
        #: (fell back to max-perf).  Mutated by both selection paths.
        self.predicted_misses = 0

    def select(self, tables, selector="steepest", concurrency=1.0):
        def feasible_energy(tab: PredictionTable) -> np.ndarray:
            energy = tab.energy_grid(
                _conc_of(concurrency, (tab.cluster, tab.n_cores))
            )
            return np.where(tab.time <= self.deadline_s, energy, np.inf)

        try:
            res = _run(selector, tables, feasible_energy)
        except ModelError:
            res = None
        if res is not None and np.isfinite(res.cost):
            return res
        # Predicted infeasible: run as fast as possible and record the
        # miss.  Evaluations of the discarded constrained run are
        # dropped (same accounting as the power-cap fallback).
        self.predicted_misses += 1
        return MaxPerformance().select(tables, selector, concurrency)


# ----------------------------------------------------------------------
# Goal-name registry
# ----------------------------------------------------------------------
#: Fixed (parameter-free) goal names.
_FIXED_GOALS: dict[str, type[TradeoffGoal]] = {
    "min-total-energy": MinTotalEnergy,
    "min-cpu-energy": MinCpuEnergy,
    "maxp": MaxPerformance,
}

_NUM = r"(\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)"
#: Parameterised goal names: ``perf-1.5x``, ``powercap-3W``,
#: ``deadline-0.5s``.
_PARAM_GOALS: tuple[tuple[re.Pattern, str], ...] = (
    (re.compile(rf"^perf-{_NUM}x$"), "perf"),
    (re.compile(rf"^powercap-{_NUM}W$"), "powercap"),
    (re.compile(rf"^deadline-{_NUM}s$"), "deadline"),
)


@dataclass(frozen=True)
class GoalSpec:
    """Parsed, canonical form of a goal name.

    ``kind`` is one of ``min-total-energy`` / ``min-cpu-energy`` /
    ``maxp`` (``param`` is ``None``) or ``perf`` / ``powercap`` /
    ``deadline`` (``param`` carries the speedup / cap watts / deadline
    seconds).  ``GoalSpec`` round-trips: ``parse_goal(spec.name)``
    yields a goal whose ``name`` equals ``spec.name``.
    """

    kind: str
    param: float | None = None

    def __post_init__(self) -> None:
        if self.kind in _FIXED_GOALS:
            if self.param is not None:
                raise ModelError(f"goal {self.kind!r} takes no parameter")
        elif self.kind in ("perf", "powercap", "deadline"):
            if self.param is None or self.param <= 0:
                raise ModelError(
                    f"goal {self.kind!r} needs a positive parameter"
                )
        else:
            raise ModelError(f"unknown goal kind {self.kind!r}")

    @property
    def name(self) -> str:
        """Canonical goal name (what ``TradeoffGoal.name`` reports)."""
        if self.kind in _FIXED_GOALS:
            return self.kind
        unit = {"perf": "x", "powercap": "W", "deadline": "s"}[self.kind]
        return f"{self.kind}-{self.param:g}{unit}"

    def build(self) -> TradeoffGoal:
        """Instantiate the goal this spec describes."""
        if self.kind in _FIXED_GOALS:
            return _FIXED_GOALS[self.kind]()
        ctor = {
            "perf": PerformanceConstraint,
            "powercap": MaxPerformanceUnderPowerCap,
            "deadline": DeadlineGoal,
        }[self.kind]
        return ctor(self.param)


def goal_names() -> list[str]:
    """Accepted goal-name forms, for help strings and error messages."""
    return [*_FIXED_GOALS, "perf-<S>x", "powercap-<P>W", "deadline-<D>s"]


def goal_spec(name: str) -> GoalSpec:
    """Parse a canonical goal name into a :class:`GoalSpec`."""
    text = str(name).strip()
    if text in _FIXED_GOALS:
        return GoalSpec(text)
    for pattern, kind in _PARAM_GOALS:
        m = pattern.match(text)
        if m:
            return GoalSpec(kind, float(m.group(1)))
    raise ModelError(
        f"unknown goal {name!r}; expected one of {', '.join(goal_names())}"
    )


def parse_goal(goal: "str | GoalSpec | TradeoffGoal") -> TradeoffGoal:
    """Resolve any goal spelling into a :class:`TradeoffGoal`.

    Accepts a canonical name string (``"perf-1.5x"``,
    ``"powercap-3W"``, ``"deadline-0.5s"``, ``"min-total-energy"``,
    ``"min-cpu-energy"``, ``"maxp"``), a :class:`GoalSpec`, or an
    already-built :class:`TradeoffGoal` (returned unchanged).  This is
    the single registry behind every string entry point — CLI
    ``--goal``, bench specs, serve job params, and the dynamic
    ``JOSS_<goal>`` scheduler names.
    """
    if isinstance(goal, TradeoffGoal):
        return goal
    if isinstance(goal, GoalSpec):
        return goal.build()
    return goal_spec(goal).build()
