"""Online runtime sampling (paper section 5.1).

For every kernel, JOSS times a few early invocations on each
``<T_C, N_C>`` configuration at two core frequencies (the model
reference ``f_c_ref`` and the sampling frequency ``f_c_sample``), both
at the reference memory frequency.  From each pair it computes the
kernel's MB per configuration (Eq. 3) and the reference time feeding
the prediction tables.  On platforms whose clusters have different OPP
ladders (ODROID-XU4 style) the two frequencies are per-configuration.

Ordering matters on cluster-shared DVFS domains: concurrent sampling
tasks wanting *different* frequencies on the same cluster would corrupt
each other's measurements.  The paper therefore samples all kernels at
``f_C`` first and only then switches a cluster to ``f_C'`` —
asynchronously per cluster (one cluster may advance while another is
still in its first phase).  The planner reproduces exactly that: each
cluster has a phase frequency, slots matching the phase are preferred,
and a cluster advances once every known kernel has its reference slots
on that cluster filled.

Measurements use the *execution* time of the slowest partition (queue
and partition-stagger delays excluded), which is what a real runtime
timing its own task bodies observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.models.mb import estimate_mb

#: (core type name, n_cores) — matches the model suite's config keys.
ConfigKey = tuple[str, int]


@dataclass(frozen=True)
class SampleSlot:
    """One required measurement: a config at a core frequency."""

    cluster: str
    n_cores: int
    f_c: float


@dataclass
class KernelSamples:
    """Sampling state of one kernel."""

    slots: list[SampleSlot]
    results: dict[SampleSlot, float] = field(default_factory=dict)
    cursor: int = 0
    #: Total simulated time spent executing sampling tasks.
    sampling_time: float = 0.0

    def pending(self) -> list[SampleSlot]:
        return [s for s in self.slots if s not in self.results]

    @property
    def resolved(self) -> bool:
        return len(self.results) == len(self.slots)


class SamplingPlanner:
    """Builds and tracks sampling plans for all kernels of a run."""

    #: After this many rejected (frequency-polluted) measurements of a
    #: slot, the next one is accepted anyway — bounds starvation when a
    #: shared cluster frequency never settles.
    MAX_REJECTIONS = 5

    def __init__(
        self,
        config_keys: list[ConfigKey],
        f_c_ref: float,
        f_c_sample: float,
        two_frequencies: bool = True,
        per_config: Optional[Mapping[ConfigKey, tuple[float, float]]] = None,
    ) -> None:
        """
        Parameters
        ----------
        config_keys:
            The ``<T_C, N_C>`` options of the platform (model suite keys).
        f_c_ref, f_c_sample:
            Suite-wide sampling frequencies, used for any config absent
            from ``per_config``.
        two_frequencies:
            When False, sample only at the reference (ERASE-style
            history sampling — no MB estimation possible).
        per_config:
            Optional per-``<T_C, N_C>`` (reference, sampling) override
            for platforms with per-cluster OPP ladders.
        """
        self.config_keys = list(config_keys)
        self.two_frequencies = two_frequencies
        self._freqs: dict[ConfigKey, tuple[float, float]] = {}
        for key in self.config_keys:
            if per_config is not None and key in per_config:
                self._freqs[key] = per_config[key]
            else:
                self._freqs[key] = (f_c_ref, f_c_sample)
        self.f_c_ref = f_c_ref
        self.f_c_sample = f_c_sample
        self._kernels: dict[str, KernelSamples] = {}
        self._rejections: dict[tuple[str, SampleSlot], int] = {}
        # Per-cluster reference/sampling frequencies (all nc options of
        # one cluster share its ladder) and the current phase.
        self._cluster_ref: dict[str, float] = {}
        self._cluster_sample: dict[str, float] = {}
        for (cl, _nc), (ref, samp) in self._freqs.items():
            self._cluster_ref[cl] = ref
            self._cluster_sample[cl] = samp
        self._phase: dict[str, float] = dict(self._cluster_ref)

    def freqs_of(self, key: ConfigKey) -> tuple[float, float]:
        return self._freqs[key]

    def _plan(self) -> list[SampleSlot]:
        slots = [
            SampleSlot(cl, nc, self._freqs[(cl, nc)][0])
            for cl, nc in self.config_keys
        ]
        if self.two_frequencies:
            slots += [
                SampleSlot(cl, nc, self._freqs[(cl, nc)][1])
                for cl, nc in self.config_keys
            ]
        return slots

    def state(self, kernel_name: str) -> KernelSamples:
        ks = self._kernels.get(kernel_name)
        if ks is None:
            ks = self._kernels[kernel_name] = KernelSamples(self._plan())
        return ks

    def phase(self, cluster: str) -> float:
        """The frequency this cluster's sampling currently targets."""
        return self._phase[cluster]

    def phases(self) -> dict[str, float]:
        """Snapshot of every cluster's current sampling phase (used by
        observers to detect phase advances across a :meth:`record`)."""
        return dict(self._phase)

    def next_slot(self, kernel_name: str) -> SampleSlot:
        """Next slot to measure for a kernel.

        Prefers slots whose frequency matches their cluster's current
        phase (no DVFS fighting between concurrent sampling tasks);
        cycles through candidates so concurrent tasks of the same
        kernel spread over different configs.
        """
        ks = self.state(kernel_name)
        pending = ks.pending()
        if not pending:  # resolved; caller should not ask, but be safe
            return ks.slots[-1]
        matching = [s for s in pending if self._phase[s.cluster] == s.f_c]
        pool = matching or pending
        slot = pool[ks.cursor % len(pool)]
        ks.cursor += 1
        return slot

    def record(
        self,
        kernel_name: str,
        slot: SampleSlot,
        duration: float,
        trusted: bool = True,
    ) -> None:
        """Store the first *trusted* measurement for a slot and advance
        cluster phases when their reference pass completes.

        ``trusted=False`` marks a measurement taken while the cluster
        frequency did not match the slot (concurrent tasks fought over
        the shared DVFS domain); it is discarded so a later invocation
        can retry, up to :attr:`MAX_REJECTIONS` times.
        """
        ks = self.state(kernel_name)
        ks.sampling_time += max(0.0, duration)
        if slot in ks.results or duration <= 0:
            return
        if not trusted:
            n = self._rejections.get((kernel_name, slot), 0) + 1
            self._rejections[(kernel_name, slot)] = n
            if n <= self.MAX_REJECTIONS:
                return
        ks.results[slot] = duration
        self._maybe_advance(slot.cluster)

    def _maybe_advance(self, cluster: str) -> None:
        if not self.two_frequencies:
            return
        ref = self._cluster_ref[cluster]
        if self._phase[cluster] != ref:
            return
        for ks in self._kernels.values():
            for s in ks.slots:
                if s.cluster == cluster and s.f_c == ref and s not in ks.results:
                    return
        self._phase[cluster] = self._cluster_sample[cluster]

    def resolved(self, kernel_name: str) -> bool:
        return self.state(kernel_name).resolved

    def forget_kernel(self, kernel_name: str) -> None:
        """Drop a kernel's sampling state so it is re-planned from
        scratch (used by the adaptive drift monitor when a decision is
        invalidated)."""
        self._kernels.pop(kernel_name, None)
        self._rejections = {
            k: v for k, v in self._rejections.items() if k[0] != kernel_name
        }

    def total_sampling_time(self) -> float:
        return sum(ks.sampling_time for ks in self._kernels.values())

    def kernel_names(self) -> Iterator[str]:
        return iter(self._kernels)

    # ------------------------------------------------------------------
    # Derived quantities once a kernel is resolved
    # ------------------------------------------------------------------
    def reference_time(self, kernel_name: str, cluster: str, n_cores: int) -> float:
        ks = self.state(kernel_name)
        ref, _ = self._freqs[(cluster, n_cores)]
        return ks.results[SampleSlot(cluster, n_cores, ref)]

    def mb(self, kernel_name: str, cluster: str, n_cores: int) -> float:
        """MB estimate (Eq. 3) for one configuration.

        With single-frequency sampling this is undefined; callers in
        that mode (ERASE) must not ask.
        """
        ks = self.state(kernel_name)
        ref, samp = self._freqs[(cluster, n_cores)]
        t_ref = ks.results[SampleSlot(cluster, n_cores, ref)]
        t_s = ks.results[SampleSlot(cluster, n_cores, samp)]
        return estimate_mb(t_ref, t_s, ref, samp)
