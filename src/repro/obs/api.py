"""The consolidated observability handle and the process default.

:func:`observe` is the one public entry point (re-exported as
``repro.observe``)::

    import repro

    with repro.observe(events="events.jsonl", metrics="metrics.prom"):
        repro.run(("slu", "JOSS"))

While the ``with`` block is open the handle is installed as the
*context default observer*: every :class:`~repro.runtime.executor.
Executor` and :func:`~repro.sweep.engine.run_sweep` created inside it
(directly or nested arbitrarily deep in experiment code) publishes to
its bus and metric registry, without a single call-site having to
thread an ``obs`` parameter through.  On exit the previous default is
restored, exporters are closed, and the metrics snapshot is written.

The default is a **contextvar-backed stack**, not a process global:

* nested ``observe()`` contexts restore properly even when closed out
  of order (each handle removes *itself* from the stack, not whatever
  happens to be on top);
* concurrent threads — e.g. the per-request handlers of
  :mod:`repro.serve` — each see only the observers installed in their
  own context, so one request's events never leak into another
  request's exporters.

Components that want explicit wiring instead can pass the handle (or a
bare :class:`~repro.obs.bus.EventBus`) as their ``obs`` argument.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.obs.bus import EventBus
from repro.obs.exporters import ChromeTraceExporter, JsonlEventLog
from repro.obs.metrics import MetricRegistry

#: The installed default-observer stack for the current context.  New
#: threads start from an empty context, so per-thread installs (one
#: request handler installing its job's observer) are isolated from
#: the rest of the process by construction.
_stack: ContextVar[tuple] = ContextVar("repro_obs_stack", default=())


def current_observer() -> Optional["Observability"]:
    """The innermost installed :class:`Observability`, if any."""
    stack = _stack.get()
    return stack[-1] if stack else None


def observer_stack() -> tuple:
    """The full default-observer stack for this context (outer first)."""
    return _stack.get()


def reset_observers() -> None:
    """Clear this context's observer stack without closing anything.

    Forked worker hygiene: a child process inherits the forking
    thread's contextvars, including installed observers whose sinks
    share the parent's file offsets — anything the child emitted would
    interleave with (and tear) the parent's writes.  Workers call this
    at startup and stay silent; results travel back through their
    normal return channel.
    """
    _stack.set(())


def resolve_bus(obs) -> Optional[EventBus]:
    """Accept an Observability, a bare EventBus, or None."""
    if obs is None:
        return None
    if isinstance(obs, EventBus):
        return obs
    return obs.bus


class Observability:
    """An event bus + metric registry + the exporters attached to them."""

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._exporters: list = []
        self._metrics_paths: list[Path] = []
        self._chrome_paths: list[tuple[ChromeTraceExporter, Path]] = []
        self._installed = False
        self._closed = False

    # -- exporter attachment --------------------------------------------
    def event_log(
        self, path: Union[str, Path], types: Optional[Iterable[str]] = None
    ) -> JsonlEventLog:
        """Attach a JSONL event log (closed with the handle)."""
        exporter = JsonlEventLog(path, self.bus, types=types)
        self._exporters.append(exporter)
        return exporter

    def metrics_out(self, path: Union[str, Path]) -> None:
        """Write the Prometheus snapshot to ``path`` at close time."""
        self._metrics_paths.append(Path(path))

    def chrome_trace(
        self, path: Union[str, Path], categories: Optional[Iterable[str]] = None
    ) -> ChromeTraceExporter:
        """Attach a Chrome-trace exporter saved to ``path`` at close."""
        exporter = ChromeTraceExporter(self.bus, categories=categories)
        self._exporters.append(exporter)
        self._chrome_paths.append((exporter, Path(path)))
        return exporter

    # -- default-observer installation ----------------------------------
    def install(self) -> "Observability":
        """Push this handle onto the context's default stack (idempotent)."""
        if not self._installed:
            _stack.set(_stack.get() + (self,))
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Pop this handle off the default stack (idempotent).

        Removes the innermost occurrence of *this* handle rather than
        blindly restoring a remembered previous default, so contexts
        that exit out of order (or a handle closed while a later one is
        still open) cannot clobber each other: the outer default simply
        resurfaces once every inner handle is gone.
        """
        if self._installed:
            stack = _stack.get()
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is self:
                    _stack.set(stack[:i] + stack[i + 1:])
                    break
            self._installed = False

    @contextmanager
    def as_current(self):
        """Install as default for the duration of a block, without
        closing exporters on exit (reusable across blocks)."""
        was_installed = self._installed
        self.install()
        try:
            yield self
        finally:
            if not was_installed:
                self.uninstall()

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Flush metric snapshots, close exporters, uninstall."""
        if self._closed:
            return
        self._closed = True
        self.uninstall()
        for exporter, path in self._chrome_paths:
            exporter.save(path)
        for path in self._metrics_paths:
            self.metrics.write(path)
        for exporter in self._exporters:
            exporter.close()

    def __enter__(self) -> "Observability":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.close()


def observe(
    events: Optional[Union[str, Path]] = None,
    metrics: Optional[Union[str, Path]] = None,
    *,
    chrome: Optional[Union[str, Path]] = None,
    event_types: Optional[Iterable[str]] = None,
    bus: Optional[EventBus] = None,
    registry: Optional[MetricRegistry] = None,
) -> Observability:
    """Build an :class:`Observability` handle with common exporters.

    ``events`` attaches a JSONL event log (optionally narrowed to
    ``event_types``); ``metrics`` schedules a Prometheus text snapshot
    at close; ``chrome`` attaches a Chrome-trace export.  Use the
    result as a context manager to install it as the process default::

        with observe(events="e.jsonl", metrics="m.prom"):
            ...
    """
    obs = Observability(bus=bus, metrics=registry)
    if events is not None:
        obs.event_log(events, types=event_types)
    if metrics is not None:
        obs.metrics_out(metrics)
    if chrome is not None:
        obs.chrome_trace(chrome)
    return obs
