"""repro.obs — the unified observability layer.

One process-local structured :class:`EventBus` plus one
:class:`MetricRegistry`, threaded through the simulator, the runtime,
the JOSS scheduler and the sweep engine; exporters (JSONL event log,
Prometheus text snapshot, Chrome trace, live sweep progress) are bus
subscribers.  See docs/architecture.md, "Observability", for the event
taxonomy and the exporter matrix.

Quick start::

    import repro

    with repro.observe(events="events.jsonl", metrics="metrics.prom"):
        repro.run(("slu", "JOSS"))

Instrumentation is zero-cost when nothing subscribes: emit sites guard
on ``bus.active`` and build no payload for a silent bus (the
``obs_overhead`` perf benchmark gates this).
"""

from repro.obs.api import (
    Observability,
    current_observer,
    observe,
    observer_stack,
    resolve_bus,
)
from repro.obs.bus import EventBus, Subscription
from repro.obs.events import EVENT_TYPES, Event, register_event_type
from repro.obs.exporters import (
    LEGACY_CATEGORIES,
    ChromeTraceExporter,
    JsonlEventLog,
    bridge_tracer,
    read_events,
    sweep_progress_line,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry

__all__ = [
    "EVENT_TYPES",
    "LEGACY_CATEGORIES",
    "ChromeTraceExporter",
    "Counter",
    "Event",
    "EventBus",
    "Gauge",
    "Histogram",
    "JsonlEventLog",
    "MetricRegistry",
    "Observability",
    "Subscription",
    "bridge_tracer",
    "current_observer",
    "observe",
    "observer_stack",
    "read_events",
    "register_event_type",
    "resolve_bus",
    "sweep_progress_line",
]
