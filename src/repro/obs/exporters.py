"""Exporters: bus subscribers that turn events into artifacts.

Everything downstream of the bus is "just a subscriber":

* :class:`JsonlEventLog` — one JSON object per line, machine-readable
  record of a run (``repro ... --events-out events.jsonl``);
* :class:`ChromeTraceExporter` — the Chrome trace-event export,
  reimplemented on the bus.  It collects the same records the legacy
  :class:`~repro.sim.trace.Tracer` would and renders them through the
  *same* :func:`~repro.sim.trace.render_chrome_trace`, so the output
  is byte-identical for identical runs;
* :func:`bridge_tracer` — forwards bus events to a legacy ``Tracer``
  under the legacy category names, making the tracer one consumer
  among several (analysis tooling keeps working unchanged);
* :func:`sweep_progress_line` — a live one-line-per-transition sweep
  progress printer driven by ``sweep_job_*`` events.

Metrics snapshots are rendered by the registry itself
(:meth:`repro.obs.metrics.MetricRegistry.render_prometheus`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Callable, Iterable, Optional, Union

from repro.obs.bus import EventBus, Subscription
from repro.obs.events import Event
from repro.sim.trace import Tracer, TraceRecord, render_chrome_trace

#: Bus event type -> legacy tracer category.  Field names are already
#: identical on both sides (the bus taxonomy was carved out of the
#: tracer's payloads), so the bridge forwards payloads verbatim.
LEGACY_CATEGORIES: dict[str, str] = {
    "task_started": "activity-start",
    "task_finished": "activity-end",
    "dvfs_set": "freq-change",
    "task_dispatched": "dispatch",
    "task_done": "task-done",
    "degraded_enter": "degraded-enter",
    "degraded_exit": "degraded-exit",
    "core_unplugged": "core-unplug",
    "core_replugged": "core-replug",
}


def bridge_tracer(bus: EventBus, tracer: Tracer) -> Subscription:
    """Subscribe ``tracer`` to the bus under the legacy categories.

    Only the event types with a legacy equivalent are forwarded — a
    tracer fed through the bridge records exactly what a directly-wired
    tracer recorded before the bus existed (same categories, payloads
    and order), which the golden-determinism and Chrome-equivalence
    tests rely on.
    """

    def forward(ev: Event) -> None:
        tracer.emit(ev.time, LEGACY_CATEGORIES[ev.type], **ev.fields)

    return bus.subscribe(forward, types=LEGACY_CATEGORIES.keys())


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
class JsonlEventLog:
    """Append events to a file as JSON Lines.

    The file is line-buffered JSON — each event is one
    ``{"type": ..., "time": ..., <fields>}`` object — so a crashed run
    still leaves a parseable prefix.
    """

    def __init__(
        self,
        path: Union[str, Path],
        bus: Optional[EventBus] = None,
        types: Optional[Iterable[str]] = None,
    ) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = self.path.open("w")
        self.events_written = 0
        self._sub: Optional[Subscription] = None
        if bus is not None:
            self._sub = bus.subscribe(self, types=types)

    def __call__(self, event: Event) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event.to_json(), sort_keys=False))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._sub is not None:
            self._sub.close()
            self._sub = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> list[Event]:
    """Parse a JSONL event log back into :class:`Event` objects."""
    events: list[Event] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(Event.from_json(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Chrome trace via the bus
# ----------------------------------------------------------------------
class ChromeTraceExporter:
    """Collect legacy-equivalent trace records from bus events and
    render them with the shared Chrome renderer."""

    def __init__(
        self,
        bus: Optional[EventBus] = None,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        self._categories = frozenset(categories) if categories is not None else None
        self.records: list[TraceRecord] = []
        self._sub: Optional[Subscription] = None
        if bus is not None:
            self._sub = bus.subscribe(self, types=LEGACY_CATEGORIES.keys())

    def __call__(self, event: Event) -> None:
        category = LEGACY_CATEGORIES[event.type]
        if self._categories is not None and category not in self._categories:
            return
        self.records.append(TraceRecord(event.time, category, dict(event.fields)))

    def to_chrome_trace(self, process_name: str = "repro-sim") -> dict:
        return render_chrome_trace(self.records, process_name)

    def save(
        self, path: Union[str, Path], process_name: str = "repro-sim"
    ) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(process_name)))
        return path

    def close(self) -> None:
        if self._sub is not None:
            self._sub.close()
            self._sub = None


# ----------------------------------------------------------------------
# Live sweep progress line
# ----------------------------------------------------------------------
_PROGRESS_TAGS = {
    "sweep_job_started": "start",
    "sweep_job_cache_hit": "cache-hit",
    "sweep_job_done": "done",
    "sweep_job_retried": "retry",
    "sweep_job_failed": "FAILED",
}


def sweep_progress_line(
    bus: EventBus, write: Callable[[str], None] = print
) -> Subscription:
    """Subscribe a live ``[done/total] state workload/scheduler`` line
    renderer to the bus's sweep events."""
    state = {"total": 0, "settled": 0}

    def on_event(ev: Event) -> None:
        if ev.type == "sweep_started":
            state["total"] = int(ev.fields.get("jobs", 0))
            state["settled"] = 0
            return
        if ev.type == "sweep_finished":
            f = ev.fields
            write(
                f"sweep done: {f.get('executed', 0)} executed, "
                f"{f.get('cache_hits', 0)} cache hits, "
                f"{f.get('failed', 0)} failed in {f.get('wall_time', 0.0):.2f} s"
            )
            return
        tag = _PROGRESS_TAGS.get(ev.type)
        if tag is None:
            return
        if ev.type in ("sweep_job_done", "sweep_job_cache_hit", "sweep_job_failed"):
            state["settled"] += 1
        width = len(str(state["total"])) or 1
        label = f"{ev.fields.get('workload', '?')}/{ev.fields.get('scheduler', '?')}"
        write(
            f"[{state['settled']:>{width}}/{state['total']}] {tag:<9s} {label}"
        )

    types = ("sweep_started", "sweep_finished", *_PROGRESS_TAGS)
    return bus.subscribe(on_event, types=types)
