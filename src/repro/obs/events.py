"""The event taxonomy: every type the bus may carry, with its schema.

Events are flat: a ``type`` from the registry below, a ``time`` (the
simulated clock for runtime events, elapsed wall seconds for sweep
events), and a shallow mapping of JSON-safe ``fields``.  The registry
is the single source of truth for the taxonomy table in
``docs/architecture.md`` and for emit-time validation: an unregistered
type is a programming error, caught at the first (subscribed) emit
rather than surfacing as a silently-ignored exporter record.

Third-party subscribers may extend the taxonomy with
:func:`register_event_type`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ObservabilityError

#: type -> (one-line description, field summary).  Times: simulated
#: seconds unless the description says wall.
EVENT_TYPES: dict[str, tuple[str, str]] = {
    # -- executor / run lifecycle --------------------------------------
    "run_started": (
        "an Executor began a task graph",
        "workload, scheduler, platform, tasks, seed",
    ),
    "run_finished": (
        "the last task of a run completed",
        "workload, scheduler, makespan, cpu_energy, mem_energy, tasks_executed",
    ),
    "task_dispatched": (
        "the scheduler placed a ready task on a core's queue",
        "task, core",
    ),
    "task_started": (
        "one task partition began executing on a core",
        "kernel, core",
    ),
    "task_finished": (
        "one task partition completed on a core",
        "kernel, core, elapsed",
    ),
    "task_done": (
        "a whole task (all partitions) completed",
        "task, kernel",
    ),
    # -- open arrivals / deadlines -------------------------------------
    "dag_arrived": (
        "an open-arrival DAG instance was released into the executor",
        "dag, workload, deadline, tasks",
    ),
    "deadline_missed": (
        "a DAG instance completed past its absolute deadline",
        "dag, workload, deadline, tardiness",
    ),
    # -- DVFS / JOSS decision pipeline ---------------------------------
    "dvfs_set": (
        "a DVFS controller applied a frequency to its domain",
        "domain, freq",
    ),
    "sampling_phase": (
        "a cluster's sampling phase advanced to a new frequency",
        "cluster, f_c",
    ),
    "config_selected": (
        "JOSS resolved a kernel's <T_C, N_C, f_C, f_M> configuration",
        "kernel, cluster, n_cores, f_c, f_m, evaluations",
    ),
    "decision_invalidated": (
        "a drift/health monitor threw away a kernel's decision",
        "kernel, reason (drift|health)",
    ),
    # -- degradation / faults ------------------------------------------
    "degraded_enter": (
        "the scheduler opened a degraded-mode window",
        "scheduler",
    ),
    "degraded_exit": (
        "the scheduler closed its degraded-mode window",
        "scheduler",
    ),
    "health_recovered": (
        "a degraded kernel served its hold period and re-enters sampling",
        "kernel",
    ),
    "core_unplugged": (
        "fault injection took a core offline",
        "core",
    ),
    "core_replugged": (
        "fault injection brought a core back online",
        "core",
    ),
    # -- sweep orchestration (times are wall seconds since sweep start) -
    "sweep_started": (
        "a sweep was admitted (wall clock)",
        "jobs, workers",
    ),
    "sweep_finished": (
        "a sweep completed (wall clock)",
        "jobs, executed, failed, cache_hits, wall_time",
    ),
    "sweep_job_queued": ("a job was admitted to the sweep", "job, workload, scheduler"),
    "sweep_job_started": ("a job attempt began executing", "job, workload, scheduler"),
    "sweep_job_cache_hit": ("a job was satisfied from the result cache", "job, workload, scheduler"),
    "sweep_job_done": ("a job finished executing successfully", "job, workload, scheduler"),
    "sweep_job_retried": ("a failed job attempt was re-queued", "job, workload, scheduler"),
    "sweep_job_failed": ("a job exhausted its attempts or timed out", "job, workload, scheduler"),
    # -- serve daemon job lifecycle (times are wall seconds since the
    #    daemon started; every event carries the job id + tenant) ------
    "serve_started": (
        "the serve daemon bound its sockets and began accepting (wall)",
        "tcp, unix, workers",
    ),
    "serve_draining": (
        "the daemon stopped admitting jobs and is draining (wall)",
        "queued, running",
    ),
    "serve_stopped": (
        "the daemon drained (or aborted) and shut down (wall)",
        "served, reason",
    ),
    "job_submitted": (
        "the daemon admitted a job to the fair queue (wall)",
        "job, tenant, workload, scheduler, priority, cached",
    ),
    "job_started": (
        "a job left the queue and began executing (wall)",
        "job, tenant, workload, scheduler, mode (inline|pool)",
    ),
    "job_progress": (
        "a running job reported progress (wall)",
        "job, tenant, stage, detail",
    ),
    "job_finished": (
        "a job completed successfully (wall)",
        "job, tenant, cached, elapsed",
    ),
    "job_failed": (
        "a job failed or exceeded its timeout (wall)",
        "job, tenant, error, kind (error|timeout)",
    ),
    "job_cancelled": (
        "a queued or running job was cancelled (wall)",
        "job, tenant",
    ),
    # -- serve durability / overload protection (wall) -----------------
    "job_journaled": (
        "a submission was durably appended to the job journal (wall)",
        "job, tenant, kind (submit|final)",
    ),
    "job_recovered": (
        "journal replay re-enqueued a pre-crash submission (wall)",
        "job, tenant, priority",
    ),
    "journal_compacted": (
        "the job journal was rewritten down to its live set (wall)",
        "kept, dropped, torn_bytes",
    ),
    "admission_rejected": (
        "the admission controller (or open breaker) shed a submission (wall)",
        "tenant, reason, retry_after",
    ),
    "breaker_open": (
        "the pool circuit breaker tripped open (wall)",
        "failures, cooldown",
    ),
    "breaker_half_open": (
        "the breaker's cooldown elapsed; probing with one job (wall)",
        "",
    ),
    "breaker_closed": (
        "a probe succeeded; the breaker reclosed (wall)",
        "",
    ),
    # -- cache integrity -----------------------------------------------
    "cache_corrupted": (
        "a result-cache entry failed validation and was quarantined (wall)",
        "key, reason",
    ),
    # -- chaos harness (wall seconds since campaign start) -------------
    "chaos_injected": (
        "the chaos harness injected one service-level fault (wall)",
        "action, target, detail",
    ),
}

#: Keys an event's ``fields`` may not use (they name the envelope).
RESERVED_FIELDS = frozenset({"type", "time"})


def register_event_type(name: str, description: str, fields: str = "") -> None:
    """Extend the taxonomy (idempotent for identical registrations)."""
    existing = EVENT_TYPES.get(name)
    if existing is not None and existing != (description, fields):
        raise ObservabilityError(
            f"event type {name!r} already registered with a different schema"
        )
    EVENT_TYPES[name] = (description, fields)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured event as delivered to subscribers."""

    type: str
    time: float
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        """Flat JSON-safe dict (``type``/``time`` + the fields)."""
        out: dict[str, Any] = {"type": self.type, "time": self.time}
        out.update(self.fields)
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Event":
        d = dict(data)
        return cls(type=d.pop("type"), time=float(d.pop("time")), fields=d)
