"""The process-local event bus.

Design constraints (see docs/architecture.md, "Observability"):

* **Zero-cost when silent.**  Every instrumented component guards its
  emit site with the bus's ``active`` flag::

      obs = self.sim.obs
      if obs.active:
          obs.emit("task_started", now, kernel=k.name, core=core.core_id)

  With no subscribers the whole site is one attribute load and one
  bool test — no dict is built, no :class:`~repro.obs.events.Event`
  allocated.  The PR-3/PR-4 perf gates (``event_loop``,
  ``sweep_throughput``) and the ``obs_overhead`` benchmark pin this
  down.

* **Deterministic dispatch.**  Subscribers are called synchronously in
  subscription order, over a snapshot of the subscriber list, so a
  callback that unsubscribes (itself or others) cannot skip or double-
  deliver within the triggering emit.

The bus is process-local and not thread-safe by design: the simulator
is single-threaded, and sweep worker processes get their own (silent)
buses — sweep-level events are emitted in the parent.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import ObservabilityError
from repro.obs.events import EVENT_TYPES, RESERVED_FIELDS, Event

Callback = Callable[[Event], None]


class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`."""

    __slots__ = ("callback", "types", "_bus")

    def __init__(
        self, callback: Callback, types: Optional[frozenset[str]], bus: "EventBus"
    ) -> None:
        self.callback = callback
        self.types = types
        self._bus = bus

    def close(self) -> None:
        """Unsubscribe.  Idempotent."""
        bus = self._bus
        if bus is not None:
            self._bus = None
            bus.unsubscribe(self)

    @property
    def closed(self) -> bool:
        return self._bus is None

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Synchronous publish/subscribe hub for typed events."""

    __slots__ = ("active", "_subs", "events_emitted")

    def __init__(self) -> None:
        #: True iff at least one subscriber is attached.  Emit sites
        #: check this flag before building payloads (the zero-cost
        #: contract); it is maintained by subscribe/unsubscribe only.
        self.active = False
        self._subs: list[Subscription] = []
        #: Events dispatched so far (diagnostic; subscribed emits only).
        self.events_emitted = 0

    def subscribe(
        self,
        callback: Callback,
        types: Optional[Iterable[str]] = None,
    ) -> Subscription:
        """Attach ``callback(event)``; ``types`` narrows delivery to a
        set of event types (default: everything)."""
        tset: Optional[frozenset[str]] = None
        if types is not None:
            tset = frozenset(types)
            unknown = sorted(tset - EVENT_TYPES.keys())
            if unknown:
                raise ObservabilityError(
                    f"cannot subscribe to unregistered event type(s) {unknown}; "
                    "see repro.obs.events.register_event_type"
                )
        sub = Subscription(callback, tset, self)
        self._subs.append(sub)
        self.active = True
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a subscription.  Unknown/already-removed is a no-op."""
        try:
            self._subs.remove(sub)
        except ValueError:
            pass
        self.active = bool(self._subs)

    @property
    def subscriber_count(self) -> int:
        return len(self._subs)

    def emit(self, type: str, time: float, **fields: Any) -> None:
        """Dispatch one event to every matching subscriber.

        Callers on hot paths must guard with ``bus.active`` — calling
        ``emit`` on a silent bus is safe but already paid for the
        kwargs dict.
        """
        if not self._subs:
            return
        if type not in EVENT_TYPES:
            raise ObservabilityError(
                f"unregistered event type {type!r}; see "
                "repro.obs.events.register_event_type"
            )
        if RESERVED_FIELDS & fields.keys():
            raise ObservabilityError(
                f"event fields may not use reserved keys {sorted(RESERVED_FIELDS)}"
            )
        ev = Event(type, time, fields)
        self.events_emitted += 1
        for sub in tuple(self._subs):
            if sub.types is None or type in sub.types:
                sub.callback(ev)

    def publish(self, event: Event) -> None:
        """Dispatch an already-built :class:`Event` (re-publishing)."""
        if not self._subs:
            return
        self.events_emitted += 1
        for sub in tuple(self._subs):
            if sub.types is None or event.type in sub.types:
                sub.callback(event)
