"""Metric registry: counters, gauges and histograms with labels.

Prometheus-flavoured but process-local and pull-free: components
update metrics through handles obtained from a
:class:`MetricRegistry`; exporters render a point-in-time snapshot in
the text exposition format (:meth:`MetricRegistry.render_prometheus`)
or as a JSON dict (:meth:`MetricRegistry.snapshot`).

Every metric enforces a per-metric label-set cardinality cap
(``max_series`` on the registry): unbounded label values (task ids,
hashes) are a memory leak in any long-lived process, so exceeding the
cap raises :class:`~repro.errors.ObservabilityError` at the update
site instead of growing silently.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from repro.errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: job/run durations in seconds.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class _Metric:
    """Shared machinery: label validation + series bookkeeping."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        max_series: int,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self.max_series = max_series
        #: label-value tuple -> series state (insertion-ordered).
        self._series: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if labels.keys() != set(self.label_names):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        if key not in self._series and len(self._series) >= self.max_series:
            raise ObservabilityError(
                f"metric {self.name!r} exceeded its label-cardinality cap "
                f"({self.max_series} series); label values must be bounded "
                "(put unbounded identifiers in event fields, not labels)"
            )
        return key

    def _labels_text(self, key: tuple[str, ...]) -> str:
        if not key:
            return ""
        pairs = ",".join(
            f'{n}="{_escape_label_value(v)}"'
            for n, v in zip(self.label_names, key)
        )
        return "{" + pairs + "}"

    def series(self) -> dict[tuple[str, ...], Any]:
        return dict(self._series)

    def render(self) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing value."""

    kind = "counter"

    def inc(self, amount: Union[int, float] = 1, **labels: Any) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> Union[int, float]:
        return self._series.get(self._key(labels), 0)

    def render(self) -> list[str]:
        return [
            f"{self.name}{self._labels_text(k)} {v}"
            for k, v in self._series.items()
        ]


class Gauge(_Metric):
    """Value that can go up and down; ``set`` is the usual update."""

    kind = "gauge"

    def set(self, value: Union[int, float], **labels: Any) -> None:
        self._series[self._key(labels)] = value

    def add(self, amount: Union[int, float], **labels: Any) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: Any) -> Union[int, float]:
        return self._series.get(self._key(labels), 0)

    def render(self) -> list[str]:
        return [
            f"{self.name}{self._labels_text(k)} {v}"
            for k, v in self._series.items()
        ]


class Histogram(_Metric):
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        max_series: int,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names, max_series)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs >= 1 bucket")
        self.buckets = bounds

    def observe(self, value: Union[int, float], **labels: Any) -> None:
        key = self._key(labels)
        state = self._series.get(key)
        if state is None:
            # [per-bucket counts..., +Inf count, sum]
            state = self._series[key] = [0] * (len(self.buckets) + 1) + [0.0]
        i = bisect_left(self.buckets, value)
        if i < len(self.buckets) and self.buckets[i] < value:
            i += 1
        state[min(i, len(self.buckets))] += 1
        state[-1] += value

    def count(self, **labels: Any) -> int:
        state = self._series.get(self._key(labels))
        return sum(state[:-1]) if state else 0

    def sum(self, **labels: Any) -> float:
        state = self._series.get(self._key(labels))
        return state[-1] if state else 0.0

    def render(self) -> list[str]:
        lines: list[str] = []
        for key, state in self._series.items():
            base = dict(zip(self.label_names, key))
            cumulative = 0
            for bound, n in zip(self.buckets, state):
                cumulative += n
                labels = {**base, "le": f"{bound:g}"}
                pairs = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
                )
                lines.append(f"{self.name}_bucket{{{pairs}}} {cumulative}")
            cumulative += state[len(self.buckets)]
            inf_labels = {**base, "le": "+Inf"}
            pairs = ",".join(
                f'{k}="{_escape_label_value(v)}"' for k, v in inf_labels.items()
            )
            lines.append(f"{self.name}_bucket{{{pairs}}} {cumulative}")
            lines.append(f"{self.name}_sum{self._labels_text(key)} {state[-1]}")
            lines.append(f"{self.name}_count{self._labels_text(key)} {cumulative}")
        return lines


class MetricRegistry:
    """Name-spaced store of metrics; the get-or-create factories are
    idempotent but reject redefinition with a different shape."""

    def __init__(self, max_series: int = 512) -> None:
        self._metrics: dict[str, _Metric] = {}
        self.max_series = max_series

    # -- factories ------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, help, labels, buckets=buckets)
        if metric.buckets != tuple(sorted(float(b) for b in buckets)):
            raise ObservabilityError(
                f"histogram {name!r} already registered with different buckets"
            )
        return metric

    def _get_or_create(self, cls, name, help, labels, **kw):
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ObservabilityError(
                    f"invalid label name {label!r} on metric {name!r}"
                )
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != label_names:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a "
                    f"{existing.kind} with labels {list(existing.label_names)}"
                )
            return existing
        metric = cls(name, help, label_names, self.max_series, **kw)
        self._metrics[name] = metric
        return metric

    # -- introspection / export ----------------------------------------
    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """JSON-safe dump: name -> {kind, help, labels, series}."""
        out: dict[str, dict] = {}
        for name, metric in sorted(self._metrics.items()):
            series = {}
            for key, state in metric.series().items():
                label_key = ",".join(
                    f"{n}={v}" for n, v in zip(metric.label_names, key)
                )
                series[label_key] = list(state) if isinstance(state, list) else state
            out[name] = {
                "kind": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """Text exposition format (one ``# HELP``/``# TYPE`` block per
        metric, sorted by name; trailing newline)."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def write(self, path: Union[str, Path]) -> Path:
        """Write the Prometheus snapshot to ``path``."""
        path = Path(path)
        path.write_text(self.render_prometheus())
        return path
