"""Declarative service-level chaos campaigns.

Where :mod:`repro.faults` perturbs the *simulated platform* inside a
run, :mod:`repro.chaos` torments the *service around the runs*: the
``repro serve`` daemon process, its worker pool, its clients' sockets
and its on-disk state.  A :class:`ChaosAction` names one such
perturbation as data — kind, wall-clock offset, target, magnitude — in
the same frozen/canonical-JSON idiom as
:class:`~repro.faults.spec.FaultSpec`, so campaigns are
content-hashable and replay deterministically: every action draws from
its own SeedSequence stream derived from the campaign seed and the
action's position.

Built-in action kinds
---------------------

- ``kill-worker`` — SIGKILL one of the daemon's pool worker processes
  mid-job (picked by the action's RNG stream).
- ``kill-daemon`` — SIGKILL the daemon itself, then restart it on the
  same journal/cache/port; recovery must re-enqueue everything
  acknowledged and non-terminal.
- ``sever-client`` — abruptly close a live client connection from the
  client side; the client's reconnect + idempotent-resubmit path takes
  over.
- ``corrupt-cache`` — overwrite bytes of one cached result entry on
  disk (picked by RNG); reads must quarantine it, never serve it.
- ``corrupt-journal`` — a crash that tears the last record: SIGKILL
  the daemon (if alive), append ``magnitude`` garbage bytes to the
  journal's tail, restart; recovery must truncate the torn tail and
  keep every record before it.
- ``delay-sched`` — run the daemon's scheduler loop with a
  ``magnitude``-second sleep per iteration (applied to daemon
  incarnations started at or after the action, via
  ``REPRO_SERVE_SCHED_DELAY``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ChaosError
from repro.sweep.spec import freeze, thaw

#: Bump when action semantics change incompatibly (folded into the
#: campaign hash).
CHAOS_SCHEMA_VERSION = 1

ALL_KINDS = (
    "kill-worker", "kill-daemon", "sever-client",
    "corrupt-cache", "corrupt-journal", "delay-sched",
)


@dataclass(frozen=True)
class ChaosAction:
    """One service-level fault: what breaks, and when (wall seconds)."""

    kind: str
    #: Wall-clock offset from campaign start at which to inject.
    at: float = 0.0
    #: Kind-specific target (unused by most kinds; ``"*"`` = harness
    #: picks via the action's RNG stream).
    target: str = "*"
    #: Kind-specific severity: garbage bytes for ``corrupt-journal``,
    #: seconds for ``delay-sched``; ignored elsewhere.
    magnitude: float = 0.0
    #: Extra kind-specific parameters (canonicalised like sweep kwargs).
    params: Any = ()

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ChaosError(
                f"unknown chaos action kind {self.kind!r} "
                f"(known: {list(ALL_KINDS)})"
            )
        if self.at < 0:
            raise ChaosError("chaos action offset 'at' must be >= 0")
        object.__setattr__(self, "at", float(self.at))
        object.__setattr__(self, "magnitude", float(self.magnitude))
        object.__setattr__(self, "params", freeze(self.params or {}))

    def params_dict(self) -> dict:
        out = thaw(self.params)
        return out if isinstance(out, dict) else {}

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "at": self.at,
            "target": self.target,
            "magnitude": self.magnitude,
            "params": self.params_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosAction":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def label(self) -> str:
        tgt = "" if self.target == "*" else f"@{self.target}"
        return f"{self.kind}{tgt}[t+{self.at:g}s]"


@dataclass(frozen=True)
class ChaosCampaign:
    """A seeded, ordered set of actions driven against one daemon.

    Actions fire in ``at`` order.  Each draws from an independent RNG
    stream derived from the campaign seed and the action's position, so
    identical campaigns replay identically and removing one action
    never perturbs another's draws (the :class:`~repro.faults.spec.
    FaultCampaign` discipline, applied to the service).
    """

    seed: int = 0
    actions: Sequence[ChaosAction] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))
        for a in self.actions:
            if not isinstance(a, ChaosAction):
                raise ChaosError(
                    f"campaign actions must be ChaosAction, got {a!r}"
                )

    def __len__(self) -> int:
        return len(self.actions)

    def __iter__(self) -> Iterator[ChaosAction]:
        return iter(self.actions)

    @property
    def empty(self) -> bool:
        return not self.actions

    def rng_for(self, index: int) -> np.random.Generator:
        """Independent generator for the ``index``-th action."""
        seq = np.random.SeedSequence(entropy=int(self.seed), spawn_key=(index,))
        return np.random.default_rng(seq)

    def timeline(self) -> list[tuple[int, ChaosAction]]:
        """(original index, action) pairs sorted by injection offset."""
        return sorted(enumerate(self.actions), key=lambda ia: ia[1].at)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "actions": [a.to_dict() for a in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosCampaign":
        return cls(
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
            actions=tuple(
                ChaosAction.from_dict(a) for a in data.get("actions", ())
            ),
        )

    def canonical_json(self) -> str:
        payload = dict(self.to_dict(), chaos_schema_version=CHAOS_SCHEMA_VERSION)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def campaign_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def describe(self) -> str:
        label = self.name or "chaos-campaign"
        return f"{label}: {len(self.actions)} action(s), seed {self.seed}"


def default_campaign(seed: int = 0, *, span_s: float = 6.0) -> ChaosCampaign:
    """The smoke campaign ``repro chaos`` runs without ``--action``:
    a worker kill, a daemon SIGKILL + restart, one corrupted cache
    entry and a torn journal tail, spread over ``span_s`` seconds."""
    return ChaosCampaign(seed=seed, name="smoke", actions=(
        ChaosAction("kill-worker", at=0.15 * span_s),
        ChaosAction("corrupt-cache", at=0.35 * span_s),
        ChaosAction("kill-daemon", at=0.5 * span_s),
        ChaosAction("corrupt-journal", at=0.75 * span_s, magnitude=33),
        ChaosAction("sever-client", at=0.9 * span_s),
    ))
