"""Drive a seeded chaos campaign against a real ``repro serve`` daemon.

:func:`run_campaign` is the engine behind ``repro chaos``: it starts a
daemon subprocess (journal on, fixed port), submits a grid of jobs
across several tenants through resilient clients (reconnect + auto
idempotency keys), injects the campaign's actions at their wall-clock
offsets — killing workers, SIGKILLing and restarting the daemon,
severing client sockets, corrupting cache entries and journal tails —
then drains, shuts the final incarnation down cleanly, and checks the
service's durability invariants:

1. **No lost acknowledged work** — every submission the daemon acked
   eventually reaches ``done`` (retryable failures like ``broken-pool``
   are resubmitted under a fresh idempotency key; that is a new
   attempt, not a lost one).
2. **No duplicated side effects** — across all daemon incarnations, no
   job id records more than one non-cached ``job_finished`` event, and
   duplicate idempotency keys never produce a second execution.
3. **Bit-identical results** — every served metrics payload equals the
   canonical local execution of the same spec.
4. **Detection, not silence** — a corrupted cache entry ends up
   quarantined once re-read, never served.
5. **Clean exit** — the final incarnation drains and exits 0, and the
   journal left behind is compacted (only the idempotency index
   remains; nothing pending, no torn tail).

Violations are collected into the returned :class:`ChaosReport`
rather than raised mid-campaign, so one broken invariant never masks
another.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.chaos.spec import ChaosAction, ChaosCampaign
from repro.errors import ChaosError
from repro.obs.api import current_observer
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.journal import JobJournal, interpret

#: Model-free (no fitted suite) combos keep chaos jobs ~50 ms each.
DEFAULT_GRID = (
    ("hd-small", "GRWS"), ("hd-small", "CATA"),
    ("fb", "GRWS"), ("fb", "Aequitas"),
)


def _emit_chaos(action: str, target: str, detail: str, t: float) -> None:
    obs = current_observer()
    bus = getattr(obs, "bus", None)
    if bus is not None and getattr(bus, "active", False):
        bus.emit("chaos_injected", t, action=action, target=target,
                 detail=detail)


@dataclass
class _Task:
    """One logical unit of work the campaign must see through."""

    index: int
    tenant: str
    spec_dict: dict
    idem_key: str
    acked_job: Optional[str] = None
    state: str = "pending"
    metrics: Optional[dict] = None
    attempts: int = 0
    error: Optional[str] = None


@dataclass
class ChaosReport:
    """What the campaign did and which invariants held."""

    campaign_hash: str
    seed: int
    jobs: int
    tenants: int
    incarnations: int = 1
    injected: list = field(default_factory=list)
    completed: int = 0
    retried_attempts: int = 0
    recovered_jobs: int = 0
    duplicate_finishes: int = 0
    violations: list = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "campaign_hash": self.campaign_hash,
            "seed": self.seed,
            "jobs": self.jobs,
            "tenants": self.tenants,
            "incarnations": self.incarnations,
            "injected": list(self.injected),
            "completed": self.completed,
            "retried_attempts": self.retried_attempts,
            "recovered_jobs": self.recovered_jobs,
            "duplicate_finishes": self.duplicate_finishes,
            "violations": list(self.violations),
            "wall_time": self.wall_time,
            "ok": self.ok,
        }


class DaemonUnderChaos:
    """Manages the daemon subprocess across kill/restart incarnations."""

    def __init__(self, workdir: Path, *, workers: int = 2,
                 repo_src: Optional[Path] = None) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.cache_dir = self.workdir / "cache"
        self.journal = self.workdir / "serve.journal"
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.incarnation = 0
        self.sched_delay = 0.0
        self._lock = threading.RLock()
        self._log_fh = None
        self._src = repo_src
        self._cmdline = b""

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    def event_logs(self) -> list[Path]:
        return sorted(self.workdir.glob("events-*.jsonl"))

    def start(self, timeout: float = 60.0) -> None:
        with self._lock:
            if self.proc is not None and self.proc.poll() is None:
                return
            ready = self.workdir / f"ready-{self.incarnation}.json"
            try:
                ready.unlink()
            except OSError:
                pass
            env = dict(os.environ)
            if self._src is not None:
                env["PYTHONPATH"] = str(self._src)
            env.pop("REPRO_SERVE_ADDR", None)
            if self.sched_delay > 0:
                env["REPRO_SERVE_SCHED_DELAY"] = f"{self.sched_delay:g}"
            else:
                env.pop("REPRO_SERVE_SCHED_DELAY", None)
            cmd = [
                sys.executable, "-m", "repro", "serve",
                "--workers", str(self.workers),
                "--port", str(self.port or 0),
                "--cache-dir", str(self.cache_dir),
                "--journal", str(self.journal),
                "--ready-file", str(ready),
                "--events-out",
                str(self.workdir / f"events-{self.incarnation}.jsonl"),
            ]
            log = open(self.workdir / f"daemon-{self.incarnation}.log", "w")
            old_fh, self._log_fh = self._log_fh, log
            if old_fh is not None:
                old_fh.close()
            self.proc = subprocess.Popen(
                cmd, env=env, stdout=log, stderr=subprocess.STDOUT,
            )
            self._cmdline = b"".join(arg.encode() + b"\x00" for arg in cmd)
            deadline = time.monotonic() + timeout
            while not ready.exists():
                if self.proc.poll() is not None:
                    raise ChaosError(
                        f"daemon incarnation {self.incarnation} died during "
                        f"startup; see {log.name}"
                    )
                if time.monotonic() > deadline:
                    self.proc.kill()
                    raise ChaosError(
                        f"daemon incarnation {self.incarnation} never wrote "
                        "its ready file"
                    )
                time.sleep(0.02)
            info = json.loads(ready.read_text())
            self.port = int(info["tcp"].rsplit(":", 1)[1])
            self.incarnation += 1

    def alive(self) -> bool:
        with self._lock:
            return self.proc is not None and self.proc.poll() is None

    def ensure_alive(self) -> None:
        with self._lock:
            if not self.alive():
                self.start()

    def worker_pids(self) -> list[int]:
        """Direct children of the daemon (the pool workers), via /proc."""
        with self._lock:
            if not self.alive():
                return []
            pid = self.proc.pid
        try:
            text = Path(
                f"/proc/{pid}/task/{pid}/children"
            ).read_text()
        except OSError:
            return []
        return [int(p) for p in text.split()]

    def kill(self) -> None:
        """SIGKILL the daemon and every worker (a real crash).

        Fork-children share the daemon's (unique) command line, so a
        worker forked between the pid snapshot and the SIGKILL — or an
        orphan from a pool recycle — is found by a /proc cmdline sweep;
        a survivor could otherwise hold an inherited fd across the
        restart."""
        with self._lock:
            if self.proc is None:
                return
            workers = self.worker_pids()
            try:
                self.proc.kill()
            except OSError:
                pass
            self.proc.wait()
            for wpid in workers:
                try:
                    os.kill(wpid, signal.SIGKILL)
                except OSError:
                    pass
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                stragglers = self._pids_matching_cmdline()
                if not stragglers:
                    break
                for pid in stragglers:
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except OSError:
                        pass
                time.sleep(0.05)

    def _pids_matching_cmdline(self) -> list[int]:
        if not self._cmdline:
            return []
        me = os.getpid()
        out = []
        for entry in Path("/proc").iterdir():
            if not entry.name.isdigit() or int(entry.name) == me:
                continue
            try:
                if entry.joinpath("cmdline").read_bytes() == self._cmdline:
                    out.append(int(entry.name))
            except OSError:
                continue
        return out

    def stop(self, timeout: float = 120.0) -> int:
        """SIGTERM and wait for a clean drain; returns the exit code."""
        with self._lock:
            proc = self.proc
        if proc is None:
            return 0
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise ChaosError("daemon did not drain after SIGTERM")
        finally:
            if self._log_fh is not None:
                self._log_fh.close()
                self._log_fh = None
        return proc.returncode


def build_tasks(campaign: ChaosCampaign, *, jobs: int, tenants: int,
                scale: float) -> list[_Task]:
    """The campaign's workload: ``jobs`` specs over ``tenants`` tenants."""
    from repro.bench import BenchConfig

    cfg = BenchConfig(scale=scale)
    tasks: list[_Task] = []
    for i in range(jobs):
        workload, scheduler = DEFAULT_GRID[i % len(DEFAULT_GRID)]
        rep = i // len(DEFAULT_GRID)
        spec = cfg.job_spec(workload, scheduler, rep)
        tasks.append(_Task(
            index=i,
            tenant=f"tenant-{i % tenants}",
            spec_dict=spec.to_dict(),
            idem_key=f"chaos-{campaign.seed}-{i}",
        ))
    return tasks


def _drive_task(task: _Task, daemon: DaemonUnderChaos, deadline: float,
                clients: list, clients_lock: threading.Lock,
                report: ChaosReport) -> None:
    """Submit one task and see it through to ``done``, surviving
    restarts (reconnect + idempotent resubmission) and retryable
    failures (fresh key per new attempt)."""
    client: Optional[ServeClient] = None
    key = task.idem_key
    job_id: Optional[str] = None

    def connect() -> ServeClient:
        nonlocal client
        if client is not None:
            with clients_lock:
                if client in clients:
                    clients.remove(client)
            client.close()
        daemon.ensure_alive()
        client = ServeClient(
            daemon.address, tenant=task.tenant, timeout=30.0, retries=6,
            backoff_s=0.1, backoff_max_s=1.0,
        )
        with clients_lock:
            clients.append(client)
        return client

    try:
        c = connect()
        while time.monotonic() < deadline:
            try:
                if job_id is None:
                    task.attempts += 1
                    job = c.submit(
                        task.spec_dict, timeout=300, idempotency_key=key
                    )
                    job_id = job.get("id") or None
                    if job_id:
                        task.acked_job = task.acked_job or job_id
                    task.state = job.get("state", "queued")
                else:
                    job = c.status(job_id)
                    task.state = job.get("state", task.state)
                if task.state == protocol.DONE:
                    task.metrics = job.get("metrics")
                    if task.metrics is None and job_id:
                        try:
                            task.metrics = c.status(job_id).get("metrics")
                        except protocol.ProtocolError:
                            pass
                    if task.metrics is not None:
                        return
                    # Done, but the result is unrecoverable (e.g. its
                    # cache entry is the one the campaign corrupted):
                    # run a fresh attempt under a new key.
                    key = f"{task.idem_key}-r{task.attempts}"
                    job_id = None
                    report.retried_attempts += 1
                    continue
                if task.state in protocol.TERMINAL_STATES:
                    # Failed / timed out / cancelled by the chaos: a
                    # new logical attempt under a fresh key (the old
                    # key is settled on the failed outcome).
                    task.error = job.get("error")
                    key = f"{task.idem_key}-r{task.attempts}"
                    job_id = None
                    report.retried_attempts += 1
                    time.sleep(0.05)
                    continue
                time.sleep(0.1)
            except protocol.ProtocolError as exc:
                if exc.code == protocol.UNKNOWN_JOB:
                    # Pruned or settled across a restart: resubmit the
                    # same key; the idempotent replay answers from the
                    # journal-restored index + cache.
                    job_id = None
                    continue
                if exc.code == protocol.RESOURCE_EXHAUSTED:
                    time.sleep(exc.retry_after or 0.2)
                    continue
                if exc.code == protocol.SHUTTING_DOWN:
                    time.sleep(0.2)
                    c = connect()
                    continue
                raise
            except Exception:  # noqa: BLE001 - daemon down mid-call
                time.sleep(0.2)
                try:
                    c = connect()
                except Exception:  # noqa: BLE001 - still restarting
                    time.sleep(0.3)
        task.error = task.error or f"not done by deadline (last: {task.state})"
    finally:
        if client is not None:
            with clients_lock:
                if client in clients:
                    clients.remove(client)
            client.close()


def _inject(action: ChaosAction, index: int, campaign: ChaosCampaign,
            daemon: DaemonUnderChaos, clients: list,
            clients_lock: threading.Lock, report: ChaosReport,
            t0: float) -> None:
    rng = campaign.rng_for(index)
    now = time.monotonic() - t0
    detail = ""
    if action.kind == "kill-worker":
        pids = daemon.worker_pids()
        if pids:
            victim = int(pids[int(rng.integers(len(pids)))])
            try:
                os.kill(victim, signal.SIGKILL)
                detail = f"pid {victim}"
            except OSError:
                detail = f"pid {victim} already gone"
        else:
            detail = "no workers alive; skipped"
    elif action.kind == "kill-daemon":
        daemon.kill()
        time.sleep(0.2)
        daemon.start()
        detail = f"restarted as incarnation {daemon.incarnation - 1}"
    elif action.kind == "corrupt-journal":
        # A crash that tears the final record: the garbage must land
        # while nothing is appending, so the daemon dies first.
        daemon.kill()
        garbage = int(action.magnitude) or 32
        with open(daemon.journal, "ab") as fh:
            fh.write(bytes(rng.integers(0, 256, size=garbage, dtype="u1")))
        daemon.start()
        detail = f"{garbage} torn bytes, then restart"
    elif action.kind == "sever-client":
        with clients_lock:
            live = list(clients)
        if live:
            victim_client = live[int(rng.integers(len(live)))]
            try:
                victim_client._sock.shutdown(2)  # noqa: SLF001 - chaos
                detail = "severed one live client socket"
            except (OSError, AttributeError):
                detail = "client already disconnected"
        else:
            detail = "no live clients; skipped"
    elif action.kind == "corrupt-cache":
        entries = sorted(daemon.cache_dir.glob("results/*/*.json"))
        if entries:
            victim_path = entries[int(rng.integers(len(entries)))]
            try:
                original = json.loads(victim_path.read_text())
                blob = victim_path.read_bytes()
                victim_path.write_bytes(blob[: max(1, len(blob) // 2)])
            except (OSError, json.JSONDecodeError):
                detail = f"{victim_path.name} unreadable; skipped"
            else:
                report.injected.append({
                    "kind": "corrupt-cache", "path": victim_path.name,
                    "spec": original.get("job"), "at": now,
                })
                _emit_chaos(
                    action.kind, victim_path.name, "truncated entry", now
                )
                return
        else:
            detail = "no cache entries yet; skipped"
    elif action.kind == "delay-sched":
        daemon.sched_delay = action.magnitude
        detail = f"{action.magnitude:g}s per loop on future incarnations"
    report.injected.append(
        {"kind": action.kind, "detail": detail, "at": now}
    )
    _emit_chaos(action.kind, action.target, detail, now)


def _reprobe_corrupted(daemon: DaemonUnderChaos,
                       report: ChaosReport) -> None:
    """Force a cache read of every entry the campaign corrupted, so the
    quarantine invariant is checked deterministically (the drained
    workload may never have re-probed that hash on its own)."""
    specs = [i.get("spec") for i in report.injected
             if i["kind"] == "corrupt-cache" and i.get("spec")]
    if not specs:
        return
    client = ServeClient(
        daemon.address, tenant="chaos-reprobe", timeout=30.0, retries=6,
        backoff_s=0.1, backoff_max_s=1.0,
    )
    try:
        for n, spec_dict in enumerate(specs):
            try:
                job = client.submit(
                    spec_dict, timeout=120,
                    idempotency_key=f"chaos-reprobe-{n}",
                )
                job_id = job.get("id")
                deadline = time.monotonic() + 60.0
                while (job.get("state") not in protocol.TERMINAL_STATES
                       and time.monotonic() < deadline):
                    time.sleep(0.1)
                    job = client.status(job_id, result=False)
            except Exception:  # noqa: BLE001 - any failure is the finding
                report.violations.append(
                    f"re-probe of corrupted cache entry #{n} failed "
                    "outright (the daemon should re-execute, not error)"
                )
    finally:
        client.close()


def _verify(tasks: list[_Task], daemon: DaemonUnderChaos,
            report: ChaosReport, exit_code: int) -> None:
    """Check every invariant against task outcomes, event logs and the
    journal the final incarnation left behind."""
    # 1. No lost acknowledged work.
    for task in tasks:
        if task.state == protocol.DONE and task.metrics is not None:
            report.completed += 1
        else:
            report.violations.append(
                f"task {task.index} ({task.tenant}, key {task.idem_key}) "
                f"never completed: state={task.state} error={task.error}"
            )
    # 2. No duplicated executions across incarnations.
    finishes: dict[str, int] = {}
    recovered = 0
    for log in daemon.event_logs():
        try:
            lines = log.read_text().splitlines()
        except OSError:
            continue
        for line in lines:
            try:
                ev = json.loads(line)
            except json.JSONDecodeError:
                continue
            if ev.get("type") == "job_finished" and not ev.get("cached"):
                finishes[ev["job"]] = finishes.get(ev["job"], 0) + 1
            elif ev.get("type") == "job_recovered":
                recovered += 1
    report.recovered_jobs = recovered
    dupes = {j: n for j, n in finishes.items() if n > 1}
    report.duplicate_finishes = sum(n - 1 for n in dupes.values())
    for job_id, n in sorted(dupes.items()):
        report.violations.append(
            f"job {job_id} executed {n} times (duplicated side effects)"
        )
    # 3. Bit-identical to the canonical local execution.
    from repro.sweep.engine import execute_job
    from repro.sweep.spec import JobSpec

    local: dict[str, dict] = {}
    for task in tasks:
        if task.metrics is None:
            continue  # already a violation above
        spec = JobSpec.from_dict(task.spec_dict)
        if spec.job_hash not in local:
            local[spec.job_hash] = json.loads(
                json.dumps(execute_job(spec))
            )
        if task.metrics != local[spec.job_hash]:
            report.violations.append(
                f"task {task.index} metrics drifted from local execution "
                f"of {spec.label()}"
            )
    # 4. Corrupted cache entries were quarantined, never served
    # (service of a corrupted payload would have tripped check 3; here
    # we assert the detection side).
    corrupted = [i for i in report.injected if i["kind"] == "corrupt-cache"
                 and "path" in i]
    if corrupted:
        quarantined = {
            p.name for p in (daemon.cache_dir / "quarantine").glob("*.json")
        }
        for item in corrupted:
            if item["path"] not in quarantined:
                # Only a violation if somebody actually re-read it.
                entry_path = next(
                    daemon.cache_dir.glob(f"results/*/{item['path']}"), None
                )
                if entry_path is None or ResultCacheProbe.valid(entry_path):
                    continue
                report.violations.append(
                    f"corrupted cache entry {item['path']} was neither "
                    "quarantined nor rewritten"
                )
    # 5. Clean exit + compacted journal.
    if exit_code != 0:
        report.violations.append(
            f"final daemon incarnation exited {exit_code}, expected 0"
        )
    replay = JobJournal(daemon.journal).replay(truncate=False)
    state = interpret(replay.records)
    if replay.torn_bytes:
        report.violations.append(
            f"journal left {replay.torn_bytes} torn bytes after clean "
            "shutdown"
        )
    if state.pending:
        report.violations.append(
            f"journal not compacted: {len(state.pending)} pending "
            "submission(s) survive a drained shutdown"
        )
    for rec in replay.records:
        if rec.get("t") != "idem":
            report.violations.append(
                "journal not compacted: a drained daemon should leave only "
                f"the idempotency index, found {rec.get('t')!r} record"
            )
            break


class ResultCacheProbe:
    """Minimal validity probe mirroring ResultCache._valid (static)."""

    @staticmethod
    def valid(path: Path) -> bool:
        from repro.sweep.cache import ResultCache

        try:
            return ResultCache._valid(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False


def run_campaign(
    campaign: ChaosCampaign,
    workdir: str | Path,
    *,
    jobs: int = 8,
    tenants: int = 3,
    workers: int = 2,
    scale: float = 0.25,
    sched_delay: float = 0.0,
    drain_timeout: float = 180.0,
    repo_src: Optional[Path] = None,
) -> ChaosReport:
    """Run ``campaign`` against a fresh daemon; returns the report.

    ``sched_delay`` throttles the daemon's scheduler loop (seconds per
    iteration) from the first incarnation on — campaigns use it to keep
    jobs queued long enough that kills land mid-flight instead of after
    a sub-second drain.
    """
    if jobs < 1 or tenants < 1:
        raise ChaosError("chaos campaigns need at least one job and tenant")
    report = ChaosReport(
        campaign_hash=campaign.campaign_hash, seed=campaign.seed,
        jobs=jobs, tenants=tenants,
    )
    t_start = time.monotonic()
    daemon = DaemonUnderChaos(Path(workdir), workers=workers,
                              repo_src=repo_src)
    daemon.sched_delay = max(0.0, float(sched_delay))
    tasks = build_tasks(campaign, jobs=jobs, tenants=tenants, scale=scale)
    clients: list = []
    clients_lock = threading.Lock()
    daemon.start()
    deadline = time.monotonic() + drain_timeout
    threads = [
        threading.Thread(
            target=_drive_task,
            args=(task, daemon, deadline, clients, clients_lock, report),
            daemon=True, name=f"chaos-task-{task.index}",
        )
        for task in tasks
    ]
    for t in threads:
        t.start()
    t0 = time.monotonic()
    for index, action in campaign.timeline():
        delay = t0 + action.at - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        _inject(action, index, campaign, daemon, clients, clients_lock,
                report, t0)
    for t in threads:
        t.join(max(0.0, deadline - time.monotonic()) + 10.0)
    daemon.ensure_alive()
    _reprobe_corrupted(daemon, report)
    exit_code = daemon.stop()
    report.incarnations = daemon.incarnation
    _verify(tasks, daemon, report, exit_code)
    report.wall_time = time.monotonic() - t_start
    return report
