"""repro.chaos — deterministic service-level fault injection.

Where :mod:`repro.faults` breaks the simulated platform *inside* a run,
this package breaks the serving layer *around* runs: seeded
:class:`ChaosCampaign` specs (content-hashed, replayable) drive a real
``repro serve`` daemon subprocess through worker kills, daemon
SIGKILL + restart, severed client sockets, corrupted cache entries and
torn journal tails, while :func:`run_campaign` checks the durability
invariants — no lost acknowledged jobs, no duplicated executions,
bit-identical results, corrupted state detected and quarantined, clean
drain with a compacted journal.  ``repro chaos`` is the CLI entry
point; see docs/architecture.md, "Failure model".
"""

from repro.chaos.harness import (
    DEFAULT_GRID,
    ChaosReport,
    DaemonUnderChaos,
    run_campaign,
)
from repro.chaos.spec import (
    ALL_KINDS,
    CHAOS_SCHEMA_VERSION,
    ChaosAction,
    ChaosCampaign,
    default_campaign,
)

__all__ = [
    "ALL_KINDS",
    "CHAOS_SCHEMA_VERSION",
    "ChaosAction",
    "ChaosCampaign",
    "ChaosReport",
    "DEFAULT_GRID",
    "DaemonUnderChaos",
    "default_campaign",
    "run_campaign",
]
