"""Command-line interface.

::

    repro list                              # workloads & schedulers
    repro run slu joss                      # one run, print metrics
    repro run -w mm-256 -s GRWS STEER JOSS --scale 2
    repro run joss slu --events-out e.jsonl --metrics-out m.prom
    repro experiment fig8                   # regenerate a paper artefact
    repro experiment all -o results/        # everything
    repro profile                           # platform characterisation summary
    repro sweep -w fb dp -s GRWS JOSS --workers 4   # cached grid sweep
    repro faults -w fb -s JOSS              # fault injection + degradation report
    repro serve --workers 4 --port 7341     # long-lived scheduling daemon
    repro submit fb joss --follow -c :7341  # stream one job to completion
    repro jobs --metrics                    # daemon job table / metric snapshot
    repro cancel j000002                    # cancel a queued job
    repro shutdown                          # drain in-flight work, then stop

Every run/trace/sweep/faults/... subcommand shares the common options
``--platform``, ``--seed``, ``-o/--out`` and the observability flags
``--events-out`` (JSONL structured event log) / ``--metrics-out``
(Prometheus text snapshot) — see :mod:`repro.obs`.

The service commands (``submit``/``jobs``/``cancel``/``shutdown``)
find their daemon via ``-c/--connect`` or ``$REPRO_SERVE_ADDR``
(``host:port``, a bare port, or ``unix:/path``) and account their
requests to ``--tenant`` — see :mod:`repro.serve`.

Also callable as ``python -m repro ...`` or the legacy ``joss-repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.experiments import ALL as ALL_EXPERIMENTS
from repro.bench.runner import BenchConfig, run as bench_run
from repro.schedulers.registry import joss_goal_name, scheduler_names
from repro.version import __version__
from repro.workloads.registry import workload_names


def _platform_factory(args: argparse.Namespace):
    from repro.hw.platform import platform_factory

    return platform_factory(args.platform)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in workload_names():
        print(f"  {name}")
    print("schedulers:")
    for name in scheduler_names():
        print(f"  {name}")
    print("experiments:")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    return 0


def _classify_run_names(args: argparse.Namespace) -> tuple[str, list[str]]:
    """Sort the ``run`` subcommand's positional names into one workload
    and 1+ schedulers (case-insensitive; ``-w`` / ``-s`` still work).
    ``--goal`` appends the matching dynamic JOSS variant."""
    from repro.errors import ReproError

    wl_by_lower = {w.lower(): w for w in workload_names()}
    sc_by_lower = {s.lower(): s for s in scheduler_names()}
    workloads = [args.workload] if args.workload else []
    schedulers = list(args.scheduler or [])
    for name in args.names:
        low = name.lower()
        if low in wl_by_lower:
            workloads.append(wl_by_lower[low])
        elif low in sc_by_lower:
            schedulers.append(sc_by_lower[low])
        elif joss_goal_name(name) is not None:
            # Dynamic JOSS variants (JOSS_1.4x, JOSS_deadline-0.05s,
            # JOSS_powercap-4W, ...): any `JOSS_` + goal spelling the
            # registry can resolve, not listed in scheduler_names().
            schedulers.append(name)
        else:
            raise ReproError(
                f"{name!r} is neither a workload ({sorted(wl_by_lower.values())}) "
                f"nor a scheduler ({sorted(sc_by_lower.values())})"
            )
    if getattr(args, "goal", None):
        from repro.core.goals import goal_spec

        schedulers.append(f"JOSS_{goal_spec(args.goal).name}")
    if len(workloads) != 1 or not schedulers:
        raise ReproError(
            "run needs exactly one workload and at least one scheduler, "
            f"got workloads={workloads} schedulers={schedulers} "
            "(positional names, -w/-s, or --goal)"
        )
    return workloads[0], schedulers


def _arrival_spec(args: argparse.Namespace):
    """Build the :class:`~repro.workloads.arrivals.ArrivalSpec` the
    ``--arrivals`` flag family describes, or ``()`` (closed system)."""
    if not getattr(args, "arrivals", None):
        return ()
    from repro.workloads.arrivals import ArrivalSpec

    return ArrivalSpec(
        pattern=args.arrivals,
        rate=args.arrival_rate,
        count=args.arrival_count,
        deadline=args.arrival_deadline,
        workloads=tuple(args.arrival_workloads or ()),
        seed=args.arrival_seed,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    workload, schedulers = _classify_run_names(args)
    arrivals = _arrival_spec(args)
    cfg = BenchConfig(
        platform_factory=_platform_factory(args),
        scale=args.scale, repetitions=args.repetitions, seed=args.seed,
        arrivals=arrivals,
    )
    line = (
        f"platform={args.platform} scale={args.scale} "
        f"reps={args.repetitions} seed={args.seed}"
    )
    if arrivals:
        line += (
            f" arrivals={arrivals.pattern}x{arrivals.count}"
            f"@{arrivals.rate:g}/s"
        )
        if arrivals.deadline is not None:
            line += f" deadline={arrivals.deadline:g}s"
    print(line)
    baseline = None
    results = []
    for sched in schedulers:
        m = bench_run((workload, sched), config=cfg)
        results.append(m)
        line = m.summary()
        if baseline is None:
            baseline = m.total_energy
        elif baseline > 0:
            line += f" | vs first: {m.total_energy / baseline:.3f}x"
        print(line)
        if m.dags_arrived:
            print(
                f"    arrivals: {m.dags_arrived} released, "
                f"{m.dags_completed} completed, "
                f"{m.deadline_misses} missed deadline | tardiness "
                f"sum {m.total_tardiness:.4f}s max {m.max_tardiness:.4f}s"
            )
        if args.verbose and "decisions" in m.extras:
            for k, d in sorted(m.extras["decisions"].items()):
                print(f"    {k:24s} -> {d}")
    if args.output:
        import json as _json
        from pathlib import Path

        Path(args.output).write_text(
            _json.dumps([m.to_dict() for m in results], indent=1)
        )
        print(f"metrics JSON -> {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    cfg = BenchConfig(
        platform_factory=_platform_factory(args),
        scale=args.scale, repetitions=args.repetitions, seed=args.seed,
    )
    rc = 0
    for name in names:
        mod = ALL_EXPERIMENTS.get(name)
        if mod is None:
            print(f"unknown experiment {name!r}; try one of {list(ALL_EXPERIMENTS)}")
            return 2
        kwargs = {}
        if name in ("fig8", "fig9", "sampling", "ablation", "sec71",
                    "percore", "dop", "governors", "portability", "multiprog", "granularity"):
            kwargs["config"] = cfg
        result = mod.run(**kwargs)
        print(result.title)
        print(result.text)
        for k, v in result.summary.items():
            print(f"  {k} = {v:.4g}")
        if args.output:
            path = result.save(args.output)
            print(f"saved -> {path}")
        print()
    return rc


#: Default scheduler line-up for ``sweep`` (the Figure 8 headline trio).
_SWEEP_DEFAULT_SCHEDULERS = ("GRWS", "STEER", "JOSS")


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as _json

    from repro.sweep import ResultCache, SweepSpec, console_progress, run_sweep

    spec = SweepSpec(
        workloads=tuple(args.workload) if args.workload else tuple(workload_names()),
        schedulers=tuple(args.scheduler),
        platform=args.platform,
        scales=tuple(args.scale),
        repetitions=args.repetitions,
        seed=args.seed,
        arrivals=_arrival_spec(args),
    )
    print(f"sweep: {spec.describe()}  [grid {spec.sweep_hash[:12]}]")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        print(f"cache: {cache.root}")
    result = run_sweep(
        spec,
        workers=args.workers,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
        chunk_size=args.chunk_size,
        reuse_pool=not args.cold_pool,
        progress=None if args.quiet else console_progress(),
    )
    print()
    for (wl, sched, scale), m in sorted(result.averaged().items()):
        line = m.summary()
        if len(spec.scales) > 1:
            line += f" | scale {scale:g}"
        print(line)
    for f in result.failures:
        print(f"FAILED [{f.kind}] {f.job.label()} after {f.attempts} "
              f"attempt(s): {f.error}")
    print()
    for line in result.telemetry.summary_lines():
        print(line)
    if args.output:
        payload = {
            "spec": [j.to_dict() for j in spec],
            "telemetry": vars(result.telemetry),
            "results": [
                {"job": o.job.to_dict(), "cached": o.cached,
                 "metrics": o.metrics.to_dict()}
                for o in result.outcomes
            ],
            "failures": [
                {"job": f.job.to_dict(), "kind": f.kind, "error": f.error,
                 "attempts": f.attempts}
                for f in result.failures
            ],
        }
        from pathlib import Path

        Path(args.output).write_text(_json.dumps(payload, indent=1))
        print(f"results JSON -> {args.output}")
    return 1 if result.failures else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from dataclasses import replace
    from pathlib import Path

    from repro.faults import DegradationReport, builtin_campaigns
    from repro.sweep import ResultCache, run_sweep
    from repro.sweep.spec import JobSpec

    scheduler_kwargs = {}
    if args.scheduler.startswith("JOSS"):
        # Enable the degradation machinery (repro.core.health) so the
        # scheduler can absorb the injected faults instead of riding a
        # broken decision to the end of the run.
        scheduler_kwargs["health"] = True
    baseline_spec = JobSpec(
        workload=args.workload,
        scheduler=args.scheduler,
        platform=args.platform,
        scale=args.scale,
        seed=args.seed,
        scheduler_kwargs=scheduler_kwargs,
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    print(f"fault-free baseline: {baseline_spec.label()}")
    base_result = run_sweep([baseline_spec], cache=cache)
    base_result.raise_on_failure()
    baseline = base_result.outcomes[0].metrics
    print(f"  {baseline.summary()}")

    campaigns = builtin_campaigns(baseline.makespan, seed=args.campaign_seed)
    if args.models:
        unknown = sorted(set(args.models) - set(campaigns))
        if unknown:
            print(f"unknown fault model(s) {unknown}; "
                  f"choose from {sorted(campaigns)}")
            return 2
        campaigns = {k: v for k, v in campaigns.items() if k in args.models}
    jobs = [
        replace(baseline_spec, faults=campaign)
        for campaign in campaigns.values()
    ]
    print(f"running {len(jobs)} fault campaign(s)...")
    result = run_sweep(jobs, cache=cache)
    report = DegradationReport(args.workload, args.scheduler, baseline)
    name_by_hash = {job.job_hash: name for job, name in zip(jobs, campaigns)}
    for outcome in result.outcomes:
        name = name_by_hash[outcome.job_hash]
        report.add(name, campaigns[name].campaign_hash, outcome.metrics)
    print()
    print(report.render())
    for f in result.failures:
        print(f"FAILED [{f.kind}] {f.job.label()}: {f.error}")
    if args.output:
        Path(args.output).write_text(report.canonical_json())
        print(f"\ndegradation report JSON -> {args.output}")
    return 1 if result.failures else 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf import (
        PerfReport,
        ensure_repo_baseline,
        gate_against_baseline,
        git_rev,
        run_benchmarks,
    )
    from repro.perf.harness import GATED_BENCHMARKS

    mode = "quick" if args.quick else "full"
    # Fail fast (before minutes of benchmarking): a gated run must
    # compare against a baseline that is actually checked in, not a
    # scratch report outside the repository.
    if args.gate and args.baseline:
        ensure_repo_baseline(args.baseline)
    if args.profile:
        from repro.perf import profile_benchmarks

        print(f"repro perf --profile ({mode} mode)")
        prof = profile_benchmarks(
            quick=args.quick,
            benchmarks=args.benchmark,
            top=args.profile_top,
            progress=lambda name: print(f"  profiling {name} ..."),
        )
        print()
        print(prof.render())
        path = prof.save(args.profile_output)
        print(f"\nprofile JSON -> {path}")
        print(f"profile text -> {path.with_suffix('.txt')}")
        return 0
    print(f"repro perf ({mode} mode)")
    records = run_benchmarks(
        quick=args.quick,
        benchmarks=args.benchmark,
        progress=lambda name: print(f"  running {name} ..."),
    )
    report = PerfReport(
        benchmarks=records,
        rev=git_rev(),
        timestamp=PerfReport.now_iso(),
        quick=args.quick,
    )
    baseline = None
    if args.baseline:
        baseline = PerfReport.load(args.baseline)
        report.compare_to(baseline, path=args.baseline)
    print()
    print(report.render())
    path = report.save(args.output)
    print(f"\nperf report JSON -> {path}")
    if baseline is not None and args.gate:
        gated = tuple(args.gate_benchmark) if args.gate_benchmark else tuple(
            n for n in GATED_BENCHMARKS if n in report.benchmarks
        )
        results = gate_against_baseline(
            report, baseline, benchmarks=gated,
            max_regression=args.max_regression,
        )
        print()
        failed = False
        for res in results:
            print(f"gate: {res.describe()}")
            failed = failed or not res.passed
        if failed:
            print("perf gate FAILED", file=sys.stderr)
            return 1
        print("perf gate passed")
    return 0


def _parse_weights(pairs: Optional[Sequence[str]]) -> dict:
    from repro.errors import ReproError

    out: dict = {}
    for pair in pairs or ():
        name, sep, value = pair.partition("=")
        try:
            if not sep or not name:
                raise ValueError
            out[name] = float(value)
        except ValueError:
            raise ReproError(
                f"malformed --weight {pair!r}; expected TENANT=WEIGHT"
            ) from None
    return out


def _cmd_serve(args: argparse.Namespace) -> int:
    import json as _json
    import os
    import signal
    from pathlib import Path

    from repro.serve import ServeConfig, Server

    journal_path = None
    if not args.no_journal:
        if args.journal:
            journal_path = args.journal
        else:
            from repro.sweep.cache import default_cache_dir

            root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
            journal_path = str(root / "serve.journal")
    try:
        sched_delay = float(os.environ.get("REPRO_SERVE_SCHED_DELAY", "0"))
    except ValueError:
        sched_delay = 0.0
    config = ServeConfig(
        host=args.host, port=args.port, unix_path=args.unix,
        workers=args.workers, max_inflight=args.max_inflight,
        cache_dir=args.cache_dir, use_cache=not args.no_cache,
        idle_reap_s=args.idle_reap, quantum=args.quantum,
        tenant_weights=_parse_weights(args.weight),
        job_timeout=args.job_timeout,
        journal_path=journal_path, recover=not args.no_recover,
        max_queue_depth=args.max_queue_depth,
        max_tenant_depth=args.max_tenant_depth,
        max_queued_cost_s=args.max_queued_cost,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        breaker_shed=args.breaker_shed,
        sched_delay_s=sched_delay,
    )
    server = Server(config).start()
    host, port = server.tcp_address
    addr = f"{host}:{port}"
    if server.unix_address:
        addr += f" and unix:{server.unix_address}"
    mode = (f"warm pool ({config.workers} workers)" if config.pool_mode
            else "in-process threads")
    cache = "off" if not config.use_cache else str(server._store.root)
    print(f"repro serve listening on {addr}")
    print(f"execution: {mode}, {config.capacity} in flight; cache: {cache}")
    if journal_path:
        recovered = server.recovered_jobs
        suffix = f"; recovered {recovered} job(s)" if recovered else ""
        print(f"journal: {journal_path}{suffix}")
    if args.ready_file:
        # Machine-readable rendezvous (scripts/CI start us with an
        # ephemeral port and read the bound address back from here).
        # Written atomically: pollers race the write, and a reader
        # must never observe a truncated-but-unfilled file.
        ready = Path(args.ready_file)
        tmp = ready.with_suffix(ready.suffix + ".tmp")
        tmp.write_text(_json.dumps({
            "tcp": f"{host}:{port}",
            "unix": server.unix_address,
            "pid": os.getpid(),
        }))
        os.replace(tmp, ready)

    def _on_signal(signum, _frame):
        print(f"signal {signal.Signals(signum).name}: draining...", flush=True)
        server.request_shutdown(drain=True)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    server.serve_forever()
    print(f"repro serve stopped after {server.served} job(s)")
    return 0


def _parse_chaos_actions(specs) -> list:
    """``KIND@SECONDS[:MAGNITUDE]`` strings -> ChaosAction list."""
    from repro.chaos import ChaosAction
    from repro.errors import ReproError

    actions = []
    for text in specs:
        kind, sep, rest = text.partition("@")
        if not sep:
            raise ReproError(
                f"malformed --action {text!r}; expected "
                "KIND@SECONDS[:MAGNITUDE]"
            )
        at_s, _, mag_s = rest.partition(":")
        try:
            actions.append(ChaosAction(
                kind, at=float(at_s), magnitude=float(mag_s or 0),
            ))
        except ValueError:
            raise ReproError(
                f"malformed --action {text!r}; expected "
                "KIND@SECONDS[:MAGNITUDE]"
            ) from None
    return actions


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json as _json
    import shutil
    import tempfile
    from pathlib import Path

    from repro.chaos import ChaosCampaign, default_campaign, run_campaign

    if args.action:
        campaign = ChaosCampaign(
            seed=args.seed, name="cli",
            actions=tuple(_parse_chaos_actions(args.action)),
        )
    else:
        campaign = default_campaign(args.seed, span_s=args.span)
    keep_workdir = args.workdir is not None
    workdir = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    print(f"chaos: {campaign.describe()} [{campaign.campaign_hash[:12]}]")
    print(f"chaos: workdir {workdir}")
    report = run_campaign(
        campaign, workdir,
        jobs=args.jobs, tenants=args.tenants, workers=args.workers,
        scale=args.scale, sched_delay=args.sched_delay,
        drain_timeout=args.drain_timeout,
        repo_src=Path(__file__).resolve().parents[1],
    )
    for item in report.injected:
        detail = item.get("detail") or item.get("path", "")
        print(f"  t+{item['at']:5.2f}s  {item['kind']}: {detail}")
    print(
        f"chaos: {report.completed}/{report.jobs} jobs done across "
        f"{report.incarnations} daemon incarnation(s); "
        f"{report.recovered_jobs} recovered, "
        f"{report.retried_attempts} retried attempt(s) "
        f"({report.wall_time:.1f}s)"
    )
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(_json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"chaos: report written to {out}")
    if report.ok:
        print("chaos: all invariants held")
        if not keep_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        return 0
    for violation in report.violations:
        print(f"chaos: VIOLATION: {violation}")
    print(f"chaos: artifacts kept in {workdir}")
    return 1


def _serve_addr(args: argparse.Namespace) -> str:
    import os

    from repro.errors import ReproError
    from repro.serve import ADDR_ENV

    addr = args.connect or os.environ.get(ADDR_ENV)
    if not addr:
        raise ReproError(
            "no daemon address: pass --connect HOST:PORT (or unix:/path) "
            f"or set ${ADDR_ENV}"
        )
    return addr


def _print_job(job: dict) -> None:
    line = (
        f"job {job['id']} [{job['tenant']}] {job['label']} "
        f"-> {job['state']}"
    )
    if job.get("cached"):
        line += " (cached)"
    if job.get("error"):
        line += f": {job['error']}"
    print(line)
    metrics = job.get("metrics")
    if metrics:
        from repro.runtime.metrics import RunMetrics

        print(f"  {RunMetrics.from_dict(metrics).summary()}")


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.serve import TERMINAL_STATES, ServeClient
    from repro.sweep.spec import JobSpec

    spec = JobSpec(
        workload=args.workload, scheduler=args.scheduler,
        platform=args.platform, scale=args.scale, seed=args.seed,
        repetition=args.repetition,
        arrivals=_arrival_spec(args),
    )
    with ServeClient(_serve_addr(args), tenant=args.tenant) as client:
        if args.follow:
            stream = client.submit(
                spec, priority=args.priority, timeout=args.timeout,
                deadline=args.deadline, follow=True,
            )
            job = None
            for kind, doc in stream:
                if kind == "event":
                    ev = doc["event"]
                    detail = " ".join(
                        f"{k}={v}" for k, v in sorted(ev.items())
                        if k not in ("type", "time", "job", "tenant")
                    )
                    print(f"[{ev.get('time', 0.0):9.3f}s] "
                          f"{ev.get('type', '?'):<16} {detail}")
                else:
                    job = doc
        else:
            job = client.submit(
                spec, priority=args.priority, timeout=args.timeout,
                deadline=args.deadline,
            )
            if args.wait and job["state"] not in TERMINAL_STATES:
                job = client.wait(job["id"])
    _print_job(job)
    if args.output and job.get("metrics"):
        Path(args.output).write_text(_json.dumps(job, indent=1))
        print(f"job JSON -> {args.output}")
    return 0 if job["state"] in ("queued", "running", "done") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with ServeClient(_serve_addr(args), tenant=args.tenant) as client:
        if args.metrics:
            print(client.metrics()["prometheus"], end="")
            return 0
        payload = client.jobs(tenant=args.filter_tenant)
    depths = " ".join(
        f"{t}:{n}" for t, n in sorted(payload["depths"].items())
    ) or "-"
    print(f"daemon {payload['state']} | queued {payload['queued']} "
          f"(per tenant: {depths}) | running {payload['running']}")
    for job in payload["jobs"]:
        mark = "*" if job.get("cached") else " "
        elapsed = job.get("elapsed") or 0.0
        print(f"  {job['id']} {mark} {job['tenant']:<10} "
              f"{job['label']:<28} {job['state']:<9} {elapsed:8.3f}s")
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with ServeClient(_serve_addr(args), tenant=args.tenant) as client:
        job = client.cancel(args.job)
    _print_job(job)
    return 0


def _cmd_shutdown(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with ServeClient(_serve_addr(args), tenant=args.tenant) as client:
        result = client.shutdown(drain=not args.now)
    mode = "draining in-flight jobs" if result.get("draining") else "immediate"
    print(f"shutdown requested ({mode})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import Timeline
    from repro.runtime.executor import Executor
    from repro.schedulers.registry import make_scheduler, needs_suite
    from repro.sim.trace import Tracer
    from repro.workloads.registry import build_workload

    factory = _platform_factory(args)
    cfg = BenchConfig(
        platform_factory=factory, scale=args.scale, seed=args.seed
    )
    suite = cfg.suite() if needs_suite(args.scheduler) else None
    tracer = Tracer(categories=["activity-start", "activity-end", "freq-change"])
    ex = Executor(
        factory(), make_scheduler(args.scheduler, suite),
        seed=args.seed, tracer=tracer,
    )
    metrics = ex.run(build_workload(args.workload, scale=args.scale))
    timeline = Timeline.from_tracer(tracer)
    print(metrics.summary())
    print()
    print(timeline.render_ascii(width=args.width))
    if args.output:
        path = timeline.save(args.output)
        print(f"\ntimeline JSON -> {path}")
    if args.chrome:
        path = tracer.save_chrome_trace(args.chrome)
        print(f"\nChrome trace -> {path} "
              f"(open in Perfetto / chrome://tracing)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.models.training import fit_models, profile_and_fit
    from repro.profiling.dataset import ProfilingDataset
    from repro.profiling.profiler import PlatformProfiler

    factory = _platform_factory(args)
    if args.dataset:
        dataset = ProfilingDataset.load(args.dataset)
        print(f"loaded dataset: {len(dataset)} records from {args.dataset}")
        suite = fit_models(dataset)
    elif args.save_dataset:
        dataset = PlatformProfiler(factory, seed=args.seed).run()
        dataset.save(args.save_dataset)
        print(f"profiling dataset saved -> {args.save_dataset} "
              f"({len(dataset)} records)")
        suite = fit_models(dataset)
    else:
        suite = profile_and_fit(factory, seed=args.seed)
    print(f"platform: {suite.platform_name}")
    print(
        f"reference f_C={suite.f_c_ref} GHz, f_M={suite.f_m_ref} GHz, "
        f"sampling f_C'={suite.f_c_sample} GHz"
    )
    print("fitted <T_C, N_C> model sets:")
    for (cl, nc), cm in sorted(suite.models.items()):
        print(
            f"  <{cl}, {nc}>: perf rmse={cm.performance.train_rmse:.4f} "
            f"cpu rmse={cm.cpu_power.train_rmse:.4f} W "
            f"mem rmse={cm.mem_power.train_rmse:.4f} W"
        )
    problems = suite.self_check()
    if problems:
        print("self-check problems:")
        for pr in problems:
            print(f"  ! {pr}")
        return 1
    print("self-check: OK")
    if args.save_models:
        from repro.models.io import save_suite

        path = save_suite(suite, args.save_models)
        print(f"fitted models saved -> {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.comparison import compare_runs

    cfg = BenchConfig(
        platform_factory=_platform_factory(args),
        scale=args.scale, repetitions=args.repetitions, seed=args.seed,
    )
    a = bench_run((args.workload, args.scheduler[0]), config=cfg)
    b = bench_run((args.workload, args.scheduler[1]), config=cfg)
    cmp = compare_runs(a, b)
    print(f"{args.workload}: {a.scheduler} vs {b.scheduler}\n")
    print(cmp.render())
    print(
        f"\n{b.scheduler} uses {cmp.energy_ratio:.3f}x the energy and "
        f"{cmp.time_ratio:.3f}x the time of {a.scheduler}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.bench.report import format_table
    from repro.models.training import fit_models
    from repro.models.validation import kfold_validate, residual_report
    from repro.profiling.profiler import PlatformProfiler

    dataset = PlatformProfiler(_platform_factory(args), seed=args.seed).run()
    print(f"profiling dataset: {len(dataset)} records, "
          f"{len(dataset.kernel_names())} synthetic kernels")
    report = kfold_validate(dataset, k=args.folds, seed=args.seed)
    rows = [
        [f.fold, f.performance, f.cpu_power, f.mem_power]
        for f in report.folds
    ]
    print(f"\n{args.folds}-fold cross-validation (held-out kernel accuracy):")
    print(format_table(["fold", "performance", "cpu power", "mem power"], rows))
    for k, v in report.summary().items():
        print(f"  {k} = {v:.4f}")
    suite = fit_models(dataset)
    print("\ntraining residuals (RMSE):")
    res_rows = [
        [f"<{s.cluster}, {s.n_cores}>", s.performance_rmse,
         s.cpu_power_rmse, s.mem_power_rmse]
        for s in residual_report(suite)
    ]
    print(format_table(
        ["config", "perf (frac)", "cpu (W)", "mem (W)"], res_rows,
        float_fmt="{:.4f}",
    ))
    return 0


def _common_options(seed_default: int = 11) -> argparse.ArgumentParser:
    """The parent parser every experiment-running subcommand shares:
    ``--platform``, ``--seed``, ``-o/--out`` and the observability
    flags (``--events-out`` / ``--metrics-out``, handled in
    :func:`main` by installing a :func:`repro.observe` observer).

    Subcommands with a different seed default (profile/validate use 0)
    get their own parent instance — argparse ``parents`` shares action
    objects, so mutating a default via ``set_defaults`` on one child
    would leak into every sibling.
    """
    from repro.hw.platform import platform_names

    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("common options")
    g.add_argument("--platform", default="jetson-tx2",
                   choices=platform_names(),
                   help="simulated platform (default: jetson-tx2)")
    g.add_argument("--seed", type=int, default=seed_default,
                   help="base RNG seed (default: %(default)s)")
    g.add_argument("-o", "--out", "--output", dest="output", default=None,
                   metavar="PATH",
                   help="write the subcommand's artefact(s) to this path")
    g.add_argument("--events-out", default=None, metavar="PATH",
                   help="write a JSONL structured event log of every run")
    g.add_argument("--metrics-out", default=None, metavar="PATH",
                   help="write a Prometheus text metrics snapshot at exit")
    return parent


def _arrival_options() -> argparse.ArgumentParser:
    """Parent parser for the ``--arrivals`` flag family shared by
    ``run``/``sweep``/``submit`` (open arrival-driven workloads; see
    :mod:`repro.workloads.arrivals`)."""
    parent = argparse.ArgumentParser(add_help=False)
    g = parent.add_argument_group("open arrivals (default: closed system)")
    g.add_argument("--arrivals", default=None,
                   choices=("poisson", "bursty", "heavy"),
                   help="release DAG instances over simulated time with "
                        "this inter-arrival pattern instead of everything "
                        "at t=0")
    g.add_argument("--arrival-rate", type=float, default=50.0,
                   metavar="PER_S",
                   help="mean arrivals per simulated second "
                        "(default: %(default)s)")
    g.add_argument("--arrival-count", type=int, default=8, metavar="N",
                   help="DAG instances to release (default: %(default)s)")
    g.add_argument("--arrival-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="relative deadline of each instance; enables "
                        "deadline-miss/tardiness accounting")
    g.add_argument("--arrival-workloads", nargs="+", default=None,
                   metavar="NAME",
                   help="multi-tenant mix drawn per arrival (default: "
                        "the run's workload only)")
    g.add_argument("--arrival-seed", type=int, default=0,
                   help="seed of the arrival-time/mix RNG streams")
    return parent


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="JOSS (ICPP 2023) reproduction on a simulated Jetson TX2",
    )
    p.add_argument("--version", action="version", version=__version__)
    sub = p.add_subparsers(dest="command", required=True)
    common = _common_options()
    arrival = _arrival_options()
    # Separate instance for subcommands whose deterministic default seed
    # is 0 (profile/validate): parents share action objects, so a
    # set_defaults() on one child would leak into every sibling.
    common_seed0 = _common_options(seed_default=0)

    sub.add_parser("list", help="list workloads, schedulers, experiments")

    run_p = sub.add_parser(
        "run", parents=[common, arrival],
        help="run scheduler(s) on a workload",
    )
    run_p.add_argument(
        "names", nargs="*", metavar="NAME",
        help="workload and scheduler names in any order, case-insensitive "
             "(e.g. `run slu joss`); alternative to -w/-s",
    )
    run_p.add_argument("-w", "--workload", default=None, choices=workload_names())
    run_p.add_argument(
        "-s", "--scheduler", nargs="+", default=None,
        help=f"one or more of {scheduler_names()}",
    )
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--repetitions", type=int, default=2)
    run_p.add_argument(
        "--goal", default=None, metavar="GOAL",
        help="run the JOSS variant selecting for this goal (e.g. "
             "min-total-energy, maxp, perf-1.4x, powercap-4W, "
             "deadline-0.05s); appended to -s/--scheduler",
    )
    run_p.add_argument("-v", "--verbose", action="store_true",
                       help="print per-kernel configuration decisions")

    exp_p = sub.add_parser(
        "experiment", parents=[common], help="regenerate a paper artefact"
    )
    exp_p.add_argument("name", help=f"one of {list(ALL_EXPERIMENTS)} or 'all'")
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--repetitions", type=int, default=2)

    prof_p = sub.add_parser(
        "profile", parents=[common_seed0],
        help="characterise the platform, fit models",
    )
    prof_p.add_argument("--save-dataset", default=None,
                        help="write the raw profiling dataset to this JSON path")
    prof_p.add_argument("--dataset", default=None,
                        help="fit from a previously saved dataset instead of profiling")
    prof_p.add_argument("--save-models", default=None,
                        help="write the fitted model suite to this JSON path")

    trace_p = sub.add_parser(
        "trace", parents=[common],
        help="run once and render a per-core execution timeline",
    )
    trace_p.add_argument("-w", "--workload", required=True, choices=workload_names())
    trace_p.add_argument("-s", "--scheduler", default="JOSS")
    trace_p.add_argument("--scale", type=float, default=1.0)
    trace_p.add_argument("--width", type=int, default=100)
    trace_p.add_argument("--chrome", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON (Perfetto / "
                              "chrome://tracing) to this path")

    sweep_p = sub.add_parser(
        "sweep", parents=[common, arrival],
        help="run a (workload x scheduler x scale) grid, parallel + cached",
    )
    sweep_p.add_argument(
        "-w", "--workload", nargs="+", default=None, choices=workload_names(),
        help="workloads to sweep (default: all)",
    )
    sweep_p.add_argument(
        "-s", "--scheduler", nargs="+", default=list(_SWEEP_DEFAULT_SCHEDULERS),
        help=f"schedulers to sweep (default: {list(_SWEEP_DEFAULT_SCHEDULERS)})",
    )
    sweep_p.add_argument("--scale", type=float, nargs="+", default=[1.0])
    sweep_p.add_argument("--repetitions", type=int, default=2)
    sweep_p.add_argument("--workers", type=int, default=0,
                         help="worker processes (0/1 = serial in-process)")
    sweep_p.add_argument("--chunk-size", type=int, default=None,
                         help="jobs per pool task (default: auto-sized from "
                              "measured per-job cost; 1 = one future per job)")
    sweep_p.add_argument("--cold-pool", action="store_true",
                         help="fork a fresh single-use pool instead of "
                              "(re)using the process-wide warm pool")
    sweep_p.add_argument("--cache-dir", default=None,
                         help="result-cache root (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro/sweep)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="always execute; do not read or write the cache")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-job wall-time budget in seconds")
    sweep_p.add_argument("--retries", type=int, default=1,
                         help="extra attempts per failed job")
    sweep_p.add_argument("-q", "--quiet", action="store_true",
                         help="suppress per-job progress lines")

    faults_p = sub.add_parser(
        "faults", parents=[common],
        help="fault-injection campaign vs fault-free baseline "
             "(degradation report)",
    )
    faults_p.add_argument("-w", "--workload", default="fb",
                          choices=workload_names())
    faults_p.add_argument("-s", "--scheduler", default="JOSS",
                          help=f"one of {scheduler_names()}")
    faults_p.add_argument(
        "-m", "--models", nargs="+", default=None,
        help="fault models to run (default: all built-ins; see "
             "repro.faults.campaigns)",
    )
    faults_p.add_argument("--scale", type=float, default=1.0)
    faults_p.add_argument("--campaign-seed", type=int, default=0,
                          help="seed of the fault RNG streams")
    faults_p.add_argument("--cache-dir", default=None,
                          help="result-cache root (shared with `sweep`)")
    faults_p.add_argument("--no-cache", action="store_true")

    perf_p = sub.add_parser(
        "perf",
        help="run the hot-path microbenchmarks, emit BENCH_hotpath.json",
    )
    perf_p.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke mode)")
    perf_p.add_argument(
        "-b", "--benchmark", nargs="+", default=None,
        help="subset of benchmarks to run (default: all; see repro.perf)",
    )
    perf_p.add_argument("-o", "--output", default="BENCH_hotpath.json",
                        help="where to write the perf report JSON")
    perf_p.add_argument("--baseline", default=None,
                        help="recorded baseline report to compute speedups "
                             "against (and to gate on with --gate)")
    perf_p.add_argument("--gate", action="store_true",
                        help="fail (exit 1) if a gated benchmark regressed "
                             "beyond --max-regression vs --baseline")
    perf_p.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional regression for --gate "
                             "(default 0.30)")
    perf_p.add_argument("--gate-benchmark", nargs="+", default=None,
                        help="benchmarks to gate on (default: the standard "
                             "gated set that was actually run)")
    perf_p.add_argument("--profile", action="store_true",
                        help="run the selected benchmarks under cProfile "
                             "and emit a top-N hot-function report instead "
                             "of benchmark values")
    perf_p.add_argument("--profile-top", type=int, default=30,
                        help="functions to keep per ordering in the profile "
                             "report (default 30)")
    perf_p.add_argument("--profile-output", default="BENCH_profile.json",
                        help="where to write the profile JSON (a .txt "
                             "sibling is written alongside)")

    val_p = sub.add_parser(
        "validate", parents=[common_seed0],
        help="cross-validate the fitted models (k-fold)",
    )
    val_p.add_argument("--folds", type=int, default=5)

    cmp_p = sub.add_parser(
        "compare", parents=[common],
        help="run two schedulers on a workload and diff them",
    )
    cmp_p.add_argument("-w", "--workload", required=True, choices=workload_names())
    cmp_p.add_argument(
        "-s", "--scheduler", nargs=2, required=True,
        metavar=("BASELINE", "CANDIDATE"),
    )
    cmp_p.add_argument("--scale", type=float, default=1.0)
    cmp_p.add_argument("--repetitions", type=int, default=2)

    # -- the scheduling service (repro.serve) ---------------------------
    serve_p = sub.add_parser(
        "serve",
        help="run the scheduling daemon (line-delimited JSON-RPC; "
             "see docs/architecture.md, 'Service')",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="TCP port (default 0 = ephemeral; see "
                              "--ready-file)")
    serve_p.add_argument("--unix", default=None, metavar="PATH",
                         help="also bind a Unix-domain socket at PATH")
    serve_p.add_argument("--workers", type=int, default=0,
                         help="warm-pool worker processes (0/1 = execute "
                              "in-process on threads, streaming live "
                              "per-job events to followers)")
    serve_p.add_argument("--max-inflight", type=int, default=None,
                         help="concurrently executing jobs (default: "
                              "workers, or 2 in-process)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="result-cache root (shared with `sweep`)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="never answer submissions from the result cache")
    serve_p.add_argument("--idle-reap", type=float, default=300.0,
                         metavar="SECONDS",
                         help="reap the warm pool after this long idle "
                              "(default: %(default)s)")
    serve_p.add_argument("--quantum", type=float, default=1.0,
                         help="fair-queue round credit per tenant visit")
    serve_p.add_argument("--weight", nargs="+", default=None,
                         metavar="TENANT=W",
                         help="per-tenant fair-share weights "
                              "(e.g. --weight ci=2 dev=1)")
    serve_p.add_argument("--job-timeout", type=float, default=None,
                         help="default per-job wall-clock budget in seconds")
    serve_p.add_argument("--ready-file", default=None, metavar="PATH",
                         help="write the bound address as JSON once listening")
    serve_p.add_argument("--events-out", default=None, metavar="PATH",
                         help="JSONL log of daemon + job lifecycle events")
    serve_p.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="Prometheus snapshot written at daemon exit")
    dg = serve_p.add_argument_group("durability and overload protection")
    dg.add_argument("--journal", default=None, metavar="PATH",
                    help="write-ahead job journal (default: "
                         "<cache-root>/serve.journal)")
    dg.add_argument("--no-journal", action="store_true",
                    help="run without crash durability")
    dg.add_argument("--no-recover", action="store_true",
                    help="discard the journal's pending jobs at startup "
                         "instead of re-enqueuing them")
    dg.add_argument("--max-queue-depth", type=int, default=None,
                    help="shed submissions once this many jobs are queued")
    dg.add_argument("--max-tenant-depth", type=int, default=None,
                    help="per-tenant queued-job ceiling")
    dg.add_argument("--max-queued-cost", type=float, default=None,
                    metavar="SECONDS",
                    help="shed once the queue's estimated execution cost "
                         "exceeds this many seconds")
    dg.add_argument("--breaker-threshold", type=int, default=3,
                    help="consecutive pool failures that open the circuit "
                         "breaker (0 disables it)")
    dg.add_argument("--breaker-cooldown", type=float, default=5.0,
                    metavar="SECONDS",
                    help="how long an open breaker waits before probing")
    dg.add_argument("--breaker-shed", action="store_true",
                    help="reject new submissions while the breaker is open "
                         "(default: queue them)")

    chaos_p = sub.add_parser(
        "chaos",
        help="run a seeded chaos campaign against a real serve daemon",
        description="Start a throwaway `repro serve` daemon (journal on), "
                    "submit a multi-tenant job grid through resilient "
                    "clients, inject the campaign's faults — worker kills, "
                    "daemon SIGKILL + restart, severed sockets, corrupted "
                    "cache entries and journal tails — then drain and "
                    "verify the durability invariants. Exits non-zero if "
                    "any invariant is violated.",
    )
    chaos_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed (identical seeds replay "
                             "identical campaigns)")
    chaos_p.add_argument("--jobs", type=int, default=8,
                        help="jobs submitted across the tenants")
    chaos_p.add_argument("--tenants", type=int, default=3)
    chaos_p.add_argument("--workers", type=int, default=2,
                        help="daemon pool workers")
    chaos_p.add_argument("--scale", type=float, default=0.25,
                        help="workload scale factor for the chaos jobs")
    chaos_p.add_argument("--sched-delay", type=float, default=0.2,
                        metavar="SECONDS",
                        help="throttle the daemon scheduler loop so kills "
                             "land mid-flight (0 disables)")
    chaos_p.add_argument("--span", type=float, default=6.0,
                        help="seconds over which the default campaign's "
                             "actions are spread")
    chaos_p.add_argument("--drain-timeout", type=float, default=180.0,
                        help="give up if jobs are not done after this long")
    chaos_p.add_argument("--workdir", default=None, metavar="DIR",
                        help="campaign scratch directory (default: a fresh "
                             "temp dir, kept on failure)")
    chaos_p.add_argument("--action", action="append", default=None,
                        metavar="KIND@SECONDS[:MAGNITUDE]",
                        help="override the default campaign; repeatable "
                             "(e.g. --action kill-daemon@2 "
                             "--action corrupt-journal@4:64)")
    chaos_p.add_argument("--out", default=None, metavar="PATH",
                        help="write the campaign report as JSON")
    chaos_p.add_argument("--events-out", default=None, metavar="PATH",
                        help="JSONL log of injected chaos actions")

    client_common = argparse.ArgumentParser(add_help=False)
    cg = client_common.add_argument_group("daemon connection")
    cg.add_argument("-c", "--connect", default=None, metavar="ADDR",
                    help="daemon address: HOST:PORT, a bare port, or "
                         "unix:/path (default: $REPRO_SERVE_ADDR)")
    cg.add_argument("--tenant", default="default",
                    help="tenant identity for fair-share accounting")

    submit_p = sub.add_parser(
        "submit", parents=[common, client_common, arrival],
        help="submit one job to a running `repro serve` daemon",
    )
    submit_p.add_argument("workload", choices=workload_names())
    submit_p.add_argument("scheduler",
                          help=f"one of {scheduler_names()} (or a dynamic "
                               "JOSS variant)")
    submit_p.add_argument("--scale", type=float, default=1.0)
    submit_p.add_argument("--repetition", type=int, default=0)
    submit_p.add_argument("--priority", type=int, default=0,
                          help="higher runs earlier within your tenant share")
    submit_p.add_argument("--timeout", type=float, default=None,
                          help="per-job wall-clock budget in seconds")
    submit_p.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="scheduling deadline (seconds from "
                               "submission): earlier-deadline jobs of equal "
                               "priority leave your tenant's queue first")
    submit_p.add_argument("--follow", action="store_true",
                          help="stream the job's progress events until it "
                               "finishes")
    submit_p.add_argument("--wait", action="store_true",
                          help="poll until the job reaches a terminal state")

    jobs_p = sub.add_parser(
        "jobs", parents=[client_common],
        help="list the daemon's jobs and queue state",
    )
    jobs_p.add_argument("--metrics", action="store_true",
                        help="print the daemon's Prometheus metrics instead")
    jobs_p.add_argument("--filter-tenant", default=None, metavar="TENANT",
                        help="only show this tenant's jobs")

    cancel_p = sub.add_parser(
        "cancel", parents=[client_common], help="cancel a queued job"
    )
    cancel_p.add_argument("job", help="job id (e.g. j000003)")

    shutdown_p = sub.add_parser(
        "shutdown", parents=[client_common],
        help="ask the daemon to shut down",
    )
    shutdown_p.add_argument("--now", action="store_true",
                            help="cancel queued jobs instead of draining")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    from contextlib import nullcontext

    from repro.errors import ReproError

    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "experiment": _cmd_experiment,
        "profile": _cmd_profile,
        "validate": _cmd_validate,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "faults": _cmd_faults,
        "perf": _cmd_perf,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "cancel": _cmd_cancel,
        "shutdown": _cmd_shutdown,
    }
    events = getattr(args, "events_out", None)
    metrics = getattr(args, "metrics_out", None)
    scope = nullcontext()
    if events or metrics:
        from repro.obs import observe

        # Install a process-default observer: every Executor / sweep the
        # handler creates picks it up (repro.obs.api.current_observer).
        scope = observe(events=events, metrics=metrics)
    try:
        with scope:
            rc = handlers[args.command](args)
        if events:
            print(f"event log JSONL -> {events}")
        if metrics:
            print(f"metrics snapshot -> {metrics}")
        return rc
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
