"""Overload protection for the serve daemon.

Two independent mechanisms, both configured through
:class:`~repro.serve.server.ServeConfig`:

* :class:`AdmissionController` — bounded admission.  Each non-cached
  submission is checked against a global queue-depth cap, a per-tenant
  depth cap, and an estimated-queued-seconds cap (depth x the measured
  per-job cost, seeded from the warm pool's ``cost_hint`` probe from
  the sweep layer and refined by an EMA over served jobs).  A rejected
  submission gets a structured ``resource-exhausted`` error carrying
  ``retry_after`` — the estimated time for the backlog to clear one
  capacity's worth of work — instead of an unbounded queue and an
  eventual OOM.

* :class:`CircuitBreaker` — a three-state (closed / open / half-open)
  breaker around the execution substrate.  Consecutive substrate-level
  failures (broken pool, timeouts) trip it open; while open the
  scheduler stops dispatching (queued jobs wait; cache hits still
  serve; new submissions queue, or shed with ``retry_after`` when the
  shed policy is on).  After ``cooldown_s`` one probe job is let
  through (half-open): success re-closes the breaker, failure re-opens
  it for another cooldown.

Both are plain synchronous objects; the server serialises calls under
its own lock, so neither takes one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

#: Breaker states (also the ``breaker_*`` obs event suffixes).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: retry_after clamp: never tell a client "come back in 3 ms" (it will
#: hammer) or "come back in an hour" (it will leave).
_RETRY_AFTER_MIN = 0.05
_RETRY_AFTER_MAX = 60.0

#: Cost assumed for a job before any has been measured.
DEFAULT_COST_S = 0.5


@dataclass(frozen=True)
class Rejection:
    """Why a submission was shed, and when to come back."""

    reason: str
    retry_after: float
    #: Bounded slug for metric labels: ``global-depth`` |
    #: ``tenant-depth`` | ``queued-cost`` | ``breaker-open``.
    code: str = "global-depth"

    def message(self) -> str:
        return (
            f"submission shed ({self.reason}); "
            f"retry after {self.retry_after:.2f} s"
        )


class AdmissionController:
    """Bounded admission over queue depth and estimated queued cost."""

    def __init__(
        self,
        *,
        max_queue_depth: Optional[int] = None,
        max_tenant_depth: Optional[int] = None,
        max_queued_cost_s: Optional[float] = None,
        capacity: int = 1,
    ) -> None:
        self.max_queue_depth = max_queue_depth
        self.max_tenant_depth = max_tenant_depth
        self.max_queued_cost_s = max_queued_cost_s
        self.capacity = max(1, int(capacity))
        #: EMA of measured per-job wall cost; None until the first
        #: sample (then :data:`DEFAULT_COST_S` or the pool's hint is
        #: used for estimates).
        self._cost_ema: Optional[float] = None
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return (
            self.max_queue_depth is not None
            or self.max_tenant_depth is not None
            or self.max_queued_cost_s is not None
        )

    # -- cost estimation ------------------------------------------------
    def observe_cost(self, elapsed: float) -> None:
        """Feed one executed job's wall time into the cost estimate."""
        if elapsed <= 0:
            return
        if self._cost_ema is None:
            self._cost_ema = elapsed
        else:
            self._cost_ema = 0.8 * self._cost_ema + 0.2 * elapsed

    def seed_cost(self, hint: Optional[float]) -> None:
        """Adopt the warm pool's measured per-job cost probe, if any."""
        if hint is not None and hint > 0 and self._cost_ema is None:
            self._cost_ema = float(hint)

    @property
    def est_cost_s(self) -> float:
        return self._cost_ema if self._cost_ema else DEFAULT_COST_S

    def retry_after(self, depth: int) -> float:
        """Estimated time for one capacity's worth of backlog to clear."""
        est = self.est_cost_s * max(1, depth) / self.capacity
        return min(_RETRY_AFTER_MAX, max(_RETRY_AFTER_MIN, est))

    # -- the check ------------------------------------------------------
    def check(self, tenant: str, depth: int,
              depths: Mapping[str, int]) -> Optional[Rejection]:
        """``None`` to admit, a :class:`Rejection` to shed.

        ``depth`` is the global queued-job count, ``depths`` the live
        per-tenant split (both pre-admission).
        """
        if self.max_queue_depth is not None and depth >= self.max_queue_depth:
            self.rejected += 1
            return Rejection(
                f"queue depth {depth} at global limit {self.max_queue_depth}",
                self.retry_after(depth),
                code="global-depth",
            )
        tenant_depth = depths.get(tenant, 0)
        if (
            self.max_tenant_depth is not None
            and tenant_depth >= self.max_tenant_depth
        ):
            self.rejected += 1
            return Rejection(
                f"tenant {tenant!r} depth {tenant_depth} at per-tenant "
                f"limit {self.max_tenant_depth}",
                self.retry_after(tenant_depth),
                code="tenant-depth",
            )
        if self.max_queued_cost_s is not None:
            queued_cost = depth * self.est_cost_s
            if queued_cost >= self.max_queued_cost_s:
                self.rejected += 1
                return Rejection(
                    f"estimated queued work {queued_cost:.1f} s at limit "
                    f"{self.max_queued_cost_s:g} s",
                    self.retry_after(depth),
                    code="queued-cost",
                )
        return None


class CircuitBreaker:
    """Closed / open / half-open breaker over consecutive failures."""

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        #: ``threshold <= 0`` disables the breaker entirely.
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._on_transition = on_transition
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probe_inflight = False
        self.trips = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def _transition(self, new: str) -> None:
        old, self.state = self.state, new
        if old != new and self._on_transition is not None:
            self._on_transition(old, new)

    # -- dispatch gate --------------------------------------------------
    def allow(self) -> bool:
        """May the scheduler dispatch a job right now?

        In ``open``, returns False until ``cooldown_s`` has elapsed,
        then transitions to ``half_open`` and admits exactly one probe
        job until its outcome is recorded.
        """
        if not self.enabled or self.state == CLOSED:
            return True
        if self.state == OPEN:
            if (
                self.opened_at is not None
                and self._clock() - self.opened_at >= self.cooldown_s
            ):
                self._transition(HALF_OPEN)
                self._probe_inflight = False
            else:
                return False
        # half-open: one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def retry_after(self) -> float:
        """Seconds until the next probe is due (shed-policy hint)."""
        if self.state != OPEN or self.opened_at is None:
            return _RETRY_AFTER_MIN
        remaining = self.cooldown_s - (self._clock() - self.opened_at)
        return max(_RETRY_AFTER_MIN, remaining)

    # -- outcome feedback -----------------------------------------------
    def release_probe(self) -> None:
        """A dispatched job ended without a substrate verdict
        (cancelled, job-scoped error): free the half-open probe slot
        without moving the failure count."""
        self._probe_inflight = False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        if not self.enabled:
            return
        self.consecutive_failures += 1
        self._probe_inflight = False
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.opened_at = self._clock()
            self.trips += 1
            self._transition(OPEN)
        elif self.state == OPEN:
            # Late failures from jobs already in flight when the
            # breaker tripped: push the probe window out.
            self.opened_at = self._clock()
