"""Client library for the repro scheduling service.

:class:`ServeClient` speaks the line-delimited JSON-RPC protocol of
:mod:`repro.serve.server` over TCP or a Unix-domain socket::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1:7341", tenant="team-a") as c:
        job = c.submit(spec)                      # fire and forget
        done = c.wait(job["id"])                  # poll to terminal
        for msg in c.submit(spec2, follow=True):  # stream progress
            ...                                   # events, then the job

Each client owns one connection and is **not** thread-safe; open one
client per thread (the daemon happily accepts many connections).
Addresses: ``host:port``, a bare port, or ``unix:/path/to.sock``.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Iterator, Mapping, Optional, Union

from repro.errors import ServeError
from repro.serve import protocol
from repro.sweep.spec import JobSpec

#: Environment variable naming the default daemon address for the CLI.
ADDR_ENV = "REPRO_SERVE_ADDR"


def parse_address(address: str) -> tuple[str, Any]:
    """``host:port`` / ``:port`` / ``port`` / ``unix:/path`` ->
    ``("tcp", (host, port))`` or ``("unix", path)``."""
    address = address.strip()
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ServeError("empty unix socket path in address")
        return "unix", path
    if ":" in address:
        host, _, port = address.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port = "127.0.0.1", address
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ServeError(
            f"malformed serve address {address!r}; expected host:port, "
            "a bare port, or unix:/path/to.sock"
        ) from None


class FollowStream:
    """Iterator over a followed submission: yields ``("event", doc)``
    for each streamed notification, then ``("job", job_dict)`` once,
    when the job reaches a terminal state."""

    def __init__(self, client: "ServeClient", req_id: int) -> None:
        self._client = client
        self._req_id = req_id
        self.job: Optional[dict] = None

    def __iter__(self) -> Iterator[tuple[str, dict]]:
        while self.job is None:
            doc = self._client._read_doc()
            if protocol.is_event(doc):
                yield "event", doc
            elif doc.get("id") == self._req_id:
                self.job = protocol.result_or_raise(doc)
                yield "job", self.job
            # Stray responses for other ids are impossible on a
            # single-threaded connection; drop them defensively.

    def result(self) -> dict:
        """Drain the stream and return the terminal job dict."""
        for _ in self:
            pass
        assert self.job is not None
        return self.job


class ServeClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(self, address: str, *, tenant: str = protocol.DEFAULT_TENANT,
                 timeout: Optional[float] = 60.0) -> None:
        self.address = address
        self.tenant = tenant
        kind, target = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(target)
        else:
            self._sock = socket.create_connection(target, timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing -------------------------------------------------------
    def _read_doc(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ServeError(
                f"connection to {self.address} closed by the daemon"
            )
        return protocol.decode_line(line)

    def _send(self, doc: Mapping[str, Any]) -> None:
        self._sock.sendall(protocol.encode_line(doc))

    def _rpc(self, method: str, params: Optional[dict] = None) -> dict:
        self._next_id += 1
        self._send(protocol.make_request(
            self._next_id, method, params, tenant=self.tenant
        ))
        while True:
            doc = self._read_doc()
            if protocol.is_event(doc):
                continue  # late events from an abandoned follow
            return protocol.result_or_raise(doc)

    # -- RPC surface ----------------------------------------------------
    def ping(self) -> dict:
        return self._rpc("ping")

    def submit(
        self,
        spec: Union[JobSpec, Mapping[str, Any]],
        *,
        priority: int = 0,
        timeout: Optional[float] = None,
        follow: bool = False,
        follow_types: Optional[list] = None,
    ) -> Union[dict, FollowStream]:
        """Submit one job.

        Plain submission returns the job dict immediately (state
        ``queued``, or ``done`` with ``metrics`` attached when answered
        from the cache).  ``follow=True`` returns a
        :class:`FollowStream` that yields progress events and finally
        the terminal job dict — the connection is dedicated to the
        stream until then.
        """
        spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        params: dict = {"job": spec_dict, "priority": priority}
        if timeout is not None:
            params["timeout"] = timeout
        if follow:
            params["follow"] = True
            if follow_types:
                params["follow_types"] = list(follow_types)
            self._next_id += 1
            self._send(protocol.make_request(
                self._next_id, "submit", params, tenant=self.tenant
            ))
            return FollowStream(self, self._next_id)
        return self._rpc("submit", params)

    def status(self, job_id: str, *, result: bool = True) -> dict:
        return self._rpc("status", {"job": job_id, "result": result})

    def jobs(self, tenant: Optional[str] = None) -> dict:
        params = {"tenant": tenant} if tenant else {}
        return self._rpc("jobs", params)

    def cancel(self, job_id: str) -> dict:
        return self._rpc("cancel", {"job": job_id})

    def metrics(self) -> dict:
        return self._rpc("metrics")

    def shutdown(self, drain: bool = True) -> dict:
        return self._rpc("shutdown", {"drain": drain})

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> dict:
        """Poll ``status`` until the job is terminal; returns the job."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in protocol.TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job['state']} after {timeout:g} s"
                )
            time.sleep(poll_s)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
