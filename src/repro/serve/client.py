"""Client library for the repro scheduling service.

:class:`ServeClient` speaks the line-delimited JSON-RPC protocol of
:mod:`repro.serve.server` over TCP or a Unix-domain socket::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1:7341", tenant="team-a") as c:
        job = c.submit(spec)                      # fire and forget
        done = c.wait(job["id"])                  # poll to terminal
        for msg in c.submit(spec2, follow=True):  # stream progress
            ...                                   # events, then the job

Each client owns one connection and is **not** thread-safe; open one
client per thread (the daemon happily accepts many connections).
Addresses: ``host:port``, a bare port, or ``unix:/path/to.sock``.

Resilience (``retries > 0``): when the connection drops mid-RPC the
client reconnects with jittered exponential backoff and re-sends the
request — but only requests that are safe to replay.  Reads (``ping``,
``status``, ``jobs``, ``metrics``) always are; ``submit`` is replayed
only under an ``idempotency_key`` (auto-generated per submission when
retries are enabled), which the daemon uses to answer the retry from
the original job instead of running it twice.  ``cancel`` /
``shutdown`` and ``follow=True`` streams are never replayed.
"""

from __future__ import annotations

import random
import socket
import time
import uuid
from typing import Any, Iterator, Mapping, Optional, Union

from repro.errors import ServeError
from repro.serve import protocol
from repro.sweep.spec import JobSpec

#: Environment variable naming the default daemon address for the CLI.
ADDR_ENV = "REPRO_SERVE_ADDR"


def parse_address(address: str) -> tuple[str, Any]:
    """``host:port`` / ``:port`` / ``port`` / ``unix:/path`` ->
    ``("tcp", (host, port))`` or ``("unix", path)``."""
    address = address.strip()
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ServeError("empty unix socket path in address")
        return "unix", path
    if ":" in address:
        host, _, port = address.rpartition(":")
        host = host or "127.0.0.1"
    else:
        host, port = "127.0.0.1", address
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ServeError(
            f"malformed serve address {address!r}; expected host:port, "
            "a bare port, or unix:/path/to.sock"
        ) from None


class FollowStream:
    """Iterator over a followed submission: yields ``("event", doc)``
    for each streamed notification, then ``("job", job_dict)`` once,
    when the job reaches a terminal state."""

    def __init__(self, client: "ServeClient", req_id: int) -> None:
        self._client = client
        self._req_id = req_id
        self.job: Optional[dict] = None

    def __iter__(self) -> Iterator[tuple[str, dict]]:
        while self.job is None:
            doc = self._client._read_doc()
            if protocol.is_event(doc):
                yield "event", doc
            elif doc.get("id") == self._req_id:
                self.job = protocol.result_or_raise(doc)
                yield "job", self.job
            # Stray responses for other ids are impossible on a
            # single-threaded connection; drop them defensively.

    def result(self) -> dict:
        """Drain the stream and return the terminal job dict."""
        for _ in self:
            pass
        assert self.job is not None
        return self.job


class ServeClient:
    """One connection to a running ``repro serve`` daemon."""

    def __init__(self, address: str, *, tenant: str = protocol.DEFAULT_TENANT,
                 timeout: Optional[float] = 60.0, retries: int = 0,
                 backoff_s: float = 0.2, backoff_max_s: float = 5.0,
                 rng: Optional[random.Random] = None) -> None:
        self.address = address
        self.tenant = tenant
        self.timeout = timeout
        #: Reconnect-and-resend attempts per replayable RPC (0 = fail
        #: fast on the first connection error, the pre-resilience
        #: behaviour).
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self._rng = rng if rng is not None else random.Random()
        self._next_id = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    # -- plumbing -------------------------------------------------------
    def _connect(self) -> None:
        kind, target = parse_address(self.address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=self.timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _drop_connection(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _backoff(self, attempt: int) -> None:
        """Jittered exponential backoff before reconnect ``attempt``."""
        base = min(self.backoff_max_s, self.backoff_s * (2 ** attempt))
        time.sleep(base * (0.5 + self._rng.random()))

    def _read_doc(self) -> dict:
        line = self._reader.readline()
        if not line:
            raise ServeError(
                f"connection to {self.address} closed by the daemon"
            )
        return protocol.decode_line(line)

    def _send(self, doc: Mapping[str, Any]) -> None:
        self._sock.sendall(protocol.encode_line(doc))

    def _rpc_once(self, method: str, params: Optional[dict]) -> dict:
        self._next_id += 1
        self._send(protocol.make_request(
            self._next_id, method, params, tenant=self.tenant
        ))
        while True:
            doc = self._read_doc()
            if protocol.is_event(doc):
                continue  # late events from an abandoned follow
            return protocol.result_or_raise(doc)

    def _rpc(self, method: str, params: Optional[dict] = None,
             replayable: Optional[bool] = None) -> dict:
        """One request/response round, reconnecting when safe.

        Retries cover connection-level failures only (reset, dropped
        socket, refused reconnect) — a structured error reply from the
        daemon always surfaces immediately.
        """
        if replayable is None:
            replayable = method in {"ping", "status", "jobs", "metrics"}
        attempts = self.retries if replayable else 0
        for attempt in range(attempts + 1):
            try:
                if self._sock is None:
                    self._connect()
                return self._rpc_once(method, params)
            except protocol.ProtocolError:
                raise  # daemon replied; never replay
            except (ServeError, OSError):
                self._drop_connection()
                if attempt >= attempts:
                    raise
                self._backoff(attempt)
        raise AssertionError("unreachable")

    # -- RPC surface ----------------------------------------------------
    def ping(self) -> dict:
        return self._rpc("ping")

    def submit(
        self,
        spec: Union[JobSpec, Mapping[str, Any]],
        *,
        priority: int = 0,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        follow: bool = False,
        follow_types: Optional[list] = None,
        idempotency_key: Optional[str] = None,
    ) -> Union[dict, FollowStream]:
        """Submit one job.

        ``deadline`` (seconds from submission) is a scheduling hint:
        among this tenant's equal-priority jobs, the daemon's fair
        queue releases earlier-deadline jobs first.  It does not cancel
        late jobs — pass ``timeout`` for a hard execution limit.

        Plain submission returns the job dict immediately (state
        ``queued``, or ``done`` with ``metrics`` attached when answered
        from the cache).  ``follow=True`` returns a
        :class:`FollowStream` that yields progress events and finally
        the terminal job dict — the connection is dedicated to the
        stream until then, and is never retried.

        ``idempotency_key`` makes the submission replay-safe: the
        daemon answers a duplicate key from the original job instead of
        running it again.  When the client was built with
        ``retries > 0`` a key is auto-generated per submission, so a
        resend after a dropped connection cannot double-run the job.
        """
        spec_dict = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        params: dict = {"job": spec_dict, "priority": priority}
        if timeout is not None:
            params["timeout"] = timeout
        if deadline is not None:
            params["deadline"] = deadline
        if idempotency_key is None and self.retries > 0 and not follow:
            idempotency_key = uuid.uuid4().hex
        if idempotency_key is not None:
            params["idempotency_key"] = idempotency_key
        if follow:
            params["follow"] = True
            if follow_types:
                params["follow_types"] = list(follow_types)
            self._next_id += 1
            self._send(protocol.make_request(
                self._next_id, "submit", params, tenant=self.tenant
            ))
            return FollowStream(self, self._next_id)
        return self._rpc(
            "submit", params, replayable=idempotency_key is not None
        )

    def status(self, job_id: str, *, result: bool = True) -> dict:
        return self._rpc("status", {"job": job_id, "result": result})

    def jobs(self, tenant: Optional[str] = None) -> dict:
        params = {"tenant": tenant} if tenant else {}
        return self._rpc("jobs", params)

    def cancel(self, job_id: str) -> dict:
        return self._rpc("cancel", {"job": job_id})

    def metrics(self) -> dict:
        return self._rpc("metrics")

    def shutdown(self, drain: bool = True) -> dict:
        return self._rpc("shutdown", {"drain": drain})

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.05) -> dict:
        """Poll ``status`` until the job is terminal; returns the job."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in protocol.TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job['state']} after {timeout:g} s"
                )
            time.sleep(poll_s)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
