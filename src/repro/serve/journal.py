"""Crash-safe write-ahead job journal for the serve daemon.

The daemon's job table lives in memory; a crash (SIGKILL, OOM, power
loss) would otherwise silently drop every acknowledged-but-unfinished
submission.  :class:`JobJournal` is the durability layer underneath
:class:`~repro.serve.server.Server`:

* every accepted submission is **appended before it is enqueued** (and
  before the client's acknowledgement is sent) as a length+CRC framed,
  fsync'd record — so an ack implies the job survives a crash;
* every terminal transition appends a ``final`` record, so replay can
  tell finished work from work that must re-run;
* :meth:`replay` reads the journal back at startup, **truncating a torn
  tail** (a record half-written at the instant of the crash) instead of
  refusing to start, and returns the records in append order;
* :meth:`compact` atomically rewrites the journal down to its live set
  (non-terminal submissions plus the idempotency index), bounding file
  growth across restarts.

Framing: the file starts with a 4-byte magic; each record is
``<u32 payload-length> <u32 crc32(payload)> <payload>`` with the
payload a UTF-8 JSON object.  A record is valid only if its full frame
is present *and* the CRC matches — anything else is a torn tail by
definition (appends are sequential), never a mid-file hole.

Record shapes (the ``"t"`` field discriminates):

``{"t": "submit", "job", "tenant", "priority", "timeout", "idem",
"spec": {...}}``
    one accepted submission (``idem`` may be ``None``);

``{"t": "final", "job", "state", "kind", "error", "hash", "elapsed"}``
    the job reached a terminal state (its result, if any, lives in the
    result cache under ``hash`` — the journal never stores metrics);

``{"t": "idem", "key", "job", "hash", "state"}``
    compaction artifact: a terminal job's idempotency-key binding,
    kept so a duplicate resubmission after a restart is answered from
    the cache instead of re-executed.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import ServeError

#: File magic; bump the digit when the framing itself changes.
MAGIC = b"RJJ1"

_HEAD = struct.Struct("<II")  # payload length, crc32(payload)

#: Sanity cap on a single record (a length field beyond this is treated
#: as tail corruption, not an attempt to allocate gigabytes).
MAX_RECORD_BYTES = 16 * 1024 * 1024


@dataclass
class ReplayResult:
    """What :meth:`JobJournal.replay` found on disk."""

    records: list[dict]
    #: Bytes of torn tail that were truncated away (0 = clean file).
    torn_bytes: int
    #: Journal size after truncation.
    size: int


class JobJournal:
    """Append-only, CRC-framed, fsync'd record log (thread-safe)."""

    def __init__(self, path: str | Path, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._fh: Optional[object] = None
        self.appended = 0

    # -- lifecycle ------------------------------------------------------
    def open(self) -> "JobJournal":
        """Open for appending, creating the file (and magic) if absent."""
        with self._lock:
            if self._fh is not None:
                return self
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "ab")
            if fresh:
                self._fh.write(MAGIC)
                self._flush_locked()
        return self

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                finally:
                    self._fh = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    # -- appending ------------------------------------------------------
    def append(self, record: dict) -> None:
        """Durably append one record (frames, flushes, fsyncs)."""
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _HEAD.pack(len(payload), zlib.crc32(payload)) + payload
        with self._lock:
            if self._fh is None:
                raise ServeError(f"journal {self.path} is not open")
            self._fh.write(frame)
            self._flush_locked()
            self.appended += 1

    def _flush_locked(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    # -- replay ---------------------------------------------------------
    def replay(self, truncate: bool = True) -> ReplayResult:
        """Read every valid record back; truncate any torn tail.

        Safe on a missing or empty file (returns no records).  A file
        that does not even hold the magic is treated as fully torn.
        Must not be called while the journal is open for appending.
        """
        if self.is_open:
            raise ServeError("cannot replay a journal that is open for append")
        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return ReplayResult([], 0, 0)
        records: list[dict] = []
        good = 0
        if blob[: len(MAGIC)] == MAGIC:
            good = len(MAGIC)
            off = good
            while True:
                head = blob[off: off + _HEAD.size]
                if len(head) < _HEAD.size:
                    break
                length, crc = _HEAD.unpack(head)
                if length > MAX_RECORD_BYTES:
                    break
                payload = blob[off + _HEAD.size: off + _HEAD.size + length]
                if len(payload) < length or zlib.crc32(payload) != crc:
                    break
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break
                if not isinstance(record, dict):
                    break
                records.append(record)
                off += _HEAD.size + length
                good = off
        torn = len(blob) - good
        if torn and truncate:
            with open(self.path, "r+b" if good else "wb") as fh:
                fh.truncate(good)
                if good == 0:
                    fh.write(MAGIC)
                    good = len(MAGIC)
                fh.flush()
                os.fsync(fh.fileno())
        return ReplayResult(records, torn, good)

    # -- compaction -----------------------------------------------------
    def compact(self, live_records: Iterable[dict]) -> int:
        """Atomically rewrite the journal to exactly ``live_records``.

        Writes a fresh framed file beside the journal, fsyncs it, then
        ``os.replace``s it into place — a crash mid-compaction leaves
        the old journal intact.  Reopens for appending if the journal
        was open.  Returns the number of records kept.
        """
        with self._lock:
            was_open = self._fh is not None
            if was_open:
                self._fh.close()
                self._fh = None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            kept = 0
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, suffix=".journal.tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(MAGIC)
                    for record in live_records:
                        payload = json.dumps(
                            record, separators=(",", ":")
                        ).encode("utf-8")
                        fh.write(
                            _HEAD.pack(len(payload), zlib.crc32(payload))
                            + payload
                        )
                        kept += 1
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            finally:
                if was_open:
                    self._fh = open(self.path, "ab")
            return kept


# ----------------------------------------------------------------------
# Record constructors / replay interpretation
# ----------------------------------------------------------------------
def submit_record(job_id: str, tenant: str, spec_dict: dict, priority: int,
                  timeout: Optional[float], idem: Optional[str],
                  deadline: Optional[float] = None) -> dict:
    rec = {
        "t": "submit", "job": job_id, "tenant": tenant, "spec": spec_dict,
        "priority": priority, "timeout": timeout, "idem": idem,
    }
    if deadline is not None:
        # Scheduling deadline, kept as seconds-from-submission so the
        # budget survives a restart (the daemon clock resets); absent
        # for deadline-less jobs to stay readable by older replayers.
        rec["deadline"] = deadline
    return rec


def final_record(job_id: str, state: str, kind: Optional[str],
                 error: Optional[str], job_hash: str,
                 elapsed: float) -> dict:
    return {
        "t": "final", "job": job_id, "state": state, "kind": kind,
        "error": error, "hash": job_hash, "elapsed": elapsed,
    }


def idem_record(key: str, job_id: str, job_hash: str, state: str) -> dict:
    return {"t": "idem", "key": key, "job": job_id, "hash": job_hash,
            "state": state}


@dataclass
class RecoveredState:
    """The journal interpreted: what must re-run, what is settled."""

    #: Non-terminal submissions in original append (= admission) order.
    pending: list[dict]
    #: job id -> final record, for submissions that reached a terminal
    #: state before the crash.
    finished: dict[str, dict]
    #: idempotency key -> ``{"job", "hash", "state"}`` for settled keys.
    idem: dict[str, dict]
    #: Highest numeric job id seen (``j000042`` -> 42); the restarted
    #: daemon continues above it so ids never collide across lives.
    max_seq: int


def interpret(records: Iterable[dict]) -> RecoveredState:
    """Fold replayed records into the state a restarting daemon needs."""
    submits: dict[str, dict] = {}
    order: list[str] = []
    finished: dict[str, dict] = {}
    idem: dict[str, dict] = {}
    max_seq = 0
    for record in records:
        t = record.get("t")
        job_id = record.get("job")
        if isinstance(job_id, str) and job_id[:1] == "j":
            try:
                max_seq = max(max_seq, int(job_id[1:]))
            except ValueError:
                pass
        if t == "submit" and isinstance(job_id, str):
            if job_id not in submits:
                order.append(job_id)
            submits[job_id] = record
        elif t == "final" and isinstance(job_id, str):
            finished[job_id] = record
            src = submits.get(job_id)
            key = src.get("idem") if src else None
            if key:
                idem[key] = {
                    "job": job_id,
                    "hash": record.get("hash", ""),
                    "state": record.get("state", ""),
                }
        elif t == "idem" and isinstance(record.get("key"), str):
            idem[record["key"]] = {
                "job": record.get("job", ""),
                "hash": record.get("hash", ""),
                "state": record.get("state", ""),
            }
    pending = [submits[j] for j in order if j not in finished]
    return RecoveredState(pending, finished, idem, max_seq)
