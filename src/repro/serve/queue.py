"""Weighted-fair multi-tenant job queue (deficit round robin).

The serve daemon multiplexes many tenants over one worker pool; a
plain FIFO would let one heavy tenant's burst starve everyone behind
it.  :class:`FairQueue` implements deficit round robin (Shreedhar &
Varghese) over per-tenant priority queues:

* each *active* tenant (one with queued work) is visited in round-robin
  order and earns ``quantum * weight`` credits per visit;
* a job is released when its tenant's accumulated deficit covers the
  job's ``cost`` (1.0 by default), and the cost is charged against the
  deficit — so over any window, tenants drain in proportion to their
  weights regardless of how unbalanced their submission rates are;
* a tenant that goes idle forfeits its unspent deficit: credits cannot
  be hoarded to bulldoze the queue later;
* **within** one tenant's share, higher ``priority`` jobs pop first;
  among equal priorities, jobs carrying an (absolute, wall-clock)
  ``deadline`` pop earliest-deadline-first ahead of deadline-less ones,
  and FIFO breaks the remaining ties.  Priorities and deadlines never
  cross tenant boundaries — a tenant cannot out-prioritise or
  out-deadline another tenant's share.

The queue is deterministic and lock-free by design; callers that need
thread safety (the server) serialise access externally.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Iterator, Mapping, Optional

from repro.errors import ServeError


_NO_DEADLINE = float("inf")


class Entry:
    """One queued item; the handle used to cancel it in place."""

    __slots__ = ("item", "tenant", "priority", "cost", "seq", "alive",
                 "deadline")

    def __init__(self, item: Any, tenant: str, priority: int, cost: float,
                 seq: int, deadline: Optional[float] = None) -> None:
        self.item = item
        self.tenant = tenant
        self.priority = priority
        self.cost = cost
        self.seq = seq
        self.alive = True
        self.deadline = deadline

    def __lt__(self, other: "Entry") -> bool:
        # Max-priority first, then earliest deadline (deadline-less
        # jobs sort last), then submission order.
        if self.priority != other.priority:
            return self.priority > other.priority
        mine = self.deadline if self.deadline is not None else _NO_DEADLINE
        theirs = other.deadline if other.deadline is not None else _NO_DEADLINE
        if mine != theirs:
            return mine < theirs
        return self.seq < other.seq


class _Tenant:
    __slots__ = ("name", "weight", "heap", "deficit", "active")

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.heap: list[Entry] = []
        self.deficit = 0.0
        self.active = False

    def drop_dead(self) -> None:
        while self.heap and not self.heap[0].alive:
            heapq.heappop(self.heap)


class FairQueue:
    """Deficit-round-robin queue across tenants, priorities within."""

    def __init__(
        self,
        quantum: float = 1.0,
        default_weight: float = 1.0,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if quantum <= 0:
            raise ServeError("FairQueue quantum must be > 0")
        if default_weight <= 0:
            raise ServeError("FairQueue default_weight must be > 0")
        self.quantum = quantum
        self.default_weight = default_weight
        self._weights = dict(weights or {})
        for tenant, w in self._weights.items():
            if w <= 0:
                raise ServeError(f"tenant {tenant!r} weight must be > 0")
        self._tenants: dict[str, _Tenant] = {}
        self._active: deque[_Tenant] = deque()
        self._seq = 0
        self._len = 0

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def depths(self) -> dict[str, int]:
        """Live queued-job count per tenant (zero-depth tenants omitted)."""
        out = {}
        for t in self._tenants.values():
            n = sum(1 for e in t.heap if e.alive)
            if n:
                out[t.name] = n
        return out

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ServeError(f"tenant {tenant!r} weight must be > 0")
        self._weights[tenant] = weight
        if tenant in self._tenants:
            self._tenants[tenant].weight = weight

    # -- mutation -------------------------------------------------------
    def push(self, item: Any, *, tenant: str = "default", priority: int = 0,
             cost: float = 1.0, deadline: Optional[float] = None) -> Entry:
        """Queue ``item`` under ``tenant``; returns its cancel handle.
        ``deadline`` (absolute wall-clock seconds) orders jobs of equal
        priority earliest-first within the tenant's share."""
        if cost <= 0:
            raise ServeError("job cost must be > 0")
        t = self._tenants.get(tenant)
        if t is None:
            t = self._tenants[tenant] = _Tenant(
                tenant, self._weights.get(tenant, self.default_weight)
            )
        self._seq += 1
        entry = Entry(item, tenant, priority, cost, self._seq, deadline)
        heapq.heappush(t.heap, entry)
        if not t.active:
            # (Re)activating a tenant resets its deficit: an idle spell
            # must not bank credits.
            t.deficit = 0.0
            t.active = True
            self._active.append(t)
        self._len += 1
        return entry

    def cancel(self, entry: Entry) -> bool:
        """Remove a queued entry in place (lazy deletion).  Returns
        whether the entry was still queued."""
        if not entry.alive:
            return False
        entry.alive = False
        self._len -= 1
        return True

    def pop(self) -> Optional[Entry]:
        """Release the next job per DRR, or ``None`` if the queue is empty.

        Terminates because every full rotation of the active list adds
        ``quantum * weight > 0`` deficit to each non-empty tenant, so
        some tenant's deficit eventually covers its head-of-line cost.
        """
        while self._active:
            t = self._active[0]
            t.drop_dead()
            if not t.heap:
                self._active.popleft()
                t.active = False
                t.deficit = 0.0
                continue
            head = t.heap[0]
            if t.deficit >= head.cost:
                heapq.heappop(t.heap)
                t.deficit -= head.cost
                self._len -= 1
                t.drop_dead()
                if not t.heap:
                    self._active.popleft()
                    t.active = False
                    t.deficit = 0.0
                return head
            t.deficit += self.quantum * t.weight
            self._active.rotate(-1)
        return None

    def drain(self) -> Iterator[Entry]:
        """Pop everything still queued (shutdown-time cancellation)."""
        while True:
            entry = self.pop()
            if entry is None:
                return
            yield entry
