"""repro.serve — a long-lived scheduling service with an async job API.

``repro serve`` turns the execution substrate built by the sweep layer
(warm worker pool, content-addressed result cache, fitted-suite
snapshots) into a daemon: clients submit :class:`~repro.sweep.spec.
JobSpec` jobs over line-delimited JSON-RPC (localhost TCP or a Unix
socket), a deficit-round-robin :class:`FairQueue` arbitrates between
tenants, and followers tail per-job progress events live.

See docs/architecture.md, "Service", for the protocol schema, the job
lifecycle and the fairness model; ``repro submit --follow`` is the
one-line client.
"""

from repro.serve.admission import AdmissionController, CircuitBreaker
from repro.serve.client import ADDR_ENV, FollowStream, ServeClient, parse_address
from repro.serve.journal import JobJournal, RecoveredState
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import (
    DEFAULT_TENANT,
    JOB_STATES,
    PROTOCOL_VERSION,
    RESOURCE_EXHAUSTED,
    TERMINAL_STATES,
    ProtocolError,
)
from repro.serve.queue import Entry, FairQueue
from repro.serve.server import DEFAULT_FOLLOW_TYPES, Job, ServeConfig, Server

__all__ = [
    "ADDR_ENV",
    "AdmissionController",
    "CircuitBreaker",
    "DEFAULT_FOLLOW_TYPES",
    "DEFAULT_TENANT",
    "Entry",
    "FairQueue",
    "FollowStream",
    "JOB_STATES",
    "Job",
    "JobJournal",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RESOURCE_EXHAUSTED",
    "RecoveredState",
    "ServeClient",
    "ServeConfig",
    "ServeMetrics",
    "Server",
    "TERMINAL_STATES",
    "parse_address",
]
