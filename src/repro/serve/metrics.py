"""Serve-side metrics, surfaced through the existing MetricRegistry.

One :class:`ServeMetrics` instance wraps the daemon's
:class:`~repro.obs.metrics.MetricRegistry` with typed handles for the
service-level signals (queue depth, jobs by state, per-tenant served
counters, cache hits, pool dispatches).  The ``metrics`` RPC exposes
the registry's Prometheus text exposition and JSON snapshot, which is
what ``repro jobs --metrics`` prints.

Tenant is the only unbounded-ish label; the registry's cardinality cap
(512 series) turns a tenant-id flood into a loud error instead of a
slow memory leak, per the repro.obs design rules.
"""

from __future__ import annotations

from repro.obs.metrics import MetricRegistry
from repro.serve import protocol


class ServeMetrics:
    """Typed handles over the daemon's metric registry."""

    def __init__(self, registry: MetricRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        r = self.registry
        self.queue_depth = r.gauge(
            "repro_serve_queue_depth",
            "jobs currently waiting in the fair queue",
        )
        self.jobs_by_state = r.gauge(
            "repro_serve_jobs",
            "jobs currently tracked by the daemon, by lifecycle state",
            labels=("state",),
        )
        self.submitted = r.counter(
            "repro_serve_jobs_submitted_total",
            "jobs admitted, by tenant",
            labels=("tenant",),
        )
        self.served = r.counter(
            "repro_serve_jobs_served_total",
            "jobs brought to a terminal state, by tenant and outcome",
            labels=("tenant", "state"),
        )
        self.cache_hits = r.counter(
            "repro_serve_cache_hits_total",
            "submissions answered from the result cache without dispatch",
        )
        self.pool_dispatches = r.counter(
            "repro_serve_pool_dispatch_total",
            "jobs dispatched to the warm worker pool",
        )
        self.inline_dispatches = r.counter(
            "repro_serve_inline_dispatch_total",
            "jobs executed by in-process worker threads",
        )
        self.pool_reaps = r.counter(
            "repro_serve_pool_reaped_total",
            "idle warm pools reaped by the daemon",
        )
        self.job_seconds = r.histogram(
            "repro_serve_job_seconds",
            "executed-job wall time (cache hits excluded)",
        )
        self.journal_appends = r.counter(
            "repro_serve_journal_appends_total",
            "records durably appended to the job journal, by kind",
            labels=("kind",),
        )
        self.jobs_recovered = r.counter(
            "repro_serve_jobs_recovered_total",
            "pre-crash submissions re-enqueued by journal replay",
        )
        self.journal_compactions = r.counter(
            "repro_serve_journal_compactions_total",
            "times the job journal was compacted to its live set",
        )
        self.admission_rejected = r.counter(
            "repro_serve_admission_rejected_total",
            "submissions shed by admission control, by tenant and reason",
            labels=("tenant", "reason"),
        )
        self.idempotent_hits = r.counter(
            "repro_serve_idempotent_hits_total",
            "duplicate submissions answered via their idempotency key",
        )
        self.breaker_state = r.gauge(
            "repro_serve_breaker_state",
            "pool circuit breaker state (0=closed, 1=half-open, 2=open)",
        )
        self.breaker_trips = r.counter(
            "repro_serve_breaker_trips_total",
            "times the pool circuit breaker tripped open",
        )
        self.pool_recycles = r.counter(
            "repro_serve_pool_recycles_total",
            "broken warm pools recycled by the daemon",
        )
        self.timeout_leaked = r.gauge(
            "repro_serve_timeout_leaked",
            "execution slots leaked to timed-out jobs since daemon start",
        )
        for state in protocol.JOB_STATES:
            self.jobs_by_state.set(0, state=state)

    # -- transitions ----------------------------------------------------
    def state_change(self, old: str | None, new: str) -> None:
        if old is not None:
            self.jobs_by_state.add(-1, state=old)
        self.jobs_by_state.add(1, state=new)

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()

    def snapshot(self) -> dict:
        return self.registry.snapshot()
