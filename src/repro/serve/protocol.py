"""The wire protocol of the scheduling service.

Line-delimited JSON-RPC over a localhost TCP or Unix-domain socket.
Every line is one UTF-8 JSON document terminated by ``\\n``; three
document shapes exist:

**Request** (client -> server)::

    {"id": 1, "method": "submit", "tenant": "team-a", "params": {...}}

``id`` is a client-chosen correlation token (echoed verbatim),
``method`` one of :data:`METHODS`, ``tenant`` the fairness identity
the request is accounted against (defaults to ``"default"``).

**Response** (server -> client, exactly one per request)::

    {"id": 1, "ok": true, "result": {...}}
    {"id": 1, "ok": false, "error": {"code": "unknown-job", "message": "..."}}

**Event notification** (server -> client, only on connections that
asked to follow a job; zero or more, always *before* the request's
final response)::

    {"job": "j000003", "event": {"type": "job_progress", "time": 1.25, ...}}

Job lifecycle states (:data:`JOB_STATES`)::

    queued ──> running ──> done
       │          ├──────> failed
       │          ├──────> timeout
       └──────────┴──────> cancelled

``done``/``failed``/``timeout``/``cancelled`` are terminal
(:data:`TERMINAL_STATES`); a cached submission goes straight from
admission to ``done`` without ever occupying a pool slot.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from repro.errors import ServeError

#: Protocol revision; servers reject clients demanding a newer one.
PROTOCOL_VERSION = 1

#: Default tenant identity for requests that do not name one.
DEFAULT_TENANT = "default"

# -- job lifecycle ------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, TIMEOUT, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})

#: RPC methods the server understands.
METHODS = frozenset({
    "ping", "submit", "status", "jobs", "cancel", "metrics", "shutdown",
})

# -- structured error codes --------------------------------------------
BAD_REQUEST = "bad-request"
UNKNOWN_METHOD = "unknown-method"
UNKNOWN_JOB = "unknown-job"
SHUTTING_DOWN = "shutting-down"
NOT_CANCELLABLE = "not-cancellable"
#: The admission controller (or an open circuit breaker with a shed
#: policy) refused a submission.  The error's ``data`` always carries
#: ``retry_after`` — the seconds a well-behaved client should wait
#: before resubmitting.
RESOURCE_EXHAUSTED = "resource-exhausted"
INTERNAL = "internal"

#: Failure ``kind`` recorded on jobs that died because the worker pool
#: itself broke (vs. a job-scoped error).  Retryable: resubmitting the
#: same spec (same ``idempotency_key``) after the pool recycles is safe.
POOL_BROKEN = "broken-pool"


class ProtocolError(ServeError):
    """A malformed or unserviceable request/response.

    ``data`` carries optional machine-readable context (e.g.
    ``{"retry_after": 1.5}`` on :data:`RESOURCE_EXHAUSTED` errors).
    """

    def __init__(self, code: str, message: str,
                 data: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.data = dict(data) if data else {}

    @property
    def retry_after(self) -> Optional[float]:
        """Server-suggested resubmission delay, if the reply named one."""
        value = self.data.get("retry_after")
        return float(value) if isinstance(value, (int, float)) else None


# ----------------------------------------------------------------------
# Encoding / decoding
# ----------------------------------------------------------------------
def encode_line(doc: Mapping[str, Any]) -> bytes:
    """One protocol document as a newline-terminated JSON line."""
    return (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes | str) -> dict:
    """Parse one line into a dict; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        doc = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(BAD_REQUEST, f"invalid JSON line: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(BAD_REQUEST, "protocol documents must be objects")
    return doc


def parse_request(doc: Mapping[str, Any]) -> tuple[Any, str, str, dict]:
    """Validate a request document -> ``(id, method, tenant, params)``."""
    if "id" not in doc:
        raise ProtocolError(BAD_REQUEST, "request is missing its 'id'")
    method = doc.get("method")
    if not isinstance(method, str):
        raise ProtocolError(BAD_REQUEST, "request 'method' must be a string")
    if method not in METHODS:
        raise ProtocolError(
            UNKNOWN_METHOD, f"unknown method {method!r}; one of {sorted(METHODS)}"
        )
    tenant = doc.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(BAD_REQUEST, "request 'tenant' must be a non-empty string")
    params = doc.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(BAD_REQUEST, "request 'params' must be an object")
    return doc["id"], method, tenant, params


def make_request(
    req_id: Any, method: str, params: Optional[Mapping[str, Any]] = None,
    tenant: str = DEFAULT_TENANT,
) -> dict:
    doc: dict = {"id": req_id, "method": method, "tenant": tenant}
    if params:
        doc["params"] = dict(params)
    return doc


def make_response(req_id: Any, result: Mapping[str, Any]) -> dict:
    return {"id": req_id, "ok": True, "result": dict(result)}


def make_error(req_id: Any, code: str, message: str,
               data: Optional[Mapping[str, Any]] = None) -> dict:
    err: dict = {"code": code, "message": message}
    if data:
        err["data"] = dict(data)
    return {"id": req_id, "ok": False, "error": err}


def make_event(job_id: str, event: Mapping[str, Any]) -> dict:
    return {"job": job_id, "event": dict(event)}


def is_event(doc: Mapping[str, Any]) -> bool:
    """Whether a server->client document is an event notification."""
    return "event" in doc and "id" not in doc


def result_or_raise(doc: Mapping[str, Any]) -> dict:
    """Unwrap a response document client-side; error replies raise."""
    if doc.get("ok"):
        result = doc.get("result", {})
        return result if isinstance(result, dict) else {}
    err = doc.get("error") or {}
    raise ProtocolError(
        err.get("code", INTERNAL),
        err.get("message", "unspecified server error"),
        data=err.get("data") if isinstance(err.get("data"), dict) else None,
    )
