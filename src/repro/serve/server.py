"""The long-lived scheduling daemon behind ``repro serve``.

One :class:`Server` binds a localhost TCP socket (and optionally a
Unix-domain socket), accepts concurrent line-delimited JSON-RPC
connections (:mod:`repro.serve.protocol`), and multiplexes submitted
jobs over the existing execution substrate:

* admission puts each job on a :class:`~repro.serve.queue.FairQueue`
  (deficit round robin across tenants, priorities within a tenant);
* a scheduler thread feeds the queue into either the process-wide warm
  worker pool (:mod:`repro.sweep.pool`, ``workers > 1``) or a small
  in-process thread pool (``workers <= 1`` — the mode where a job's
  simulator events stream live to followers);
* results read through / write back the content-addressed
  :class:`~repro.sweep.cache.ResultCache`, so a repeat submission is
  answered instantly without occupying a pool slot;
* every job carries its own :class:`~repro.obs.api.Observability`
  handle, installed contextvar-scoped around in-process execution, so
  concurrent jobs' events stay isolated and each follower tails only
  its own job.

Lifecycle: ``request_shutdown(drain=True)`` (what SIGTERM maps to in
the CLI) stops admitting, lets queued + in-flight jobs finish, flushes
followers, then closes sockets; ``drain=False`` additionally cancels
everything still queued.  An idle daemon reaps the warm pool after
``idle_reap_s`` and re-forks it on the next pool-mode dispatch.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from repro.errors import ServeError
from repro.obs.api import Observability, current_observer
from repro.obs.bus import EventBus
from repro.serve import journal as journal_mod
from repro.serve import protocol
from repro.serve.admission import (
    CLOSED as BREAKER_CLOSED,
    HALF_OPEN as BREAKER_HALF_OPEN,
    OPEN as BREAKER_OPEN,
    AdmissionController,
    CircuitBreaker,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import Entry, FairQueue
from repro.sweep import pool as pool_mod
from repro.sweep.cache import ResultCache
from repro.sweep.spec import JobSpec
from repro.version import __version__

#: Event types streamed to followers by default: the job lifecycle plus
#: the coarse per-run milestones (not the per-task firehose).
DEFAULT_FOLLOW_TYPES = frozenset({
    "job_submitted", "job_started", "job_progress", "job_finished",
    "job_failed", "job_cancelled",
    "run_started", "run_finished", "sampling_phase", "config_selected",
    "degraded_enter", "degraded_exit",
})


@dataclass
class ServeConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from
    #: ``Server.tcp_address`` / the ``--ready-file``).
    port: int = 0
    #: Optional Unix-domain socket path to bind alongside TCP.
    unix_path: Optional[str] = None
    #: ``> 1``: dispatch jobs to the warm process pool with that many
    #: workers; ``<= 1``: execute in-process on worker threads.
    workers: int = 0
    #: Concurrently executing jobs (default: ``workers`` in pool mode,
    #: 2 in in-process mode).
    max_inflight: Optional[int] = None
    #: Result-cache root (None = default); ``use_cache=False`` disables
    #: result read-through/write-back but keeps suite snapshots.
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Reap the warm pool after this many idle seconds (None = never).
    idle_reap_s: Optional[float] = 300.0
    #: Fair-queue round credit and per-tenant weights.
    quantum: float = 1.0
    tenant_weights: dict = field(default_factory=dict)
    #: Default per-job wall-clock budget (None = unlimited).
    job_timeout: Optional[float] = None
    #: Terminal jobs kept for ``status``/``jobs`` before pruning.
    max_history: int = 1024
    # -- durability ----------------------------------------------------
    #: Write-ahead job journal path (None = no journal; unit tests and
    #: throwaway daemons).  The CLI defaults this to
    #: ``<cache-dir>/serve.journal``.
    journal_path: Optional[str] = None
    #: Replay the journal at startup, re-enqueueing non-terminal jobs.
    recover: bool = True
    #: fsync every journal append (off only makes sense in tests).
    journal_fsync: bool = True
    #: Compact the journal after this many terminal records.
    journal_compact_every: int = 256
    # -- overload protection -------------------------------------------
    #: Global queued-job cap (None = unbounded).
    max_queue_depth: Optional[int] = None
    #: Per-tenant queued-job cap (None = unbounded).
    max_tenant_depth: Optional[int] = None
    #: Estimated-queued-seconds cap (None = unbounded).
    max_queued_cost_s: Optional[float] = None
    #: Consecutive broken-pool/timeout failures that trip the circuit
    #: breaker (0 disables it).
    breaker_threshold: int = 3
    #: Seconds the breaker stays open before probing half-open.
    breaker_cooldown_s: float = 5.0
    #: While the breaker is open: shed new non-cached submissions with
    #: ``resource-exhausted`` (True) or let them queue (False).
    breaker_shed: bool = False
    #: Chaos hook: sleep this long at the top of every scheduler-loop
    #: iteration (the ``delay-sched`` chaos action sets it via
    #: ``REPRO_SERVE_SCHED_DELAY``).
    sched_delay_s: float = 0.0

    @property
    def capacity(self) -> int:
        if self.max_inflight is not None:
            return max(1, int(self.max_inflight))
        return max(1, int(self.workers)) if self.workers > 1 else 2

    @property
    def pool_mode(self) -> bool:
        return self.workers > 1


class Job:
    """One tracked submission, from admission to terminal state."""

    __slots__ = (
        "id", "tenant", "spec", "job_hash", "priority", "timeout",
        "state", "cached", "mode", "submitted_at", "started_at",
        "finished_at", "elapsed", "error", "kind", "result", "entry",
        "future", "deadline", "obs", "followers", "finalized",
        "running_slot", "done", "idem", "journaled", "recovered",
        "sched_deadline",
    )

    def __init__(self, job_id: str, tenant: str, spec: JobSpec,
                 priority: int, timeout: Optional[float],
                 idem: Optional[str] = None,
                 sched_deadline: Optional[float] = None) -> None:
        self.id = job_id
        self.tenant = tenant
        self.spec = spec
        self.job_hash = spec.job_hash
        self.priority = priority
        self.timeout = timeout
        #: Client-supplied scheduling deadline: absolute wall-clock
        #: seconds (daemon epoch, like ``submitted_at``).  Orders jobs
        #: of equal priority EDF-first within the tenant's fair share;
        #: distinct from ``deadline``, the execution-timeout clock.
        self.sched_deadline = sched_deadline
        #: Client-supplied idempotency key (duplicate submissions with
        #: the same key are answered from this job, never re-run).
        self.idem = idem
        #: Whether a ``submit`` record for this job is in the journal.
        self.journaled = False
        #: Whether this job was re-enqueued by journal replay.
        self.recovered = False
        self.state = protocol.QUEUED
        self.cached = False
        self.mode: Optional[str] = None
        self.submitted_at: float = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.elapsed: float = 0.0
        self.error: Optional[str] = None
        self.kind: Optional[str] = None
        self.result: Optional[dict] = None
        self.entry: Optional[Entry] = None
        self.future: Optional[Future] = None
        self.deadline: Optional[float] = None
        #: Per-job observability scope: followers subscribe here, and
        #: in-process execution installs it (contextvar) so simulator
        #: events land on this job's bus and nobody else's.
        self.obs = Observability()
        #: ``(conn, req_id, subscription)`` triples awaiting the final
        #: response.
        self.followers: list = []
        self.finalized = False
        self.running_slot = False
        self.done = threading.Event()

    def to_dict(self, with_result: bool = False) -> dict:
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "workload": self.spec.workload,
            "scheduler": self.spec.scheduler,
            "label": self.spec.label(),
            "hash": self.job_hash,
            "priority": self.priority,
            "cached": self.cached,
            "mode": self.mode,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed": self.elapsed,
            "error": self.error,
            "kind": self.kind,
            "recovered": self.recovered,
            "deadline": self.sched_deadline,
        }
        if with_result and self.result is not None:
            out["metrics"] = self.result
        return out


class _Conn:
    """One accepted client connection (reader thread + locked writer)."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.wlock = threading.Lock()
        self.alive = True
        #: Jobs this connection follows (cleaned up on disconnect).
        self.followed: list[Job] = []

    def send(self, doc: Mapping[str, Any]) -> bool:
        try:
            data = protocol.encode_line(doc)
        except (TypeError, ValueError):
            data = protocol.encode_line(protocol.make_error(
                doc.get("id"), protocol.INTERNAL, "unserialisable response"
            ))
        with self.wlock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(data)
                return True
            except OSError:
                self.alive = False
                return False

    def close(self) -> None:
        with self.wlock:
            self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class Server:
    """The scheduling service.  ``start()`` binds and spawns threads;
    ``serve_forever()`` blocks until shutdown completes."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        obs: Optional[Observability] = None,
        worker_fn: Optional[Callable] = None,
    ) -> None:
        self.config = config or ServeConfig()
        #: Daemon-wide observer (events mirror to it in addition to the
        #: per-job buses).  Captured eagerly: server threads run in
        #: fresh contexts and would not see the caller's installed
        #: default.
        self._obs = obs if obs is not None else current_observer()
        #: Test hook: substitute job body (``worker_fn(spec) -> dict``).
        self.worker_fn = worker_fn
        self.metrics = ServeMetrics(
            getattr(self._obs, "metrics", None)
        )
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._queue = FairQueue(
            quantum=self.config.quantum, weights=self.config.tenant_weights
        )
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._inflight = 0
        self._seq = 0
        self._state = "idle"  # idle -> serving -> draining -> stopped
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._drain = True
        self._threads: list[threading.Thread] = []
        self._conns: set[_Conn] = set()
        self._listeners: list[socket.socket] = []
        self._t0 = time.perf_counter()
        self.tcp_address: Optional[tuple[str, int]] = None
        self.unix_address: Optional[str] = None
        self.served = 0
        # Suite snapshots always go through a cache root (pool workers
        # load models from disk); result read-through is optional.
        self._store = ResultCache(self.config.cache_dir)
        self.cache: Optional[ResultCache] = (
            self._store if self.config.use_cache else None
        )
        self._exec: Optional[ThreadPoolExecutor] = None
        # -- durability -------------------------------------------------
        #: Write-ahead journal (None = volatile daemon).  All journal
        #: calls happen while holding ``self._lock`` — the lock order
        #: is always server -> journal, never the reverse.
        self._journal: Optional[journal_mod.JobJournal] = (
            journal_mod.JobJournal(
                self.config.journal_path, fsync=self.config.journal_fsync
            )
            if self.config.journal_path
            else None
        )
        self._finals_since_compact = 0
        #: Jobs re-enqueued by journal replay at the last start().
        self.recovered_jobs = 0
        # -- idempotency ------------------------------------------------
        #: key -> job id, for keys bound to a live (non-terminal) job.
        self._idem_live: dict[str, str] = {}
        #: key -> {"job", "hash", "state"}, for keys whose job reached a
        #: terminal state (survives restarts via the journal).
        self._idem_done: dict[str, dict] = {}
        # -- overload protection ----------------------------------------
        self.admission = AdmissionController(
            max_queue_depth=self.config.max_queue_depth,
            max_tenant_depth=self.config.max_tenant_depth,
            max_queued_cost_s=self.config.max_queued_cost_s,
            capacity=self.config.capacity,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            on_transition=self._on_breaker_transition,
        )
        self._recycling = False
        self._leaked_total = 0
        self._recycles_total = 0
        #: Rough count of records currently on disk (kept after the
        #: last compaction + appends since); drives the ``dropped``
        #: figure in ``journal_compacted`` events.
        self._journal_live_est = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        with self._lock:
            if self._state != "idle":
                raise ServeError(f"server already {self._state}")
            self._state = "serving"
        if self._journal is not None:
            # Replay (recover) strictly before the journal opens for
            # appends and before any socket exists: recovered jobs are
            # queued and the journal compacted down to the live set by
            # the time the first client can connect.
            if self.config.recover:
                self._recover()
            else:
                # Recovery declined: abandon any pre-crash state.
                replay = self._journal.replay(truncate=True)
                self._journal_live_est = len(replay.records)
                self._compact_journal(torn_bytes=replay.torn_bytes)
            self._journal.open()
        if self.config.pool_mode:
            # Fork every pool worker now, before the accept/reader
            # threads exist: the executor otherwise forks lazily at
            # first submit, and forking a multi-threaded process risks
            # inheriting a lock mid-acquisition into the child, which
            # then deadlocks before it ever reads a task.  Forking
            # before the listeners bind also keeps the listening
            # sockets out of the workers — a crashed daemon's orphaned
            # worker must never hold the port hostage across a restart.
            pool, _ = pool_mod.get_pool(self.config.workers, [])
            pool.prewarm()
        else:
            self._exec = ThreadPoolExecutor(
                max_workers=self.config.capacity,
                thread_name_prefix="repro-serve-job",
            )
        tcp = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        tcp.listen(64)
        self.tcp_address = tcp.getsockname()[:2]
        self._listeners.append(tcp)
        if self.config.unix_path:
            path = Path(self.config.unix_path)
            if path.exists():
                path.unlink()
            path.parent.mkdir(parents=True, exist_ok=True)
            ux = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            ux.bind(str(path))
            ux.listen(64)
            self.unix_address = str(path)
            self._listeners.append(ux)
        for sock in self._listeners:
            t = threading.Thread(
                target=self._accept_loop, args=(sock,), daemon=True,
                name="repro-serve-accept",
            )
            t.start()
            self._threads.append(t)
        sched = threading.Thread(
            target=self._scheduler_loop, daemon=True, name="repro-serve-sched"
        )
        sched.start()
        self._threads.append(sched)
        self._emit_server(
            "serve_started",
            tcp=f"{self.tcp_address[0]}:{self.tcp_address[1]}",
            unix=self.unix_address, workers=self.config.workers,
        )
        self._started.set()
        return self

    def serve_forever(self) -> None:
        self._stopped.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Stop admitting; drain (or cancel) queued work, then stop."""
        to_cancel: list[Job] = []
        with self._wake:
            if self._state == "stopped":
                return
            if self._state == "idle":
                # Never started: nothing to drain, no scheduler to run
                # the shutdown tail.
                self._state = "stopped"
                self._stopped.set()
                return
            self._state = "draining"
            self._drain = drain
            if not drain:
                to_cancel = [e.item for e in self._queue.drain()]
                self.metrics.queue_depth.set(0)
            self._wake.notify_all()
        self._emit_server(
            "serve_draining",
            queued=len(self._queue), running=self._inflight,
        )
        for job in to_cancel:
            self._finalize(job, protocol.CANCELLED)

    def close(self, timeout: float = 30.0) -> None:
        """Cancel queued work and wait for shutdown to complete."""
        self.request_shutdown(drain=False)
        self._stopped.wait(timeout)

    # ------------------------------------------------------------------
    # Durability: journal recovery + compaction
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Replay the journal: re-enqueue everything non-terminal.

        Runs single-threaded inside ``start()``, before any socket is
        bound.  Pending submissions are re-admitted in original append
        order (so FairQueue fairness across tenants is re-established
        exactly as it stood), settled idempotency keys are restored,
        and jobs whose results already landed in the cache — a crash
        between cache write-back and the final journal record — are
        finalised from the cache instead of re-executed.
        """
        assert self._journal is not None
        replay = self._journal.replay(truncate=True)
        self._journal_live_est = len(replay.records)
        state = journal_mod.interpret(replay.records)
        self._seq = max(self._seq, state.max_seq)
        self._idem_done.update(state.idem)
        recovered: list[Job] = []
        for rec in state.pending:
            try:
                spec = JobSpec.from_dict(rec.get("spec") or {})
            except Exception:  # noqa: BLE001 - skip unreadable records
                continue
            timeout = rec.get("timeout")
            job = Job(
                str(rec["job"]),
                str(rec.get("tenant") or protocol.DEFAULT_TENANT),
                spec,
                int(rec.get("priority", 0)),
                float(timeout) if timeout is not None else None,
                idem=rec.get("idem"),
            )
            job.journaled = True
            job.recovered = True
            job.submitted_at = self._now()
            budget = rec.get("deadline")
            if budget is not None:
                # The journal keeps the seconds-from-submission budget;
                # restart restarts the clock.
                job.sched_deadline = job.submitted_at + float(budget)
            recovered.append(job)
        finalize_from_cache: list[tuple[Job, dict]] = []
        with self._wake:
            for job in recovered:
                entry = (
                    self.cache.get(job.job_hash)
                    if self.cache is not None else None
                )
                self._jobs[job.id] = job
                self._order.append(job.id)
                if job.idem:
                    self._idem_live[job.idem] = job.id
                self.metrics.submitted.inc(tenant=job.tenant)
                self.metrics.state_change(None, protocol.QUEUED)
                self.metrics.jobs_recovered.inc()
                if entry is None:
                    job.entry = self._queue.push(
                        job, tenant=job.tenant, priority=job.priority,
                        deadline=job.sched_deadline,
                    )
                else:
                    finalize_from_cache.append((job, entry))
            self.metrics.queue_depth.set(len(self._queue))
            self.recovered_jobs = len(recovered)
        for job in recovered:
            self._emit_job(job, "job_recovered", priority=job.priority)
        for job, entry in finalize_from_cache:
            self._finalize(
                job, protocol.DONE, metrics_dict=entry["metrics"],
                elapsed=0.0, cached=True,
            )
        self._compact_journal(torn_bytes=replay.torn_bytes)

    def _live_journal_records(self) -> list[dict]:
        # Locked by caller: non-terminal journaled submissions in
        # append order, plus the settled idempotency-key index.
        records: list[dict] = []
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if job is None or not job.journaled or job.finalized:
                continue
            records.append(journal_mod.submit_record(
                job.id, job.tenant, job.spec.to_dict(), job.priority,
                job.timeout, job.idem,
                None if job.sched_deadline is None
                else max(0.001, job.sched_deadline - job.submitted_at),
            ))
        for key, info in self._idem_done.items():
            records.append(journal_mod.idem_record(
                key, info.get("job", ""), info.get("hash", ""),
                info.get("state", ""),
            ))
        return records

    def _compact_journal(self, torn_bytes: int = 0) -> None:
        if self._journal is None:
            return
        with self._lock:
            kept = self._journal.compact(self._live_journal_records())
            dropped = max(0, self._journal_live_est - kept)
            self._journal_live_est = kept
            self._finals_since_compact = 0
            self.metrics.journal_compactions.inc()
        self._emit_server(
            "journal_compacted", kept=kept, dropped=dropped,
            torn_bytes=torn_bytes,
        )

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _emit_server(self, type: str, **fields: Any) -> None:
        bus = getattr(self._obs, "bus", None)
        if isinstance(bus, EventBus) and bus.active:
            bus.emit(type, self._now(), **fields)

    def _emit_job(self, job: Job, type: str, **fields: Any) -> None:
        now = self._now()
        if job.obs.bus.active:
            job.obs.bus.emit(type, now, job=job.id, tenant=job.tenant, **fields)
        bus = getattr(self._obs, "bus", None)
        if isinstance(bus, EventBus) and bus.active:
            bus.emit(type, now, job=job.id, tenant=job.tenant, **fields)

    # ------------------------------------------------------------------
    # Socket handling
    # ------------------------------------------------------------------
    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                sock, addr = listener.accept()
            except OSError:
                return  # listener closed during shutdown
            conn = _Conn(sock, str(addr))
            with self._lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name="repro-serve-conn",
            )
            t.start()

    def _reader_loop(self, conn: _Conn) -> None:
        try:
            reader = conn.sock.makefile("rb")
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                doc: dict = {}
                try:
                    doc = protocol.decode_line(line)
                    req_id, method, tenant, params = protocol.parse_request(doc)
                except protocol.ProtocolError as exc:
                    conn.send(protocol.make_error(
                        doc.get("id") if isinstance(doc, dict) else None,
                        exc.code, exc.message, data=exc.data,
                    ))
                    continue
                try:
                    self._dispatch_rpc(conn, req_id, method, tenant, params)
                except protocol.ProtocolError as exc:
                    conn.send(protocol.make_error(
                        req_id, exc.code, exc.message, data=exc.data
                    ))
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    conn.send(protocol.make_error(
                        req_id, protocol.INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    ))
        except (OSError, ValueError):
            pass
        finally:
            self._drop_conn(conn)

    def _drop_conn(self, conn: _Conn) -> None:
        conn.close()
        with self._lock:
            self._conns.discard(conn)
            followed, conn.followed = conn.followed, []
            orphaned = []
            for job in followed:
                kept = []
                for c, rid, sub in job.followers:
                    if c is conn:
                        orphaned.append(sub)
                    else:
                        kept.append((c, rid, sub))
                job.followers = kept
        for sub in orphaned:
            sub.close()

    # ------------------------------------------------------------------
    # RPC dispatch
    # ------------------------------------------------------------------
    def _dispatch_rpc(self, conn: _Conn, req_id: Any, method: str,
                      tenant: str, params: dict) -> None:
        if method == "ping":
            conn.send(protocol.make_response(req_id, {
                "pong": True, "version": __version__,
                "protocol": protocol.PROTOCOL_VERSION, "state": self._state,
            }))
        elif method == "submit":
            self._rpc_submit(conn, req_id, tenant, params)
        elif method == "status":
            job = self._lookup(params)
            # Snapshot under the lock: a job mid-finalize must never be
            # seen half-terminal (state ``done`` with no result yet, or
            # before its final journal record landed).
            with self._lock:
                payload = job.to_dict(with_result=params.get("result", True))
            conn.send(protocol.make_response(req_id, payload))
        elif method == "jobs":
            self._rpc_jobs(conn, req_id, params)
        elif method == "cancel":
            self._rpc_cancel(conn, req_id, params)
        elif method == "metrics":
            with self._lock:
                self.metrics.queue_depth.set(len(self._queue))
                pool = pool_mod.active_pool()
                pool_info = {
                    "timeout_leaked": self._leaked_total,
                    "recycles": self._recycles_total,
                    "live_leaked": int(pool.leaked) if pool is not None else 0,
                    "breaker": self.breaker.state,
                    "breaker_trips": self.breaker.trips,
                }
            conn.send(protocol.make_response(req_id, {
                "prometheus": self.metrics.render_prometheus(),
                "snapshot": self.metrics.snapshot(),
                "pool": pool_info,
            }))
        elif method == "shutdown":
            drain = bool(params.get("drain", True))
            conn.send(protocol.make_response(
                req_id, {"draining": drain, "state": "draining"}
            ))
            self.request_shutdown(drain=drain)

    def _lookup(self, params: dict) -> Job:
        job_id = params.get("job")
        job = self._jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise protocol.ProtocolError(
                protocol.UNKNOWN_JOB, f"no such job {job_id!r}"
            )
        return job

    def _rpc_jobs(self, conn: _Conn, req_id: Any, params: dict) -> None:
        tenant = params.get("tenant")
        with self._lock:
            jobs = [self._jobs[i] for i in self._order]
            if tenant:
                jobs = [j for j in jobs if j.tenant == tenant]
            payload = {
                "state": self._state,
                "queued": len(self._queue),
                "running": self._inflight,
                "depths": self._queue.depths(),
                "jobs": [j.to_dict() for j in jobs],
            }
        conn.send(protocol.make_response(req_id, payload))

    def _rpc_cancel(self, conn: _Conn, req_id: Any, params: dict) -> None:
        job = self._lookup(params)
        cancelled = False
        with self._lock:
            if job.state == protocol.QUEUED and job.entry is not None:
                cancelled = self._queue.cancel(job.entry)
                self.metrics.queue_depth.set(len(self._queue))
            elif job.state == protocol.RUNNING and job.future is not None:
                cancelled = job.future.cancel()
        if cancelled:
            self._finalize(job, protocol.CANCELLED)
            conn.send(protocol.make_response(req_id, job.to_dict()))
        elif job.state in protocol.TERMINAL_STATES:
            raise protocol.ProtocolError(
                protocol.NOT_CANCELLABLE, f"job {job.id} already {job.state}"
            )
        else:
            raise protocol.ProtocolError(
                protocol.NOT_CANCELLABLE,
                f"job {job.id} is already executing and cannot be preempted",
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _rpc_submit(self, conn: _Conn, req_id: Any, tenant: str,
                    params: dict) -> None:
        spec_dict = params.get("job")
        if not isinstance(spec_dict, dict):
            raise protocol.ProtocolError(
                protocol.BAD_REQUEST, "submit needs params.job (a JobSpec dict)"
            )
        try:
            spec = JobSpec.from_dict(spec_dict)
        except Exception as exc:  # noqa: BLE001 - structured reply
            raise protocol.ProtocolError(
                protocol.BAD_REQUEST, f"invalid job spec: {exc}"
            ) from None
        priority = int(params.get("priority", 0))
        timeout = params.get("timeout", self.config.job_timeout)
        timeout = float(timeout) if timeout is not None else None
        deadline = params.get("deadline")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise protocol.ProtocolError(
                    protocol.BAD_REQUEST,
                    "deadline must be a number (seconds from submission)",
                ) from None
            if deadline <= 0:
                raise protocol.ProtocolError(
                    protocol.BAD_REQUEST, "deadline must be > 0"
                )
        follow = bool(params.get("follow", False))
        idem = params.get("idempotency_key")
        if idem is not None and (not isinstance(idem, str) or not idem):
            raise protocol.ProtocolError(
                protocol.BAD_REQUEST,
                "idempotency_key must be a non-empty string",
            )

        # Idempotent replay: a known key binds to its original job —
        # live duplicates attach to it, settled ones answer from
        # history or the cache.  A retry never re-executes.
        if idem is not None and self._serve_idempotent(
            conn, req_id, idem, follow, params
        ):
            return

        # Read-through probe before admission: cached work must keep
        # serving even when the queue is full or the breaker is open.
        entry = self.cache.get(spec.job_hash) if self.cache is not None else None
        if entry is None:
            self._check_admission(tenant)

        with self._wake:
            if self._state != "serving":
                raise protocol.ProtocolError(
                    protocol.SHUTTING_DOWN,
                    f"daemon is {self._state}; not accepting submissions",
                )
            self._seq += 1
            job = Job(f"j{self._seq:06d}", tenant, spec, priority, timeout,
                      idem=idem)
            job.submitted_at = self._now()
            if deadline is not None:
                job.sched_deadline = job.submitted_at + deadline
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._prune_history()
            if idem is not None:
                self._idem_live[idem] = job.id
            self.metrics.submitted.inc(tenant=tenant)
            self.metrics.state_change(None, protocol.QUEUED)
            if follow:
                types = params.get("follow_types")
                sub = job.obs.bus.subscribe(
                    self._forwarder(conn, job),
                    types=frozenset(types) if types else DEFAULT_FOLLOW_TYPES,
                )
                job.followers.append((conn, req_id, sub))
                conn.followed.append(job)

        if entry is not None:
            # Cache hit: finalised without queue, pool or journal (the
            # result is already durable in the cache; ``_finalize``
            # journals the idempotency binding if a key was supplied).
            self.metrics.cache_hits.inc()
            self._emit_job(
                job, "job_submitted", workload=spec.workload,
                scheduler=spec.scheduler, priority=priority, cached=True,
            )
            self._finalize(
                job, protocol.DONE, metrics_dict=entry["metrics"],
                elapsed=0.0, cached=True,
            )
            if not follow:
                conn.send(protocol.make_response(
                    req_id, job.to_dict(with_result=True)
                ))
            return

        with self._wake:
            if self._state != "serving":
                # A non-drain shutdown raced between admission and
                # enqueue; the queue sweep cannot see this job, so
                # cancel it here.
                aborted = True
            else:
                aborted = False
                # Durability order: journal append (fsync'd) ->
                # enqueue -> client acknowledgement.  An acknowledged
                # job is therefore always either journaled or
                # terminal — a crash can lose only unacked work.
                if self._journal is not None and self._journal.is_open:
                    self._journal.append(journal_mod.submit_record(
                        job.id, tenant, spec.to_dict(), priority, timeout,
                        idem, deadline,
                    ))
                    job.journaled = True
                    self._journal_live_est += 1
                    self.metrics.journal_appends.inc(kind="submit")
                job.entry = self._queue.push(
                    job, tenant=tenant, priority=priority,
                    deadline=job.sched_deadline,
                )
                self.metrics.queue_depth.set(len(self._queue))
                self._wake.notify_all()
        if aborted:
            self._finalize(job, protocol.CANCELLED)
            if not follow:
                conn.send(protocol.make_response(req_id, job.to_dict()))
            return
        if job.journaled:
            self._emit_job(job, "job_journaled", kind="submit")
        self._emit_job(
            job, "job_submitted", workload=spec.workload,
            scheduler=spec.scheduler, priority=priority, cached=False,
        )
        if not follow:
            conn.send(protocol.make_response(req_id, job.to_dict()))

    def _serve_idempotent(self, conn: _Conn, req_id: Any, idem: str,
                          follow: bool, params: dict) -> bool:
        """Answer a duplicate submission from its original job.

        Returns True when the key was known and a response (or a
        follower attachment to the live original) was arranged; False
        when the key is fresh and normal admission should proceed.
        """
        with self._wake:
            live_id = self._idem_live.get(idem)
            job = self._jobs.get(live_id) if live_id else None
            if job is not None:
                self.metrics.idempotent_hits.inc()
                if not job.finalized and follow:
                    types = params.get("follow_types")
                    sub = job.obs.bus.subscribe(
                        self._forwarder(conn, job),
                        types=(
                            frozenset(types) if types
                            else DEFAULT_FOLLOW_TYPES
                        ),
                    )
                    job.followers.append((conn, req_id, sub))
                    conn.followed.append(job)
                    return True
                conn.send(protocol.make_response(
                    req_id, job.to_dict(with_result=job.finalized)
                ))
                return True
            info = self._idem_done.get(idem)
            if info is not None:
                self.metrics.idempotent_hits.inc()
        if info is None:
            return False
        # Settled before a restart (or pruned from history): answer
        # from the cache under the recorded job hash.
        payload: dict = {
            "id": info.get("job", ""),
            "state": info.get("state", protocol.DONE),
            "hash": info.get("hash", ""),
            "cached": True,
            "idempotent_replay": True,
        }
        entry = (
            self.cache.get(info.get("hash", ""))
            if self.cache is not None and info.get("hash") else None
        )
        if entry is not None:
            payload["metrics"] = entry["metrics"]
        conn.send(protocol.make_response(req_id, payload))
        return True

    def _check_admission(self, tenant: str) -> None:
        """Shed this submission if the daemon is over its limits."""
        with self._lock:
            if self.config.breaker_shed and self.breaker.state == BREAKER_OPEN:
                retry_after = self.breaker.retry_after()
                reason = "breaker-open"
                message = (
                    "worker pool circuit breaker is open; "
                    f"retry after {retry_after:.2f} s"
                )
            else:
                rejection = self.admission.check(
                    tenant, len(self._queue), self._queue.depths()
                )
                if rejection is None:
                    return
                retry_after = rejection.retry_after
                reason = rejection.code
                message = rejection.message()
            self.metrics.admission_rejected.inc(tenant=tenant, reason=reason)
        self._emit_server(
            "admission_rejected", tenant=tenant, reason=reason,
            retry_after=round(retry_after, 3),
        )
        raise protocol.ProtocolError(
            protocol.RESOURCE_EXHAUSTED, message,
            data={"retry_after": round(retry_after, 3)},
        )

    def _forwarder(self, conn: _Conn, job: Job) -> Callable:
        def forward(event) -> None:
            # Never let a slow/broken follower disturb the job: send
            # errors mark the connection dead and are swallowed.
            try:
                conn.send(protocol.make_event(job.id, event.to_json()))
            except Exception:  # noqa: BLE001 - follower must not kill the job
                pass

        return forward

    def _prune_history(self) -> None:
        # Locked by caller.  Drop oldest terminal jobs beyond the cap.
        excess = len(self._order) - self.config.max_history
        if excess <= 0:
            return
        kept: list[str] = []
        for job_id in self._order:
            job = self._jobs[job_id]
            if excess > 0 and job.state in protocol.TERMINAL_STATES:
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept

    # ------------------------------------------------------------------
    # Scheduling + execution
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            if self.config.sched_delay_s > 0:
                # Chaos hook: a deliberately sluggish scheduler loop.
                time.sleep(self.config.sched_delay_s)
            job: Optional[Job] = None
            expired: list[Job] = []
            with self._wake:
                expired = self._collect_timeouts()
                if (
                    self._state == "draining"
                    and self._inflight == 0
                    and not expired
                    and len(self._queue) == 0
                ):
                    break
                if (
                    self._state != "stopped"
                    and self._inflight < self.config.capacity
                    and len(self._queue) > 0
                    # The breaker gates dispatch while serving; during
                    # drain it is bypassed so a sick pool cannot wedge
                    # shutdown (each drained job still fails fast).
                    and (self._state == "draining" or self.breaker.allow())
                ):
                    entry = self._queue.pop()
                    if entry is not None:
                        job = entry.item
                        job.running_slot = True
                        self._inflight += 1
                        self.metrics.queue_depth.set(len(self._queue))
                if job is None and not expired:
                    self._maybe_reap_idle_locked()
                    self._wake.wait(timeout=0.1)
                    continue
            for stale in expired:
                self._finalize(
                    stale, protocol.TIMEOUT,
                    error=f"exceeded timeout of {stale.timeout:g} s",
                    kind="timeout",
                    elapsed=(self._now() - (stale.started_at or stale.submitted_at)),
                )
            if job is not None:
                try:
                    self._dispatch(job)
                except Exception as exc:  # noqa: BLE001 - job-scoped failure
                    self._finalize(
                        job, protocol.FAILED,
                        error=f"{type(exc).__name__}: {exc}", kind="error",
                    )
        self._finish_shutdown()

    def _collect_timeouts(self) -> list[Job]:
        # Locked by caller.  Pool-mode deadline enforcement: a future
        # that cannot be cancelled keeps its worker slot busy (leak
        # accounting mirrors the sweep engine) but the job is failed
        # now and its late result discarded.
        expired: list[Job] = []
        now = time.monotonic()
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if (
                job is None or job.finalized or job.deadline is None
                or job.state != protocol.RUNNING or now < job.deadline
            ):
                continue
            if job.future is not None and not job.future.cancel():
                pool = pool_mod.active_pool()
                if pool is not None:
                    pool.leaked += 1
                self._leaked_total += 1
                self.metrics.timeout_leaked.set(self._leaked_total)
            expired.append(job)
        return expired

    def _maybe_reap_idle_locked(self) -> None:
        if (
            self.config.idle_reap_s is not None
            and self.config.pool_mode
            and self._inflight == 0
            and pool_mod.reap_idle_pool(self.config.idle_reap_s)
        ):
            self.metrics.pool_reaps.inc()

    def _dispatch(self, job: Job) -> None:
        if self.config.pool_mode:
            self._dispatch_pool(job)
        else:
            assert self._exec is not None
            self.metrics.inline_dispatches.inc()
            # Keep the future so timeout enforcement can try to cancel
            # and leak-account inline jobs exactly like pooled ones.
            job.future = self._exec.submit(self._run_inline, job)

    def _mark_started(self, job: Job, mode: str) -> None:
        with self._lock:
            job.state = protocol.RUNNING
            job.mode = mode
            job.started_at = self._now()
            if job.timeout is not None:
                # Both modes: the scheduler enforces the deadline and
                # discards the late result.  A running job that cannot
                # be cancelled leak-accounts its execution slot.
                job.deadline = time.monotonic() + job.timeout
            self.metrics.state_change(protocol.QUEUED, protocol.RUNNING)
        self._emit_job(
            job, "job_started", workload=job.spec.workload,
            scheduler=job.spec.scheduler, mode=mode,
        )

    # -- pool mode ------------------------------------------------------
    def _dispatch_pool(self, job: Job) -> None:
        spec = job.spec
        suite_path: Optional[str] = None
        from repro.schedulers.registry import needs_suite

        if self.worker_fn is None and needs_suite(spec.scheduler):
            suite_path = str(
                self._store.ensure_suite(spec.platform, spec.profile_seed)
            )
        # A suite-needing job may replace the start()-time pool with a
        # freshly warmed one, forking under live threads.  A worker
        # wedged by such a fork surfaces as a job timeout -> leaked
        # pool -> disposal (stragglers are killed), never as a hang.
        pool, _ = pool_mod.get_pool(
            self.config.workers, [suite_path] if suite_path else []
        )
        # Seed the admission cost estimate from the pool's measured
        # per-job probe (PR 4) until the serve-side EMA takes over.
        self.admission.seed_cost(getattr(pool, "cost_hint", None))
        self.metrics.pool_dispatches.inc()
        self._mark_started(job, mode="pool")
        if self.worker_fn is not None:
            fut = pool.submit(
                pool_mod.run_chunk_fn, self.worker_fn, [spec.to_dict()]
            )
        else:
            fut = pool.submit(
                pool_mod.run_chunk, [spec.to_dict()], [suite_path]
            )
        with self._lock:
            job.future = fut
        fut.add_done_callback(lambda f: self._on_pool_done(job, f))

    def _on_pool_done(self, job: Job, fut: Future) -> None:
        if fut.cancelled():
            return  # cancel() path already finalised the job
        exc = fut.exception()
        if exc is not None:
            if isinstance(exc, BrokenProcessPool):
                # A broken pool fails every in-flight future, but each
                # one lands here with its own job: only the affected
                # jobs fail (structured, retryable), and the pool is
                # recycled exactly once for the whole incident.
                pool = pool_mod.active_pool()
                if pool is not None:
                    pool.broken = True
                kind = protocol.POOL_BROKEN
                error = (
                    f"worker pool broke mid-flight ({type(exc).__name__}: "
                    f"{exc}); resubmitting the same spec is safe"
                )
                self._recycle_pool_once()
            else:
                kind = "error"
                error = f"{type(exc).__name__}: {exc}"
            self._finalize(job, protocol.FAILED, error=error, kind=kind)
            return
        res = fut.result()[0]
        if res.get("ok"):
            self._finalize(
                job, protocol.DONE, metrics_dict=res["metrics"],
                elapsed=float(res.get("elapsed", 0.0)),
            )
        else:
            self._finalize(
                job, protocol.FAILED,
                error=res.get("error", "unknown worker error"), kind="error",
                elapsed=float(res.get("elapsed", 0.0)),
            )

    def _recycle_pool_once(self) -> None:
        """Dispose the broken pool (once per incident), off-thread.

        Disposal joins worker processes, so it cannot run on the
        executor callback thread; the next pool dispatch re-forks a
        fresh pool via ``get_pool``.
        """
        with self._lock:
            if self._recycling:
                return
            self._recycling = True

        def recycle() -> None:
            try:
                pool_mod.shutdown_warm_pool()
            finally:
                with self._lock:
                    self._recycling = False
                    self._recycles_total += 1
                    self.metrics.pool_recycles.inc()
                    self._wake.notify_all()

        threading.Thread(
            target=recycle, daemon=True, name="repro-serve-recycle"
        ).start()

    def _on_breaker_transition(self, old: str, new: str) -> None:
        # Invoked under self._lock (every breaker mutation holds it).
        self.metrics.breaker_state.set(
            {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}[new]
        )
        if new == BREAKER_OPEN:
            self.metrics.breaker_trips.inc()
            self._emit_server(
                "breaker_open",
                failures=self.breaker.consecutive_failures,
                cooldown=self.breaker.cooldown_s,
            )
        elif new == BREAKER_HALF_OPEN:
            self._emit_server("breaker_half_open")
        else:
            self._emit_server("breaker_closed")

    # -- in-process mode ------------------------------------------------
    def _run_inline(self, job: Job) -> None:
        self._mark_started(job, mode="inline")
        body = self.worker_fn
        if body is None:
            from repro.sweep.engine import execute_job
            body = execute_job
        t0 = time.perf_counter()
        try:
            # Contextvar-scoped install: the Executor built inside
            # picks up *this job's* observer in *this thread* only, so
            # its run/task/dvfs events stream to this job's followers
            # and to nobody else — even with other jobs running
            # concurrently on sibling threads.
            with job.obs.as_current():
                metrics = body(job.spec)
            elapsed = time.perf_counter() - t0
        except Exception as exc:  # noqa: BLE001 - job-scoped failure
            self._finalize(
                job, protocol.FAILED, error=f"{type(exc).__name__}: {exc}",
                kind="error", elapsed=time.perf_counter() - t0,
            )
            return
        if job.timeout is not None and elapsed > job.timeout:
            # In-process execution cannot be preempted; the budget is
            # enforced post-hoc exactly like the sweep engine's serial
            # path.
            self._finalize(
                job, protocol.TIMEOUT,
                error=f"exceeded timeout of {job.timeout:g} s",
                kind="timeout", elapsed=elapsed,
            )
        else:
            self._finalize(job, protocol.DONE, metrics_dict=metrics,
                           elapsed=elapsed)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finalize(
        self,
        job: Job,
        state: str,
        *,
        metrics_dict: Optional[dict] = None,
        elapsed: float = 0.0,
        error: Optional[str] = None,
        kind: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        if metrics_dict is not None:
            # Normalise exactly like the sweep engine so cached, pooled
            # and inline results are structurally identical on the wire.
            metrics_dict = json.loads(json.dumps(metrics_dict))
        if (
            state == protocol.DONE and not cached
            and self.cache is not None and metrics_dict is not None
        ):
            # Write-back BEFORE publishing the terminal state: a client
            # that sees ``done`` and immediately resubmits the same
            # spec must hit the cache (read-your-writes), not race the
            # write and re-execute.
            try:
                self.cache.put(job.spec, job.job_hash, metrics_dict, elapsed)
            except OSError:
                pass  # cache write-back is best-effort
        journaled_final = False
        compact_due = False
        with self._wake:
            if job.finalized:
                return
            job.finalized = True
            old = job.state
            job.state = state
            job.finished_at = self._now()
            job.result = metrics_dict
            job.elapsed = elapsed
            job.error = error
            job.kind = kind
            job.cached = cached
            if job.running_slot:
                job.running_slot = False
                self._inflight -= 1
            # Breaker feedback: only substrate-level outcomes count —
            # a job-scoped error says nothing about the pool's health.
            if kind in (protocol.POOL_BROKEN, "timeout"):
                self.breaker.record_failure()
            elif state == protocol.DONE and not cached:
                self.breaker.record_success()
                self.admission.observe_cost(elapsed)
            else:
                # Cancelled / job-scoped error: no substrate verdict,
                # but a half-open probe slot must not stay occupied.
                self.breaker.release_probe()
            # Idempotency settlement: the key now answers from history
            # or (after restarts/pruning) from the cache.
            if job.idem is not None:
                self._idem_live.pop(job.idem, None)
                self._idem_done[job.idem] = {
                    "job": job.id, "hash": job.job_hash, "state": state,
                }
            # Journal settlement (after the cache write-back above, so
            # a ``final`` on disk implies the result is readable).
            if self._journal is not None and self._journal.is_open:
                if job.journaled:
                    self._journal.append(journal_mod.final_record(
                        job.id, state, kind, error, job.job_hash, elapsed,
                    ))
                    self._journal_live_est += 1
                    self.metrics.journal_appends.inc(kind="final")
                    self._finals_since_compact += 1
                    journaled_final = True
                    compact_due = (
                        self._finals_since_compact
                        >= self.config.journal_compact_every
                    )
                elif job.idem is not None:
                    self._journal.append(journal_mod.idem_record(
                        job.idem, job.id, job.job_hash, state,
                    ))
                    self._journal_live_est += 1
                    self.metrics.journal_appends.inc(kind="idem")
            self.metrics.state_change(old, state)
            self.metrics.served.inc(tenant=job.tenant, state=state)
            if state == protocol.DONE and not cached:
                self.metrics.job_seconds.observe(elapsed)
            self.served += 1
            self._wake.notify_all()
        if compact_due:
            self._compact_journal()
        if journaled_final:
            self._emit_job(job, "job_journaled", kind="final")
        event = {
            protocol.DONE: "job_finished",
            protocol.FAILED: "job_failed",
            protocol.TIMEOUT: "job_failed",
            protocol.CANCELLED: "job_cancelled",
        }[state]
        if event == "job_finished":
            self._emit_job(job, event, cached=cached, elapsed=elapsed)
        elif event == "job_failed":
            self._emit_job(job, event, error=error or "", kind=kind or "error")
        else:
            self._emit_job(job, event)
        self._respond_followers(job)
        job.done.set()

    def _respond_followers(self, job: Job) -> None:
        with self._lock:
            followers, job.followers = job.followers, []
        for conn, req_id, sub in followers:
            sub.close()
            conn.send(protocol.make_response(
                req_id, job.to_dict(with_result=True)
            ))
            with self._lock:
                if job in conn.followed:
                    conn.followed.remove(job)

    # ------------------------------------------------------------------
    # Shutdown tail
    # ------------------------------------------------------------------
    def _finish_shutdown(self) -> None:
        with self._lock:
            self._state = "stopped"
            conns = list(self._conns)
        self._emit_server(
            "serve_stopped", served=self.served,
            reason="drained" if self._drain else "aborted",
        )
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        if self.unix_address:
            try:
                Path(self.unix_address).unlink()
            except OSError:
                pass
        for conn in conns:
            conn.close()
        if self._exec is not None:
            self._exec.shutdown(wait=True)
        if self.config.pool_mode:
            pool_mod.shutdown_warm_pool()
        if self._journal is not None:
            # Clean shutdown: compact down to the live set (after a
            # drain that is just the idempotency index) so the next
            # start replays a minimal journal.
            try:
                self._compact_journal()
            except OSError:
                pass
            self._journal.close()
        self._stopped.set()
