"""The long-lived scheduling daemon behind ``repro serve``.

One :class:`Server` binds a localhost TCP socket (and optionally a
Unix-domain socket), accepts concurrent line-delimited JSON-RPC
connections (:mod:`repro.serve.protocol`), and multiplexes submitted
jobs over the existing execution substrate:

* admission puts each job on a :class:`~repro.serve.queue.FairQueue`
  (deficit round robin across tenants, priorities within a tenant);
* a scheduler thread feeds the queue into either the process-wide warm
  worker pool (:mod:`repro.sweep.pool`, ``workers > 1``) or a small
  in-process thread pool (``workers <= 1`` — the mode where a job's
  simulator events stream live to followers);
* results read through / write back the content-addressed
  :class:`~repro.sweep.cache.ResultCache`, so a repeat submission is
  answered instantly without occupying a pool slot;
* every job carries its own :class:`~repro.obs.api.Observability`
  handle, installed contextvar-scoped around in-process execution, so
  concurrent jobs' events stay isolated and each follower tails only
  its own job.

Lifecycle: ``request_shutdown(drain=True)`` (what SIGTERM maps to in
the CLI) stops admitting, lets queued + in-flight jobs finish, flushes
followers, then closes sockets; ``drain=False`` additionally cancels
everything still queued.  An idle daemon reaps the warm pool after
``idle_reap_s`` and re-forks it on the next pool-mode dispatch.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from repro.errors import ServeError
from repro.obs.api import Observability, current_observer
from repro.obs.bus import EventBus
from repro.serve import protocol
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import Entry, FairQueue
from repro.sweep import pool as pool_mod
from repro.sweep.cache import ResultCache
from repro.sweep.spec import JobSpec
from repro.version import __version__

#: Event types streamed to followers by default: the job lifecycle plus
#: the coarse per-run milestones (not the per-task firehose).
DEFAULT_FOLLOW_TYPES = frozenset({
    "job_submitted", "job_started", "job_progress", "job_finished",
    "job_failed", "job_cancelled",
    "run_started", "run_finished", "sampling_phase", "config_selected",
    "degraded_enter", "degraded_exit",
})


@dataclass
class ServeConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an ephemeral port (read it back from
    #: ``Server.tcp_address`` / the ``--ready-file``).
    port: int = 0
    #: Optional Unix-domain socket path to bind alongside TCP.
    unix_path: Optional[str] = None
    #: ``> 1``: dispatch jobs to the warm process pool with that many
    #: workers; ``<= 1``: execute in-process on worker threads.
    workers: int = 0
    #: Concurrently executing jobs (default: ``workers`` in pool mode,
    #: 2 in in-process mode).
    max_inflight: Optional[int] = None
    #: Result-cache root (None = default); ``use_cache=False`` disables
    #: result read-through/write-back but keeps suite snapshots.
    cache_dir: Optional[str] = None
    use_cache: bool = True
    #: Reap the warm pool after this many idle seconds (None = never).
    idle_reap_s: Optional[float] = 300.0
    #: Fair-queue round credit and per-tenant weights.
    quantum: float = 1.0
    tenant_weights: dict = field(default_factory=dict)
    #: Default per-job wall-clock budget (None = unlimited).
    job_timeout: Optional[float] = None
    #: Terminal jobs kept for ``status``/``jobs`` before pruning.
    max_history: int = 1024

    @property
    def capacity(self) -> int:
        if self.max_inflight is not None:
            return max(1, int(self.max_inflight))
        return max(1, int(self.workers)) if self.workers > 1 else 2

    @property
    def pool_mode(self) -> bool:
        return self.workers > 1


class Job:
    """One tracked submission, from admission to terminal state."""

    __slots__ = (
        "id", "tenant", "spec", "job_hash", "priority", "timeout",
        "state", "cached", "mode", "submitted_at", "started_at",
        "finished_at", "elapsed", "error", "kind", "result", "entry",
        "future", "deadline", "obs", "followers", "finalized",
        "running_slot", "done",
    )

    def __init__(self, job_id: str, tenant: str, spec: JobSpec,
                 priority: int, timeout: Optional[float]) -> None:
        self.id = job_id
        self.tenant = tenant
        self.spec = spec
        self.job_hash = spec.job_hash
        self.priority = priority
        self.timeout = timeout
        self.state = protocol.QUEUED
        self.cached = False
        self.mode: Optional[str] = None
        self.submitted_at: float = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.elapsed: float = 0.0
        self.error: Optional[str] = None
        self.kind: Optional[str] = None
        self.result: Optional[dict] = None
        self.entry: Optional[Entry] = None
        self.future: Optional[Future] = None
        self.deadline: Optional[float] = None
        #: Per-job observability scope: followers subscribe here, and
        #: in-process execution installs it (contextvar) so simulator
        #: events land on this job's bus and nobody else's.
        self.obs = Observability()
        #: ``(conn, req_id, subscription)`` triples awaiting the final
        #: response.
        self.followers: list = []
        self.finalized = False
        self.running_slot = False
        self.done = threading.Event()

    def to_dict(self, with_result: bool = False) -> dict:
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "workload": self.spec.workload,
            "scheduler": self.spec.scheduler,
            "label": self.spec.label(),
            "hash": self.job_hash,
            "priority": self.priority,
            "cached": self.cached,
            "mode": self.mode,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed": self.elapsed,
            "error": self.error,
            "kind": self.kind,
        }
        if with_result and self.result is not None:
            out["metrics"] = self.result
        return out


class _Conn:
    """One accepted client connection (reader thread + locked writer)."""

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.peer = peer
        self.wlock = threading.Lock()
        self.alive = True
        #: Jobs this connection follows (cleaned up on disconnect).
        self.followed: list[Job] = []

    def send(self, doc: Mapping[str, Any]) -> bool:
        try:
            data = protocol.encode_line(doc)
        except (TypeError, ValueError):
            data = protocol.encode_line(protocol.make_error(
                doc.get("id"), protocol.INTERNAL, "unserialisable response"
            ))
        with self.wlock:
            if not self.alive:
                return False
            try:
                self.sock.sendall(data)
                return True
            except OSError:
                self.alive = False
                return False

    def close(self) -> None:
        with self.wlock:
            self.alive = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class Server:
    """The scheduling service.  ``start()`` binds and spawns threads;
    ``serve_forever()`` blocks until shutdown completes."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        obs: Optional[Observability] = None,
        worker_fn: Optional[Callable] = None,
    ) -> None:
        self.config = config or ServeConfig()
        #: Daemon-wide observer (events mirror to it in addition to the
        #: per-job buses).  Captured eagerly: server threads run in
        #: fresh contexts and would not see the caller's installed
        #: default.
        self._obs = obs if obs is not None else current_observer()
        #: Test hook: substitute job body (``worker_fn(spec) -> dict``).
        self.worker_fn = worker_fn
        self.metrics = ServeMetrics(
            getattr(self._obs, "metrics", None)
        )
        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)
        self._queue = FairQueue(
            quantum=self.config.quantum, weights=self.config.tenant_weights
        )
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._inflight = 0
        self._seq = 0
        self._state = "idle"  # idle -> serving -> draining -> stopped
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._drain = True
        self._threads: list[threading.Thread] = []
        self._conns: set[_Conn] = set()
        self._listeners: list[socket.socket] = []
        self._t0 = time.perf_counter()
        self.tcp_address: Optional[tuple[str, int]] = None
        self.unix_address: Optional[str] = None
        self.served = 0
        # Suite snapshots always go through a cache root (pool workers
        # load models from disk); result read-through is optional.
        self._store = ResultCache(self.config.cache_dir)
        self.cache: Optional[ResultCache] = (
            self._store if self.config.use_cache else None
        )
        self._exec: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Server":
        with self._lock:
            if self._state != "idle":
                raise ServeError(f"server already {self._state}")
            self._state = "serving"
        tcp = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        tcp.listen(64)
        self.tcp_address = tcp.getsockname()[:2]
        self._listeners.append(tcp)
        if self.config.unix_path:
            path = Path(self.config.unix_path)
            if path.exists():
                path.unlink()
            path.parent.mkdir(parents=True, exist_ok=True)
            ux = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            ux.bind(str(path))
            ux.listen(64)
            self.unix_address = str(path)
            self._listeners.append(ux)
        if self.config.pool_mode:
            # Fork every pool worker now, before the accept/reader
            # threads exist: the executor otherwise forks lazily at
            # first submit, and forking a multi-threaded process risks
            # inheriting a lock mid-acquisition into the child, which
            # then deadlocks before it ever reads a task.
            pool, _ = pool_mod.get_pool(self.config.workers, [])
            pool.prewarm()
        else:
            self._exec = ThreadPoolExecutor(
                max_workers=self.config.capacity,
                thread_name_prefix="repro-serve-job",
            )
        for sock in self._listeners:
            t = threading.Thread(
                target=self._accept_loop, args=(sock,), daemon=True,
                name="repro-serve-accept",
            )
            t.start()
            self._threads.append(t)
        sched = threading.Thread(
            target=self._scheduler_loop, daemon=True, name="repro-serve-sched"
        )
        sched.start()
        self._threads.append(sched)
        self._emit_server(
            "serve_started",
            tcp=f"{self.tcp_address[0]}:{self.tcp_address[1]}",
            unix=self.unix_address, workers=self.config.workers,
        )
        self._started.set()
        return self

    def serve_forever(self) -> None:
        self._stopped.wait()

    def request_shutdown(self, drain: bool = True) -> None:
        """Stop admitting; drain (or cancel) queued work, then stop."""
        to_cancel: list[Job] = []
        with self._wake:
            if self._state == "stopped":
                return
            if self._state == "idle":
                # Never started: nothing to drain, no scheduler to run
                # the shutdown tail.
                self._state = "stopped"
                self._stopped.set()
                return
            self._state = "draining"
            self._drain = drain
            if not drain:
                to_cancel = [e.item for e in self._queue.drain()]
                self.metrics.queue_depth.set(0)
            self._wake.notify_all()
        self._emit_server(
            "serve_draining",
            queued=len(self._queue), running=self._inflight,
        )
        for job in to_cancel:
            self._finalize(job, protocol.CANCELLED)

    def close(self, timeout: float = 30.0) -> None:
        """Cancel queued work and wait for shutdown to complete."""
        self.request_shutdown(drain=False)
        self._stopped.wait(timeout)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _emit_server(self, type: str, **fields: Any) -> None:
        bus = getattr(self._obs, "bus", None)
        if isinstance(bus, EventBus) and bus.active:
            bus.emit(type, self._now(), **fields)

    def _emit_job(self, job: Job, type: str, **fields: Any) -> None:
        now = self._now()
        if job.obs.bus.active:
            job.obs.bus.emit(type, now, job=job.id, tenant=job.tenant, **fields)
        bus = getattr(self._obs, "bus", None)
        if isinstance(bus, EventBus) and bus.active:
            bus.emit(type, now, job=job.id, tenant=job.tenant, **fields)

    # ------------------------------------------------------------------
    # Socket handling
    # ------------------------------------------------------------------
    def _accept_loop(self, listener: socket.socket) -> None:
        while True:
            try:
                sock, addr = listener.accept()
            except OSError:
                return  # listener closed during shutdown
            conn = _Conn(sock, str(addr))
            with self._lock:
                self._conns.add(conn)
            t = threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name="repro-serve-conn",
            )
            t.start()

    def _reader_loop(self, conn: _Conn) -> None:
        try:
            reader = conn.sock.makefile("rb")
            for raw in reader:
                line = raw.strip()
                if not line:
                    continue
                doc: dict = {}
                try:
                    doc = protocol.decode_line(line)
                    req_id, method, tenant, params = protocol.parse_request(doc)
                except protocol.ProtocolError as exc:
                    conn.send(protocol.make_error(
                        doc.get("id") if isinstance(doc, dict) else None,
                        exc.code, exc.message,
                    ))
                    continue
                try:
                    self._dispatch_rpc(conn, req_id, method, tenant, params)
                except protocol.ProtocolError as exc:
                    conn.send(protocol.make_error(req_id, exc.code, exc.message))
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    conn.send(protocol.make_error(
                        req_id, protocol.INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    ))
        except (OSError, ValueError):
            pass
        finally:
            self._drop_conn(conn)

    def _drop_conn(self, conn: _Conn) -> None:
        conn.close()
        with self._lock:
            self._conns.discard(conn)
            followed, conn.followed = conn.followed, []
            orphaned = []
            for job in followed:
                kept = []
                for c, rid, sub in job.followers:
                    if c is conn:
                        orphaned.append(sub)
                    else:
                        kept.append((c, rid, sub))
                job.followers = kept
        for sub in orphaned:
            sub.close()

    # ------------------------------------------------------------------
    # RPC dispatch
    # ------------------------------------------------------------------
    def _dispatch_rpc(self, conn: _Conn, req_id: Any, method: str,
                      tenant: str, params: dict) -> None:
        if method == "ping":
            conn.send(protocol.make_response(req_id, {
                "pong": True, "version": __version__,
                "protocol": protocol.PROTOCOL_VERSION, "state": self._state,
            }))
        elif method == "submit":
            self._rpc_submit(conn, req_id, tenant, params)
        elif method == "status":
            job = self._lookup(params)
            conn.send(protocol.make_response(
                req_id, job.to_dict(with_result=params.get("result", True))
            ))
        elif method == "jobs":
            self._rpc_jobs(conn, req_id, params)
        elif method == "cancel":
            self._rpc_cancel(conn, req_id, params)
        elif method == "metrics":
            with self._lock:
                self.metrics.queue_depth.set(len(self._queue))
            conn.send(protocol.make_response(req_id, {
                "prometheus": self.metrics.render_prometheus(),
                "snapshot": self.metrics.snapshot(),
            }))
        elif method == "shutdown":
            drain = bool(params.get("drain", True))
            conn.send(protocol.make_response(
                req_id, {"draining": drain, "state": "draining"}
            ))
            self.request_shutdown(drain=drain)

    def _lookup(self, params: dict) -> Job:
        job_id = params.get("job")
        job = self._jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            raise protocol.ProtocolError(
                protocol.UNKNOWN_JOB, f"no such job {job_id!r}"
            )
        return job

    def _rpc_jobs(self, conn: _Conn, req_id: Any, params: dict) -> None:
        tenant = params.get("tenant")
        with self._lock:
            jobs = [self._jobs[i] for i in self._order]
            if tenant:
                jobs = [j for j in jobs if j.tenant == tenant]
            payload = {
                "state": self._state,
                "queued": len(self._queue),
                "running": self._inflight,
                "depths": self._queue.depths(),
                "jobs": [j.to_dict() for j in jobs],
            }
        conn.send(protocol.make_response(req_id, payload))

    def _rpc_cancel(self, conn: _Conn, req_id: Any, params: dict) -> None:
        job = self._lookup(params)
        cancelled = False
        with self._lock:
            if job.state == protocol.QUEUED and job.entry is not None:
                cancelled = self._queue.cancel(job.entry)
                self.metrics.queue_depth.set(len(self._queue))
            elif job.state == protocol.RUNNING and job.future is not None:
                cancelled = job.future.cancel()
        if cancelled:
            self._finalize(job, protocol.CANCELLED)
            conn.send(protocol.make_response(req_id, job.to_dict()))
        elif job.state in protocol.TERMINAL_STATES:
            raise protocol.ProtocolError(
                protocol.NOT_CANCELLABLE, f"job {job.id} already {job.state}"
            )
        else:
            raise protocol.ProtocolError(
                protocol.NOT_CANCELLABLE,
                f"job {job.id} is already executing and cannot be preempted",
            )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def _rpc_submit(self, conn: _Conn, req_id: Any, tenant: str,
                    params: dict) -> None:
        spec_dict = params.get("job")
        if not isinstance(spec_dict, dict):
            raise protocol.ProtocolError(
                protocol.BAD_REQUEST, "submit needs params.job (a JobSpec dict)"
            )
        try:
            spec = JobSpec.from_dict(spec_dict)
        except Exception as exc:  # noqa: BLE001 - structured reply
            raise protocol.ProtocolError(
                protocol.BAD_REQUEST, f"invalid job spec: {exc}"
            ) from None
        priority = int(params.get("priority", 0))
        timeout = params.get("timeout", self.config.job_timeout)
        timeout = float(timeout) if timeout is not None else None
        follow = bool(params.get("follow", False))

        with self._wake:
            if self._state != "serving":
                raise protocol.ProtocolError(
                    protocol.SHUTTING_DOWN,
                    f"daemon is {self._state}; not accepting submissions",
                )
            self._seq += 1
            job = Job(f"j{self._seq:06d}", tenant, spec, priority, timeout)
            job.submitted_at = self._now()
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._prune_history()
            self.metrics.submitted.inc(tenant=tenant)
            self.metrics.state_change(None, protocol.QUEUED)
            if follow:
                types = params.get("follow_types")
                sub = job.obs.bus.subscribe(
                    self._forwarder(conn, job),
                    types=frozenset(types) if types else DEFAULT_FOLLOW_TYPES,
                )
                job.followers.append((conn, req_id, sub))
                conn.followed.append(job)

        # Read-through: a repeat submission never touches the queue or
        # the pool — it is finalised straight from the cache entry.
        entry = self.cache.get(job.job_hash) if self.cache is not None else None
        if entry is not None:
            self.metrics.cache_hits.inc()
            self._emit_job(
                job, "job_submitted", workload=spec.workload,
                scheduler=spec.scheduler, priority=priority, cached=True,
            )
            self._finalize(
                job, protocol.DONE, metrics_dict=entry["metrics"],
                elapsed=0.0, cached=True,
            )
            if not follow:
                conn.send(protocol.make_response(
                    req_id, job.to_dict(with_result=True)
                ))
            return

        with self._wake:
            if self._state != "serving":
                # A non-drain shutdown raced between admission and
                # enqueue; the queue sweep cannot see this job, so
                # cancel it here.
                aborted = True
            else:
                aborted = False
                job.entry = self._queue.push(
                    job, tenant=tenant, priority=priority
                )
                self.metrics.queue_depth.set(len(self._queue))
                self._wake.notify_all()
        if aborted:
            self._finalize(job, protocol.CANCELLED)
            if not follow:
                conn.send(protocol.make_response(req_id, job.to_dict()))
            return
        self._emit_job(
            job, "job_submitted", workload=spec.workload,
            scheduler=spec.scheduler, priority=priority, cached=False,
        )
        if not follow:
            conn.send(protocol.make_response(req_id, job.to_dict()))

    def _forwarder(self, conn: _Conn, job: Job) -> Callable:
        def forward(event) -> None:
            # Never let a slow/broken follower disturb the job: send
            # errors mark the connection dead and are swallowed.
            try:
                conn.send(protocol.make_event(job.id, event.to_json()))
            except Exception:  # noqa: BLE001 - follower must not kill the job
                pass

        return forward

    def _prune_history(self) -> None:
        # Locked by caller.  Drop oldest terminal jobs beyond the cap.
        excess = len(self._order) - self.config.max_history
        if excess <= 0:
            return
        kept: list[str] = []
        for job_id in self._order:
            job = self._jobs[job_id]
            if excess > 0 and job.state in protocol.TERMINAL_STATES:
                del self._jobs[job_id]
                excess -= 1
            else:
                kept.append(job_id)
        self._order = kept

    # ------------------------------------------------------------------
    # Scheduling + execution
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while True:
            job: Optional[Job] = None
            expired: list[Job] = []
            with self._wake:
                expired = self._collect_timeouts()
                if (
                    self._state == "draining"
                    and self._inflight == 0
                    and not expired
                    and len(self._queue) == 0
                ):
                    break
                if self._state != "stopped" and self._inflight < self.config.capacity:
                    entry = self._queue.pop()
                    if entry is not None:
                        job = entry.item
                        job.running_slot = True
                        self._inflight += 1
                        self.metrics.queue_depth.set(len(self._queue))
                if job is None and not expired:
                    self._maybe_reap_idle_locked()
                    self._wake.wait(timeout=0.1)
                    continue
            for stale in expired:
                self._finalize(
                    stale, protocol.TIMEOUT,
                    error=f"exceeded timeout of {stale.timeout:g} s",
                    kind="timeout",
                    elapsed=(self._now() - (stale.started_at or stale.submitted_at)),
                )
            if job is not None:
                try:
                    self._dispatch(job)
                except Exception as exc:  # noqa: BLE001 - job-scoped failure
                    self._finalize(
                        job, protocol.FAILED,
                        error=f"{type(exc).__name__}: {exc}", kind="error",
                    )
        self._finish_shutdown()

    def _collect_timeouts(self) -> list[Job]:
        # Locked by caller.  Pool-mode deadline enforcement: a future
        # that cannot be cancelled keeps its worker slot busy (leak
        # accounting mirrors the sweep engine) but the job is failed
        # now and its late result discarded.
        expired: list[Job] = []
        now = time.monotonic()
        for job_id in self._order:
            job = self._jobs.get(job_id)
            if (
                job is None or job.finalized or job.deadline is None
                or job.state != protocol.RUNNING or now < job.deadline
            ):
                continue
            if job.future is not None and not job.future.cancel():
                pool = pool_mod.active_pool()
                if pool is not None:
                    pool.leaked += 1
            expired.append(job)
        return expired

    def _maybe_reap_idle_locked(self) -> None:
        if (
            self.config.idle_reap_s is not None
            and self.config.pool_mode
            and self._inflight == 0
            and pool_mod.reap_idle_pool(self.config.idle_reap_s)
        ):
            self.metrics.pool_reaps.inc()

    def _dispatch(self, job: Job) -> None:
        if self.config.pool_mode:
            self._dispatch_pool(job)
        else:
            assert self._exec is not None
            self.metrics.inline_dispatches.inc()
            self._exec.submit(self._run_inline, job)

    def _mark_started(self, job: Job, mode: str) -> None:
        with self._lock:
            job.state = protocol.RUNNING
            job.mode = mode
            job.started_at = self._now()
            if job.timeout is not None and mode == "pool":
                job.deadline = time.monotonic() + job.timeout
            self.metrics.state_change(protocol.QUEUED, protocol.RUNNING)
        self._emit_job(
            job, "job_started", workload=job.spec.workload,
            scheduler=job.spec.scheduler, mode=mode,
        )

    # -- pool mode ------------------------------------------------------
    def _dispatch_pool(self, job: Job) -> None:
        spec = job.spec
        suite_path: Optional[str] = None
        from repro.schedulers.registry import needs_suite

        if self.worker_fn is None and needs_suite(spec.scheduler):
            suite_path = str(
                self._store.ensure_suite(spec.platform, spec.profile_seed)
            )
        # A suite-needing job may replace the start()-time pool with a
        # freshly warmed one, forking under live threads.  A worker
        # wedged by such a fork surfaces as a job timeout -> leaked
        # pool -> disposal (stragglers are killed), never as a hang.
        pool, _ = pool_mod.get_pool(
            self.config.workers, [suite_path] if suite_path else []
        )
        self.metrics.pool_dispatches.inc()
        self._mark_started(job, mode="pool")
        if self.worker_fn is not None:
            fut = pool.submit(
                pool_mod.run_chunk_fn, self.worker_fn, [spec.to_dict()]
            )
        else:
            fut = pool.submit(
                pool_mod.run_chunk, [spec.to_dict()], [suite_path]
            )
        with self._lock:
            job.future = fut
        fut.add_done_callback(lambda f: self._on_pool_done(job, f))

    def _on_pool_done(self, job: Job, fut: Future) -> None:
        if fut.cancelled():
            return  # cancel() path already finalised the job
        exc = fut.exception()
        if exc is not None:
            if isinstance(exc, BrokenProcessPool):
                pool = pool_mod.active_pool()
                if pool is not None:
                    pool.broken = True
                kind = "broken-pool"
            else:
                kind = "error"
            self._finalize(
                job, protocol.FAILED,
                error=f"{type(exc).__name__}: {exc}", kind=kind,
            )
            return
        res = fut.result()[0]
        if res.get("ok"):
            self._finalize(
                job, protocol.DONE, metrics_dict=res["metrics"],
                elapsed=float(res.get("elapsed", 0.0)),
            )
        else:
            self._finalize(
                job, protocol.FAILED,
                error=res.get("error", "unknown worker error"), kind="error",
                elapsed=float(res.get("elapsed", 0.0)),
            )

    # -- in-process mode ------------------------------------------------
    def _run_inline(self, job: Job) -> None:
        self._mark_started(job, mode="inline")
        body = self.worker_fn
        if body is None:
            from repro.sweep.engine import execute_job
            body = execute_job
        t0 = time.perf_counter()
        try:
            # Contextvar-scoped install: the Executor built inside
            # picks up *this job's* observer in *this thread* only, so
            # its run/task/dvfs events stream to this job's followers
            # and to nobody else — even with other jobs running
            # concurrently on sibling threads.
            with job.obs.as_current():
                metrics = body(job.spec)
            elapsed = time.perf_counter() - t0
        except Exception as exc:  # noqa: BLE001 - job-scoped failure
            self._finalize(
                job, protocol.FAILED, error=f"{type(exc).__name__}: {exc}",
                kind="error", elapsed=time.perf_counter() - t0,
            )
            return
        if job.timeout is not None and elapsed > job.timeout:
            # In-process execution cannot be preempted; the budget is
            # enforced post-hoc exactly like the sweep engine's serial
            # path.
            self._finalize(
                job, protocol.TIMEOUT,
                error=f"exceeded timeout of {job.timeout:g} s",
                kind="timeout", elapsed=elapsed,
            )
        else:
            self._finalize(job, protocol.DONE, metrics_dict=metrics,
                           elapsed=elapsed)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finalize(
        self,
        job: Job,
        state: str,
        *,
        metrics_dict: Optional[dict] = None,
        elapsed: float = 0.0,
        error: Optional[str] = None,
        kind: Optional[str] = None,
        cached: bool = False,
    ) -> None:
        if metrics_dict is not None:
            # Normalise exactly like the sweep engine so cached, pooled
            # and inline results are structurally identical on the wire.
            metrics_dict = json.loads(json.dumps(metrics_dict))
        if (
            state == protocol.DONE and not cached
            and self.cache is not None and metrics_dict is not None
        ):
            # Write-back BEFORE publishing the terminal state: a client
            # that sees ``done`` and immediately resubmits the same
            # spec must hit the cache (read-your-writes), not race the
            # write and re-execute.
            try:
                self.cache.put(job.spec, job.job_hash, metrics_dict, elapsed)
            except OSError:
                pass  # cache write-back is best-effort
        with self._wake:
            if job.finalized:
                return
            job.finalized = True
            old = job.state
            job.state = state
            job.finished_at = self._now()
            job.result = metrics_dict
            job.elapsed = elapsed
            job.error = error
            job.kind = kind
            job.cached = cached
            if job.running_slot:
                job.running_slot = False
                self._inflight -= 1
            self.metrics.state_change(old, state)
            self.metrics.served.inc(tenant=job.tenant, state=state)
            if state == protocol.DONE and not cached:
                self.metrics.job_seconds.observe(elapsed)
            self.served += 1
            self._wake.notify_all()
        event = {
            protocol.DONE: "job_finished",
            protocol.FAILED: "job_failed",
            protocol.TIMEOUT: "job_failed",
            protocol.CANCELLED: "job_cancelled",
        }[state]
        if event == "job_finished":
            self._emit_job(job, event, cached=cached, elapsed=elapsed)
        elif event == "job_failed":
            self._emit_job(job, event, error=error or "", kind=kind or "error")
        else:
            self._emit_job(job, event)
        self._respond_followers(job)
        job.done.set()

    def _respond_followers(self, job: Job) -> None:
        with self._lock:
            followers, job.followers = job.followers, []
        for conn, req_id, sub in followers:
            sub.close()
            conn.send(protocol.make_response(
                req_id, job.to_dict(with_result=True)
            ))
            with self._lock:
                if job in conn.followed:
                    conn.followed.remove(job)

    # ------------------------------------------------------------------
    # Shutdown tail
    # ------------------------------------------------------------------
    def _finish_shutdown(self) -> None:
        with self._lock:
            self._state = "stopped"
            conns = list(self._conns)
        self._emit_server(
            "serve_stopped", served=self.served,
            reason="drained" if self._drain else "aborted",
        )
        for listener in self._listeners:
            try:
                listener.close()
            except OSError:
                pass
        if self.unix_address:
            try:
                Path(self.unix_address).unlink()
            except OSError:
                pass
        for conn in conns:
            conn.close()
        if self._exec is not None:
            self._exec.shutdown(wait=True)
        if self.config.pool_mode:
            pool_mod.shutdown_warm_pool()
        self._stopped.set()
