"""Sweep progress & telemetry.

The engine drives a single mutable :class:`SweepTelemetry` and invokes
an optional progress hook ``hook(event, job, telemetry)`` at every
state transition.  Event names:

``queued``   job admitted to the sweep
``start``    job began executing (an attempt, incl. retries)
``hit``      job satisfied from the result cache
``done``     job finished executing successfully
``retry``    attempt failed, job re-queued
``failed``   job exhausted its attempts (or timed out)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

EVENTS = ("queued", "start", "hit", "done", "retry", "failed")


class ProgressHook(Protocol):  # pragma: no cover - typing aid
    def __call__(self, event: str, job, telemetry: "SweepTelemetry") -> None: ...


@dataclass
class SweepTelemetry:
    """Counters + timings for one sweep invocation."""

    total: int = 0
    queued: int = 0
    running: int = 0
    done: int = 0
    failed: int = 0
    retries: int = 0
    cache_hits: int = 0
    cache_corrupted: int = 0
    workers: int = 1
    #: Wall-clock duration of the whole sweep (seconds).
    wall_time: float = 0.0
    #: Sum of per-job execution times actually spent this sweep.
    exec_time: float = 0.0
    #: Sum of recorded execution times of cache-hit jobs — the
    #: wall-time the cache saved compared to a cold re-run.
    time_saved: float = 0.0
    #: Parallel mode: whether this sweep reused an already-warm pool
    #: (no re-fork, suites preloaded) instead of creating one.
    warm_pool_hit: bool = False
    #: Number of pool tasks dispatched (chunks; == jobs at chunk_size=1).
    chunks: int = 0
    #: Largest chunk size actually dispatched.
    chunk_size: int = 1
    #: Time the dispatcher spent submitting work and recording results
    #: (everything except waiting on the pool), seconds.
    dispatch_overhead: float = 0.0
    #: Bytes of job/suite-path payload pickled into pool tasks.
    bytes_serialized: int = 0
    #: Timed-out jobs whose worker could not be cancelled and kept
    #: running — each one silently holds a pool slot until it finishes.
    timeout_leaked: int = 0
    #: Jobs that forked their workload graph from a cached template
    #: (serial sweeps and warm-pool workers; see repro.sweep.fork).
    state_forks: int = 0
    #: Jobs that built their workload graph from scratch (each grid
    #: point's first visit in its executing process).
    cold_starts: int = 0

    @property
    def executed(self) -> int:
        return self.done

    @property
    def completed(self) -> int:
        return self.done + self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def speedup(self) -> float:
        """Estimated serial-cold wall time over actual wall time.

        Combines parallelism (executed job-seconds landing on many
        cores) and caching (job-seconds not spent at all).
        """
        if self.wall_time <= 0:
            return 1.0
        return (self.exec_time + self.time_saved) / self.wall_time

    def summary_lines(self) -> list[str]:
        lines = [
            f"jobs: {self.total} total, {self.done} executed, "
            f"{self.cache_hits} cache hits, {self.failed} failed"
            + (f", {self.retries} retries" if self.retries else ""),
            f"cache hit rate: {self.hit_rate * 100.0:.1f}%"
            + (
                f" ({self.cache_corrupted} corrupted entries recovered)"
                if self.cache_corrupted else ""
            ),
            f"wall time: {self.wall_time:.2f} s with {self.workers} worker(s); "
            f"simulated job time: {self.exec_time:.2f} s executed + "
            f"{self.time_saved:.2f} s saved by the cache",
            f"speedup vs serial cold run: {self.speedup:.2f}x",
        ]
        if self.chunks:
            lines.append(
                f"dispatch: {self.chunks} chunk(s), max size {self.chunk_size}, "
                f"{self.bytes_serialized} B serialized, "
                f"{self.dispatch_overhead * 1000.0:.1f} ms overhead, "
                f"{'warm' if self.warm_pool_hit else 'cold'} pool"
            )
        if self.state_forks or self.cold_starts:
            lines.append(
                f"state sharing: {self.state_forks} graph fork(s), "
                f"{self.cold_starts} cold start(s)"
            )
        if self.timeout_leaked:
            lines.append(
                f"timeout leaks: {self.timeout_leaked} worker slot(s) held "
                f"by timed-out jobs still running (pool recycled)"
            )
        return lines

    def render_summary(self) -> str:
        return "\n".join(self.summary_lines())

    def publish_to(self, registry) -> None:
        """Fold this sweep's counters into a
        :class:`repro.obs.MetricRegistry` (counters accumulate across
        sweeps; gauges describe the latest sweep)."""
        jobs = registry.counter(
            "sweep_jobs_total", "sweep jobs by final state", ("state",)
        )
        jobs.inc(self.done, state="executed")
        jobs.inc(self.cache_hits, state="cache_hit")
        jobs.inc(self.failed, state="failed")
        registry.counter(
            "sweep_retries_total", "failed attempts re-queued"
        ).inc(self.retries)
        registry.counter(
            "sweep_wall_seconds_total", "wall time spent in sweeps"
        ).inc(self.wall_time)
        registry.counter(
            "sweep_exec_seconds_total", "per-job execution seconds spent"
        ).inc(self.exec_time)
        registry.counter(
            "sweep_saved_seconds_total", "execution seconds saved by the cache"
        ).inc(self.time_saved)
        registry.counter(
            "sweep_chunks_total", "pool tasks dispatched"
        ).inc(self.chunks)
        registry.counter(
            "sweep_bytes_serialized_total", "pickled dispatch payload bytes"
        ).inc(self.bytes_serialized)
        registry.counter(
            "sweep_timeout_leaked_total",
            "timed-out jobs left holding a worker slot",
        ).inc(self.timeout_leaked)
        registry.counter(
            "sweep_state_forked",
            "jobs served by forking a cached workload-graph template",
        ).inc(self.state_forks)
        registry.counter(
            "sweep_cold_starts",
            "jobs that built their workload graph from scratch",
        ).inc(self.cold_starts)
        registry.gauge(
            "sweep_workers", "worker processes of the latest sweep"
        ).set(self.workers)
        registry.gauge(
            "sweep_chunk_size", "largest chunk dispatched in the latest sweep"
        ).set(self.chunk_size)
        registry.gauge(
            "sweep_warm_pool_hit",
            "whether the latest parallel sweep reused the warm pool",
        ).set(int(self.warm_pool_hit))


def console_progress(stream_write: Callable[[str], None] = print) -> ProgressHook:
    """A progress hook that prints one line per state transition."""

    def hook(event: str, job, telemetry: SweepTelemetry) -> None:
        if event == "queued":
            return
        width = len(str(telemetry.total))
        tag = {"hit": "cache-hit", "failed": "FAILED"}.get(event, event)
        stream_write(
            f"[{telemetry.completed + telemetry.failed:>{width}}/"
            f"{telemetry.total}] {tag:<9s} {job.label()}"
        )

    return hook
