"""Declarative sweep specifications.

A paper figure is a grid of ``(workload, scheduler, platform, scale,
seed, repetition)`` runs.  :class:`JobSpec` describes exactly one such
run *as data* — immutable, picklable, and content-hashable — and
:class:`SweepSpec` describes a whole grid and enumerates it in a
deterministic order.

The canonical hash is what makes result caching safe: it covers every
input that can change a run's outcome, plus :data:`SCHEMA_VERSION`,
which must be bumped whenever simulator changes invalidate archived
results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import SweepError

#: Bump to invalidate every previously cached sweep result (include it
#: in the job hash so stale entries simply stop matching).
#: v2: jobs carry an optional fault campaign (repro.faults).
#: v3: jobs carry an optional open-arrival spec (repro.workloads.arrivals).
SCHEMA_VERSION = 3

_SCALARS = (str, int, float, bool, type(None))


def freeze(value: Any) -> Any:
    """Recursively convert dicts/lists into sorted, hashable tuples."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    raise SweepError(f"value {value!r} is not sweep-serialisable")


def _freeze_duck(value: Any, what: str) -> Any:
    """Freeze a spec-like attachment: a mapping/tuple form passes
    through, anything else must expose ``to_dict`` (duck-typed
    FaultCampaign / ArrivalSpec — avoids hard import cycles)."""
    if value is not None and not isinstance(value, _SCALARS + (tuple, list, Mapping)):
        to_dict = getattr(value, "to_dict", None)
        if to_dict is None:
            raise SweepError(f"{what} must be a spec or mapping, got {value!r}")
        value = to_dict()
    return freeze(value or {})


def thaw(value: Any) -> Any:
    """Inverse of :func:`freeze` (pair-tuples become dicts again)."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(v, tuple) and len(v) == 2 and isinstance(v[0], str)
            for v in value
        ):
            return {k: thaw(v) for k, v in value}
        return [thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class JobSpec:
    """One simulation run, described entirely as data.

    ``scheduler_kwargs`` / ``workload_overrides`` accept plain dicts and
    are canonicalised to sorted tuples on construction, so two specs
    built from differently-ordered dicts hash identically.
    """

    workload: str
    scheduler: str
    platform: str = "jetson-tx2"
    scale: float = 1.0
    seed: int = 11
    workload_seed: int = 3
    profile_seed: int = 0
    repetition: int = 0
    scheduler_kwargs: Any = ()
    workload_overrides: Any = ()
    #: Optional fault campaign (a FaultCampaign, its dict form, or ()).
    #: Canonicalised like the kwargs so faulted jobs hash differently
    #: from fault-free ones and cache correctly.
    faults: Any = ()
    #: Optional open-arrival stream (an ArrivalSpec, its dict form, or
    #: ()).  Canonicalised like ``faults``; when set, the run releases
    #: DAG instances over simulated time instead of everything at t=0.
    arrivals: Any = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "scheduler_kwargs", freeze(self.scheduler_kwargs or {}))
        object.__setattr__(self, "workload_overrides", freeze(self.workload_overrides or {}))
        object.__setattr__(self, "faults", _freeze_duck(self.faults, "faults"))
        object.__setattr__(self, "arrivals", _freeze_duck(self.arrivals, "arrivals"))

    # -- canonical form -------------------------------------------------
    def scheduler_kwargs_dict(self) -> dict:
        out = thaw(self.scheduler_kwargs)
        return out if isinstance(out, dict) else {}

    def workload_overrides_dict(self) -> dict:
        out = thaw(self.workload_overrides)
        return out if isinstance(out, dict) else {}

    def faults_dict(self) -> dict:
        out = thaw(self.faults)
        return out if isinstance(out, dict) else {}

    def fault_campaign(self):
        """The job's :class:`~repro.faults.spec.FaultCampaign`, or
        ``None`` when the job is fault-free."""
        data = self.faults_dict()
        if not data.get("faults"):
            return None
        from repro.faults.spec import FaultCampaign

        return FaultCampaign.from_dict(data)

    def arrivals_dict(self) -> dict:
        out = thaw(self.arrivals)
        return out if isinstance(out, dict) else {}

    def arrival_spec(self):
        """The job's :class:`~repro.workloads.arrivals.ArrivalSpec`, or
        ``None`` when the job is closed-system (everything at t=0)."""
        data = self.arrivals_dict()
        if not data.get("count"):
            return None
        from repro.workloads.arrivals import ArrivalSpec

        return ArrivalSpec.from_dict(data)

    @property
    def executor_seed(self) -> int:
        """Seed handed to the Executor (mirrors ``runner.run_one``)."""
        return self.seed + 1000 * self.repetition

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "platform": self.platform,
            "scale": self.scale,
            "seed": self.seed,
            "workload_seed": self.workload_seed,
            "profile_seed": self.profile_seed,
            "repetition": self.repetition,
            "scheduler_kwargs": self.scheduler_kwargs_dict(),
            "workload_overrides": self.workload_overrides_dict(),
            "faults": self.faults_dict(),
            "arrivals": self.arrivals_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def canonical_json(self) -> str:
        payload = dict(self.to_dict(), schema_version=SCHEMA_VERSION)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def job_hash(self) -> str:
        """Content hash over all run-relevant inputs + schema version."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def label(self) -> str:
        bits = f"{self.workload}/{self.scheduler}"
        if self.scale != 1.0:
            bits += f"@x{self.scale:g}"
        faults = self.faults_dict()
        if faults.get("faults"):
            bits += f"+{faults.get('name') or 'faults'}"
        arrivals = self.arrivals_dict()
        if arrivals.get("count"):
            bits += f"+{arrivals.get('pattern', 'arrivals')}x{arrivals['count']}"
        return f"{bits} rep{self.repetition}"


@dataclass(frozen=True)
class SweepSpec:
    """A full run grid: the cartesian product of the axes below.

    Enumeration order (:meth:`jobs`) is deterministic — workload-major,
    then scheduler, scale, repetition — so serial and parallel sweeps
    agree on job identity and result ordering.
    """

    workloads: Sequence[str]
    schedulers: Sequence[str]
    platform: str = "jetson-tx2"
    scales: Sequence[float] = (1.0,)
    repetitions: int = 2
    seed: int = 11
    workload_seed: int = 3
    profile_seed: int = 0
    scheduler_kwargs: Any = ()
    workload_overrides: Any = ()
    #: Fault campaign applied to every job of the grid (see JobSpec).
    faults: Any = ()
    #: Open-arrival spec applied to every job of the grid (see JobSpec).
    arrivals: Any = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "scales", tuple(float(s) for s in self.scales))
        object.__setattr__(self, "scheduler_kwargs", freeze(self.scheduler_kwargs or {}))
        object.__setattr__(self, "workload_overrides", freeze(self.workload_overrides or {}))
        object.__setattr__(self, "faults", _freeze_duck(self.faults, "faults"))
        object.__setattr__(self, "arrivals", _freeze_duck(self.arrivals, "arrivals"))
        if self.repetitions < 1:
            raise SweepError("a sweep needs at least one repetition")
        if not self.workloads or not self.schedulers:
            raise SweepError("a sweep needs at least one workload and scheduler")

    def __len__(self) -> int:
        return (
            len(self.workloads) * len(self.schedulers)
            * len(self.scales) * self.repetitions
        )

    def jobs(self) -> list[JobSpec]:
        return list(self)

    def __iter__(self) -> Iterator[JobSpec]:
        for wl in self.workloads:
            for sched in self.schedulers:
                for scale in self.scales:
                    for rep in range(self.repetitions):
                        yield JobSpec(
                            workload=wl,
                            scheduler=sched,
                            platform=self.platform,
                            scale=scale,
                            seed=self.seed,
                            workload_seed=self.workload_seed,
                            profile_seed=self.profile_seed,
                            repetition=rep,
                            scheduler_kwargs=self.scheduler_kwargs,
                            workload_overrides=self.workload_overrides,
                            faults=self.faults,
                            arrivals=self.arrivals,
                        )

    @property
    def sweep_hash(self) -> str:
        digest = hashlib.sha256()
        for job in self:
            digest.update(job.job_hash.encode())
        return digest.hexdigest()

    def describe(self) -> str:
        return (
            f"{len(self.workloads)} workloads x {len(self.schedulers)} "
            f"schedulers x {len(self.scales)} scales x "
            f"{self.repetitions} repetitions = {len(self)} jobs "
            f"on {self.platform}"
        )

    @classmethod
    def from_bench_config(
        cls,
        config,
        workloads: Sequence[str],
        schedulers: Sequence[str],
        scales: Sequence[float] | None = None,
        workload_overrides: Mapping[str, Any] | None = None,
    ) -> "SweepSpec":
        """Build a grid from a :class:`repro.bench.runner.BenchConfig`.

        The config's ``platform_factory`` must build a platform whose
        ``name`` is registered in ``repro.hw.platform.PLATFORM_FACTORIES``
        (true for all stock factories).
        """
        return cls(
            workloads=workloads,
            schedulers=schedulers,
            platform=config.platform_name(),
            scales=(config.scale,) if scales is None else scales,
            repetitions=config.repetitions,
            seed=config.seed,
            workload_seed=config.workload_seed,
            profile_seed=config.profile_seed,
            scheduler_kwargs=config.scheduler_kwargs,
            workload_overrides=workload_overrides or {},
        )
