"""Sweep execution engine.

Executes a :class:`~repro.sweep.spec.SweepSpec` (or an explicit job
list) either serially in-process — the default, used by the test suite
and the ported ``run_matrix`` — or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Both paths produce *identical* results for identical specs:

* the worker resolves the platform by registered name and re-derives
  the executor seed from the spec, exactly like the serial path;
* model suites cross a JSON round-trip in both modes (in-memory for
  serial, via the on-disk snapshot for workers) — JSON float
  serialisation round-trips exactly, so predictions are bit-identical;
* metrics are normalised through ``RunMetrics.to_dict`` -> JSON ->
  ``from_dict`` in both modes, so cached, serial and parallel results
  are indistinguishable.

Failures never crash a sweep: each job gets ``retries`` extra attempts
with linear backoff, and jobs that still fail (or exceed ``timeout``)
are reported as structured :class:`JobFailure` records.
"""

from __future__ import annotations

import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.errors import SweepError
from repro.runtime.metrics import RunMetrics, average_run_metrics
from repro.sweep.cache import ResultCache
from repro.sweep.spec import JobSpec, SweepSpec
from repro.sweep.telemetry import ProgressHook, SweepTelemetry

#: How often the parallel loop wakes up to check per-job timeouts.
_POLL_S = 0.05


# ----------------------------------------------------------------------
# Job execution (shared by the serial path and pool workers)
# ----------------------------------------------------------------------
_SUITE_MEMO: dict = {}


def _suite_from_snapshot(path: str):
    """Load a fitted suite snapshot, memoised per process."""
    from repro.models.io import load_suite

    suite = _SUITE_MEMO.get(path)
    if suite is None:
        suite = _SUITE_MEMO[path] = load_suite(path)
    return suite


def _suite_in_process(platform: str, profile_seed: int):
    """Fit (once) and JSON-round-trip a suite without touching disk."""
    from repro.hw.platform import platform_factory
    from repro.models.io import suite_from_dict, suite_to_dict
    from repro.models.training import profile_and_fit

    key = (platform, profile_seed)
    suite = _SUITE_MEMO.get(key)
    if suite is None:
        fitted = profile_and_fit(platform_factory(platform), seed=profile_seed)
        suite = _SUITE_MEMO[key] = suite_from_dict(
            json.loads(json.dumps(suite_to_dict(fitted)))
        )
    return suite


def execute_job(
    spec: JobSpec,
    suite=None,
    platform_factory: Optional[Callable] = None,
) -> dict:
    """Run one job; returns the JSON-normalised ``RunMetrics`` dict."""
    from repro.hw.platform import platform_factory as resolve_platform
    from repro.runtime.executor import Executor
    from repro.schedulers.registry import make_scheduler, needs_suite
    from repro.workloads.registry import build_workload

    factory = platform_factory or resolve_platform(spec.platform)
    if suite is None and needs_suite(spec.scheduler):
        suite = _suite_in_process(spec.platform, spec.profile_seed)
    sched = make_scheduler(spec.scheduler, suite, **spec.scheduler_kwargs_dict())
    graph = build_workload(
        spec.workload,
        scale=spec.scale,
        seed=spec.workload_seed,
        **spec.workload_overrides_dict(),
    )
    ex = Executor(
        factory(), sched, seed=spec.executor_seed,
        faults=spec.fault_campaign(),
    )
    metrics = ex.run(graph)
    metrics.workload = spec.workload
    # JSON round-trip so serial, parallel (pickled) and cached results
    # are structurally identical (e.g. tuples in extras become lists).
    return json.loads(json.dumps(metrics.to_dict()))


def _pool_worker(spec_dict: dict, suite_path: Optional[str]) -> dict:
    """Top-level (picklable) worker entry point."""
    spec = JobSpec.from_dict(spec_dict)
    suite = _suite_from_snapshot(suite_path) if suite_path else None
    return execute_job(spec, suite=suite)


# ----------------------------------------------------------------------
# Outcome records
# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """A job that produced metrics (freshly executed or cache hit)."""

    job: JobSpec
    job_hash: str
    metrics: RunMetrics
    cached: bool = False
    elapsed: float = 0.0
    attempts: int = 1


@dataclass
class JobFailure:
    """A job that exhausted its attempts (or timed out)."""

    job: JobSpec
    job_hash: str
    error: str
    kind: str = "error"  # "error" | "timeout" | "broken-pool"
    attempts: int = 1
    elapsed: float = 0.0


@dataclass
class SweepResult:
    """Everything a sweep produced, in job-submission order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    failures: list[JobFailure] = field(default_factory=list)
    telemetry: SweepTelemetry = field(default_factory=SweepTelemetry)

    def metrics(self) -> list[RunMetrics]:
        return [o.metrics for o in self.outcomes]

    def grouped(self) -> dict[tuple[str, str, float], list[RunMetrics]]:
        """``(workload, scheduler, scale) -> [metrics by repetition]``."""
        ordered = sorted(self.outcomes, key=lambda o: o.job.repetition)
        out: dict[tuple[str, str, float], list[RunMetrics]] = {}
        for o in ordered:
            key = (o.job.workload, o.job.scheduler, o.job.scale)
            out.setdefault(key, []).append(o.metrics)
        return out

    def averaged(self) -> dict[tuple[str, str, float], RunMetrics]:
        """Repetition-averaged metrics per grid point."""
        return {
            key: average_run_metrics(runs)
            for key, runs in self.grouped().items()
        }

    def raise_on_failure(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise SweepError(
                f"{len(self.failures)} job(s) failed; first: "
                f"{first.job.label()} [{first.kind}] {first.error}"
            )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def run_sweep(
    jobs: Union[SweepSpec, Sequence[JobSpec]],
    *,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.05,
    progress: Optional[ProgressHook] = None,
    platform_factory: Optional[Callable] = None,
    worker_fn: Optional[Callable] = None,
) -> SweepResult:
    """Execute a sweep and return outcomes + failures + telemetry.

    ``workers <= 1`` runs serially in-process (deterministic, no pool);
    larger values fan jobs out over a process pool.  ``cache`` enables
    the content-addressed result store: jobs whose hash is present are
    not executed at all.  ``timeout`` bounds one job's execution
    seconds; ``retries`` re-runs failed (not timed-out) jobs with
    ``backoff * attempt`` sleeps in between.

    ``platform_factory`` overrides by-name resolution for unregistered
    platforms (serial mode only).  ``worker_fn(spec) -> metrics-dict``
    substitutes the job body — used by tests to exercise the failure
    machinery without a simulator in the loop.
    """
    job_list = list(jobs.jobs() if isinstance(jobs, SweepSpec) else jobs)
    parallel = workers and workers > 1
    if parallel and platform_factory is not None:
        raise SweepError(
            "platform_factory overrides are serial-only; register the "
            "platform (repro.hw.platform.register_platform_factory) for "
            "parallel sweeps"
        )
    result = SweepResult()
    t = result.telemetry
    t.total = len(job_list)
    t.workers = max(1, int(workers) if workers else 1)
    notify = progress or (lambda event, job, telemetry: None)

    started = time.perf_counter()
    pending: list[tuple[JobSpec, str]] = []
    outcome_at: dict[str, Union[JobOutcome, JobFailure]] = {}
    for job in job_list:
        h = job.job_hash
        t.queued += 1
        notify("queued", job, t)
        entry = cache.get(h) if cache is not None else None
        if entry is not None:
            t.cache_hits += 1
            t.time_saved += float(entry["elapsed"])
            outcome = JobOutcome(
                job, h, RunMetrics.from_dict(entry["metrics"]),
                cached=True, elapsed=0.0,
            )
            outcome_at[h] = outcome
            notify("hit", job, t)
        else:
            pending.append((job, h))
    if cache is not None:
        t.cache_corrupted = cache.stats.corrupted

    if pending:
        if parallel:
            _run_parallel(
                pending, outcome_at, t, notify,
                workers=int(workers), cache=cache, timeout=timeout,
                retries=retries, backoff=backoff, worker_fn=worker_fn,
            )
        else:
            _run_serial(
                pending, outcome_at, t, notify,
                cache=cache, timeout=timeout, retries=retries,
                backoff=backoff, platform_factory=platform_factory,
                worker_fn=worker_fn,
            )

    t.wall_time = time.perf_counter() - started
    for job in job_list:
        rec = outcome_at.get(job.job_hash)
        if isinstance(rec, JobOutcome):
            result.outcomes.append(rec)
        elif isinstance(rec, JobFailure):
            result.failures.append(rec)
    return result


def _record_success(
    job: JobSpec, h: str, metrics_dict: dict, elapsed: float, attempts: int,
    outcome_at, t: SweepTelemetry, cache: Optional[ResultCache],
) -> JobOutcome:
    if cache is not None:
        cache.put(job, h, metrics_dict, elapsed)
    outcome = JobOutcome(
        job, h, RunMetrics.from_dict(metrics_dict),
        cached=False, elapsed=elapsed, attempts=attempts,
    )
    outcome_at[h] = outcome
    t.done += 1
    t.exec_time += elapsed
    return outcome


def _run_serial(
    pending, outcome_at, t: SweepTelemetry, notify,
    *, cache, timeout, retries, backoff, platform_factory, worker_fn,
) -> None:
    body = worker_fn or (
        lambda spec: execute_job(spec, platform_factory=platform_factory)
    )
    for job, h in pending:
        attempts = 0
        while True:
            attempts += 1
            notify("start", job, t)
            t.running = 1
            t0 = time.perf_counter()
            try:
                metrics_dict = body(job)
                elapsed = time.perf_counter() - t0
                error = None
            except Exception as exc:  # noqa: BLE001 - contained per job
                elapsed = time.perf_counter() - t0
                error = f"{type(exc).__name__}: {exc}"
            finally:
                t.running = 0
            if error is None and timeout is not None and elapsed > timeout:
                # Serial mode cannot preempt a running simulation; the
                # budget is enforced post-hoc and the job is *not*
                # retried (it would only time out again).
                outcome_at[h] = JobFailure(
                    job, h, f"exceeded timeout of {timeout:g} s",
                    kind="timeout", attempts=attempts, elapsed=elapsed,
                )
                t.failed += 1
                notify("failed", job, t)
                break
            if error is None:
                _record_success(
                    job, h, metrics_dict, elapsed, attempts, outcome_at, t, cache
                )
                notify("done", job, t)
                break
            if attempts <= retries:
                t.retries += 1
                notify("retry", job, t)
                if backoff > 0:
                    time.sleep(backoff * attempts)
                continue
            outcome_at[h] = JobFailure(
                job, h, error, kind="error", attempts=attempts, elapsed=elapsed
            )
            t.failed += 1
            notify("failed", job, t)
            break


def _run_parallel(
    pending, outcome_at, t: SweepTelemetry, notify,
    *, workers, cache, timeout, retries, backoff, worker_fn,
) -> None:
    queue = deque((job, h, 1) for job, h in pending)
    suite_paths = _prepare_suites(pending, cache)
    in_flight: dict = {}

    def submit(pool) -> None:
        while queue and len(in_flight) < workers:
            job, h, attempt = queue.popleft()
            if worker_fn is not None:
                fut = pool.submit(worker_fn, job)
            else:
                fut = pool.submit(
                    _pool_worker, job.to_dict(),
                    suite_paths.get((job.platform, job.profile_seed)),
                )
            in_flight[fut] = (job, h, attempt, time.perf_counter())
            notify("start", job, t)
            t.running = len(in_flight)

    with ProcessPoolExecutor(max_workers=workers) as pool:
        try:
            submit(pool)
            while in_flight:
                done, _ = wait(
                    in_flight, timeout=_POLL_S if timeout else None,
                    return_when=FIRST_COMPLETED,
                )
                now = time.perf_counter()
                for fut in done:
                    job, h, attempt, t0 = in_flight.pop(fut)
                    elapsed = now - t0
                    exc = fut.exception()
                    if exc is None:
                        _record_success(
                            job, h, fut.result(), elapsed, attempt,
                            outcome_at, t, cache,
                        )
                        notify("done", job, t)
                    elif isinstance(exc, BrokenProcessPool):
                        outcome_at[h] = JobFailure(
                            job, h, f"process pool broke: {exc}",
                            kind="broken-pool", attempts=attempt,
                            elapsed=elapsed,
                        )
                        t.failed += 1
                        notify("failed", job, t)
                        raise exc
                    elif attempt <= retries:
                        t.retries += 1
                        notify("retry", job, t)
                        if backoff > 0:
                            time.sleep(backoff * attempt)
                        queue.append((job, h, attempt + 1))
                    else:
                        outcome_at[h] = JobFailure(
                            job, h, f"{type(exc).__name__}: {exc}",
                            kind="error", attempts=attempt, elapsed=elapsed,
                        )
                        t.failed += 1
                        notify("failed", job, t)
                if timeout is not None:
                    for fut in [
                        f for f, (_, _, _, t0) in in_flight.items()
                        if now - t0 > timeout
                    ]:
                        job, h, attempt, t0 = in_flight.pop(fut)
                        fut.cancel()  # the worker itself cannot be killed
                        outcome_at[h] = JobFailure(
                            job, h, f"exceeded timeout of {timeout:g} s",
                            kind="timeout", attempts=attempt,
                            elapsed=now - t0,
                        )
                        t.failed += 1
                        notify("failed", job, t)
                t.running = len(in_flight)
                submit(pool)
        except BrokenProcessPool as exc:
            # The pool died (OOM-killed worker, interpreter crash):
            # everything unresolved becomes a structured failure.
            for fut, (job, h, attempt, t0) in in_flight.items():
                outcome_at[h] = JobFailure(
                    job, h, f"process pool broke: {exc}",
                    kind="broken-pool", attempts=attempt,
                    elapsed=time.perf_counter() - t0,
                )
                t.failed += 1
                notify("failed", job, t)
            for job, h, attempt in queue:
                outcome_at[h] = JobFailure(
                    job, h, f"process pool broke: {exc}",
                    kind="broken-pool", attempts=attempt,
                )
                t.failed += 1
                notify("failed", job, t)
            in_flight.clear()
            queue.clear()
        t.running = 0


def _prepare_suites(
    pending: Sequence[tuple[JobSpec, str]], cache: Optional[ResultCache]
) -> dict[tuple[str, int], str]:
    """Write model-suite snapshots for every (platform, seed) that any
    pending job needs, before forking workers."""
    from repro.schedulers.registry import needs_suite

    needed = {
        (job.platform, job.profile_seed)
        for job, _ in pending
        if needs_suite(job.scheduler)
    }
    if not needed:
        return {}
    store = cache or ResultCache()
    return {
        key: str(store.ensure_suite(*key)) for key in sorted(needed)
    }
