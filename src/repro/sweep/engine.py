"""Sweep execution engine.

Executes a :class:`~repro.sweep.spec.SweepSpec` (or an explicit job
list) either serially in-process — the default, used by the test suite
and the ported ``run_matrix`` — or fanned out over a warm worker pool
(:mod:`repro.sweep.pool`).

Both paths produce *identical* results for identical specs:

* the worker resolves the platform by registered name and re-derives
  the executor seed from the spec, exactly like the serial path;
* model suites cross a JSON round-trip in both modes (in-memory for
  serial, via the on-disk snapshot for workers) — JSON float
  serialisation round-trips exactly, so predictions are bit-identical;
* metrics are normalised through ``RunMetrics.to_dict`` -> JSON ->
  ``from_dict`` in both modes, so cached, serial and parallel results
  are indistinguishable.

The parallel dispatcher is fully non-blocking: jobs are batched into
adaptive *chunks* (sized from a measured per-job cost estimate, so
fine-grained grids amortise pickle/IPC overhead; ``chunk_size=1``
preserves per-job futures), retry backoff is tracked as per-job due
times instead of inline sleeps, and failed jobs inside a chunk are
retried individually.

Failures never crash a sweep: each job gets ``retries`` extra attempts
with linear backoff, and jobs that still fail (or exceed ``timeout``)
are reported as structured :class:`JobFailure` records.
"""

from __future__ import annotations

import heapq
import json
import pickle
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from statistics import median
from typing import Callable, Optional, Sequence, Union

from repro.errors import SweepError
from repro.obs.api import current_observer, resolve_bus
from repro.runtime.metrics import RunMetrics, average_run_metrics
from repro.sweep import pool as pool_mod
from repro.sweep.cache import ResultCache
from repro.sweep.pool import suite_from_snapshot  # noqa: F401  (re-export)
from repro.sweep.spec import JobSpec, SweepSpec
from repro.sweep.telemetry import ProgressHook, SweepTelemetry

#: How often the parallel loop wakes up to check per-job timeouts.
_POLL_S = 0.05
#: Auto-chunking aims for roughly this much work per dispatched chunk.
_TARGET_CHUNK_S = 0.2
#: Upper bound on auto-chosen chunk sizes.
_MAX_CHUNK = 32
#: Cap on the number of per-job cost samples kept for the estimate.
_COST_SAMPLES = 64


def _suite_in_process(platform: str, profile_seed: int):
    """Fit (once) and JSON-round-trip a suite without touching disk."""
    from repro.hw.platform import platform_factory
    from repro.models.io import suite_from_dict, suite_to_dict
    from repro.models.training import profile_and_fit

    key = (platform, profile_seed)
    suite = pool_mod._SUITE_MEMO.get(key)
    if suite is None:
        fitted = profile_and_fit(platform_factory(platform), seed=profile_seed)
        suite = pool_mod._SUITE_MEMO[key] = suite_from_dict(
            json.loads(json.dumps(suite_to_dict(fitted)))
        )
    return suite


def execute_job(
    spec: JobSpec,
    suite=None,
    platform_factory: Optional[Callable] = None,
    fork_cache=None,
) -> dict:
    """Run one job; returns the JSON-normalised ``RunMetrics`` dict.

    ``fork_cache`` (a :class:`repro.sweep.fork.ForkCache`) shares
    job-invariant state — workload-graph templates and timing-breakdown
    memos — across the jobs this process executes.  Results are
    byte-identical with and without it.
    """
    from repro.hw.platform import platform_factory as resolve_platform
    from repro.runtime.executor import Executor
    from repro.schedulers.registry import make_scheduler, needs_suite
    from repro.workloads.registry import build_workload

    factory = platform_factory or resolve_platform(spec.platform)
    if suite is None and needs_suite(spec.scheduler):
        suite = _suite_in_process(spec.platform, spec.profile_seed)
    sched = make_scheduler(spec.scheduler, suite, **spec.scheduler_kwargs_dict())
    arrival_spec = spec.arrival_spec()
    plan = None
    if arrival_spec is not None:
        # Open-system job: the merged multi-instance graph replaces the
        # single workload graph (release annotations make it
        # single-use, so the fork cache is bypassed).
        plan = arrival_spec.build(
            spec.workload,
            scale=spec.scale,
            workload_seed=spec.workload_seed,
            overrides=spec.workload_overrides_dict(),
        )
        graph = plan.graph
        shared_bd = (
            fork_cache.breakdowns(spec.platform)
            if fork_cache is not None else None
        )
    elif fork_cache is not None:
        graph = fork_cache.graph_for(spec)
        shared_bd = fork_cache.breakdowns(spec.platform)
    else:
        graph = build_workload(
            spec.workload,
            scale=spec.scale,
            seed=spec.workload_seed,
            **spec.workload_overrides_dict(),
        )
        shared_bd = None
    ex = Executor(
        factory(), sched, seed=spec.executor_seed,
        faults=spec.fault_campaign(),
        arrivals=plan,
        shared_breakdowns=shared_bd,
    )
    metrics = ex.run(graph)
    metrics.workload = spec.workload
    # JSON round-trip so serial, parallel (pickled) and cached results
    # are structurally identical (e.g. tuples in extras become lists).
    return json.loads(json.dumps(metrics.to_dict()))


# ----------------------------------------------------------------------
# Outcome records
# ----------------------------------------------------------------------
@dataclass
class JobOutcome:
    """A job that produced metrics (freshly executed or cache hit)."""

    job: JobSpec
    job_hash: str
    metrics: RunMetrics
    cached: bool = False
    elapsed: float = 0.0
    attempts: int = 1


@dataclass
class JobFailure:
    """A job that exhausted its attempts (or timed out)."""

    job: JobSpec
    job_hash: str
    error: str
    kind: str = "error"  # "error" | "timeout" | "broken-pool"
    attempts: int = 1
    elapsed: float = 0.0


@dataclass
class SweepResult:
    """Everything a sweep produced, in job-submission order."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    failures: list[JobFailure] = field(default_factory=list)
    telemetry: SweepTelemetry = field(default_factory=SweepTelemetry)

    def metrics(self) -> list[RunMetrics]:
        return [o.metrics for o in self.outcomes]

    def grouped(self) -> dict[tuple[str, str, float], list[RunMetrics]]:
        """``(workload, scheduler, scale) -> [metrics by repetition]``."""
        ordered = sorted(self.outcomes, key=lambda o: o.job.repetition)
        out: dict[tuple[str, str, float], list[RunMetrics]] = {}
        for o in ordered:
            key = (o.job.workload, o.job.scheduler, o.job.scale)
            out.setdefault(key, []).append(o.metrics)
        return out

    def averaged(self) -> dict[tuple[str, str, float], RunMetrics]:
        """Repetition-averaged metrics per grid point."""
        return {
            key: average_run_metrics(runs)
            for key, runs in self.grouped().items()
        }

    def raise_on_failure(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise SweepError(
                f"{len(self.failures)} job(s) failed; first: "
                f"{first.job.label()} [{first.kind}] {first.error}"
            )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
def run_sweep(
    jobs: Union[SweepSpec, Sequence[JobSpec]],
    *,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    backoff: float = 0.05,
    progress: Optional[ProgressHook] = None,
    platform_factory: Optional[Callable] = None,
    worker_fn: Optional[Callable] = None,
    chunk_size: Optional[int] = None,
    reuse_pool: bool = True,
    obs=None,
) -> SweepResult:
    """Execute a sweep and return outcomes + failures + telemetry.

    ``workers <= 1`` runs serially in-process (deterministic, no pool);
    larger values fan jobs out over a warm worker pool.  ``cache``
    enables the content-addressed result store: jobs whose hash is
    present are not executed at all.  ``timeout`` bounds one job's
    execution seconds; ``retries`` re-runs failed (not timed-out) jobs
    after a ``backoff * attempt`` delay (tracked as a due time in
    parallel mode — the dispatcher never sleeps while work is running).

    ``chunk_size`` batches that many jobs per pool task; ``None``
    (default) sizes chunks adaptively from a measured per-job cost
    estimate, ``1`` is the compatibility path (one future per job,
    forced whenever ``timeout`` is set so budgets stay per-job).
    ``reuse_pool=False`` forks a cold single-use pool instead of
    (re)using the process-wide warm pool.

    ``platform_factory`` overrides by-name resolution for unregistered
    platforms (serial mode only).  ``worker_fn(spec) -> metrics-dict``
    substitutes the job body — used by tests to exercise the failure
    machinery without a simulator in the loop.

    ``obs`` is an :class:`repro.obs.Observability` handle (or a bare
    ``EventBus``); ``None`` picks up the process-default observer, if
    installed.  The sweep emits ``sweep_started`` / ``sweep_job_*`` /
    ``sweep_finished`` events (times are wall seconds since the sweep
    began) and folds the telemetry into the observer's metric registry.
    """
    job_list = list(jobs.jobs() if isinstance(jobs, SweepSpec) else jobs)
    parallel = workers and workers > 1
    if parallel and platform_factory is not None:
        raise SweepError(
            "platform_factory overrides are serial-only; register the "
            "platform (repro.hw.platform.register_platform_factory) for "
            "parallel sweeps"
        )
    if chunk_size is not None and chunk_size < 1:
        raise SweepError("chunk_size must be >= 1 (or None for auto)")
    result = SweepResult()
    t = result.telemetry
    t.total = len(job_list)
    t.workers = max(1, int(workers) if workers else 1)
    notify = progress or (lambda event, job, telemetry: None)

    started = time.perf_counter()
    if obs is None:
        obs = current_observer()
    bus = resolve_bus(obs)
    if bus is not None:
        notify = _bus_notify(bus, started, notify)
        if bus.active:
            bus.emit(
                "sweep_started", 0.0,
                jobs=len(job_list), workers=t.workers,
                parallel=bool(parallel), cached_probe=cache is not None,
            )
    pending: list[tuple[JobSpec, str]] = []
    outcome_at: dict[str, Union[JobOutcome, JobFailure]] = {}
    hashes = [job.job_hash for job in job_list]
    # One batched cache probe (a directory scan per hash shard) instead
    # of one stat per job — large cold grids skip per-job stat storms.
    entries = cache.get_many(hashes) if cache is not None else {}
    for job, h in zip(job_list, hashes):
        t.queued += 1
        notify("queued", job, t)
        entry = entries.get(h)
        if entry is not None:
            t.cache_hits += 1
            t.time_saved += float(entry["elapsed"])
            outcome = JobOutcome(
                job, h, RunMetrics.from_dict(entry["metrics"]),
                cached=True, elapsed=0.0,
            )
            outcome_at[h] = outcome
            notify("hit", job, t)
        else:
            pending.append((job, h))
    if cache is not None:
        t.cache_corrupted = cache.stats.corrupted

    if pending:
        if parallel:
            _run_parallel(
                pending, outcome_at, t, notify,
                workers=int(workers), cache=cache, timeout=timeout,
                retries=retries, backoff=backoff, worker_fn=worker_fn,
                chunk_size=chunk_size, reuse_pool=reuse_pool,
            )
        else:
            _run_serial(
                pending, outcome_at, t, notify,
                cache=cache, timeout=timeout, retries=retries,
                backoff=backoff, platform_factory=platform_factory,
                worker_fn=worker_fn,
            )

    t.wall_time = time.perf_counter() - started
    for job in job_list:
        rec = outcome_at.get(job.job_hash)
        if isinstance(rec, JobOutcome):
            result.outcomes.append(rec)
        elif isinstance(rec, JobFailure):
            result.failures.append(rec)
    if bus is not None and bus.active:
        bus.emit(
            "sweep_finished", t.wall_time,
            jobs=t.total, executed=t.done, cache_hits=t.cache_hits,
            failed=t.failed, retries=t.retries, wall_seconds=t.wall_time,
            state_forks=t.state_forks, cold_starts=t.cold_starts,
        )
    registry = getattr(obs, "metrics", None)
    if registry is not None:
        t.publish_to(registry)
    return result


#: ``notify`` hook event -> bus event type.
_JOB_EVENTS = {
    "queued": "sweep_job_queued",
    "start": "sweep_job_started",
    "hit": "sweep_job_cache_hit",
    "done": "sweep_job_done",
    "retry": "sweep_job_retried",
    "failed": "sweep_job_failed",
}


def _bus_notify(bus, started: float, inner) -> ProgressHook:
    """Wrap a progress hook so every transition also lands on the bus."""

    def notify(event: str, job, telemetry: SweepTelemetry) -> None:
        inner(event, job, telemetry)
        if bus.active:
            bus.emit(
                _JOB_EVENTS[event], time.perf_counter() - started,
                job=job.job_hash[:12], workload=job.workload,
                scheduler=job.scheduler, scale=job.scale,
                repetition=job.repetition,
            )

    return notify


def _record_success(
    job: JobSpec, h: str, metrics_dict: dict, elapsed: float, attempts: int,
    outcome_at, t: SweepTelemetry, cache: Optional[ResultCache],
) -> JobOutcome:
    if cache is not None:
        cache.put(job, h, metrics_dict, elapsed)
    outcome = JobOutcome(
        job, h, RunMetrics.from_dict(metrics_dict),
        cached=False, elapsed=elapsed, attempts=attempts,
    )
    outcome_at[h] = outcome
    t.done += 1
    t.exec_time += elapsed
    return outcome


def _run_serial(
    pending, outcome_at, t: SweepTelemetry, notify,
    *, cache, timeout, retries, backoff, platform_factory, worker_fn,
) -> None:
    if worker_fn is not None:
        body = worker_fn
        fork_cache = None
    else:
        # One fork cache per sweep: neighbouring grid points fork the
        # workload graph and share timing-breakdown memos instead of
        # rebuilding both from scratch (repro.sweep.fork).
        from repro.sweep.fork import ForkCache

        fork_cache = ForkCache()
        body = lambda spec: execute_job(  # noqa: E731
            spec, platform_factory=platform_factory, fork_cache=fork_cache
        )
    for job, h in pending:
        attempts = 0
        while True:
            attempts += 1
            notify("start", job, t)
            t.running = 1
            t0 = time.perf_counter()
            try:
                metrics_dict = body(job)
                elapsed = time.perf_counter() - t0
                error = None
            except Exception as exc:  # noqa: BLE001 - contained per job
                elapsed = time.perf_counter() - t0
                error = f"{type(exc).__name__}: {exc}"
            finally:
                t.running = 0
            if error is None and timeout is not None and elapsed > timeout:
                # Serial mode cannot preempt a running simulation; the
                # budget is enforced post-hoc and the job is *not*
                # retried (it would only time out again).
                outcome_at[h] = JobFailure(
                    job, h, f"exceeded timeout of {timeout:g} s",
                    kind="timeout", attempts=attempts, elapsed=elapsed,
                )
                t.failed += 1
                notify("failed", job, t)
                break
            if error is None:
                _record_success(
                    job, h, metrics_dict, elapsed, attempts, outcome_at, t, cache
                )
                notify("done", job, t)
                break
            if attempts <= retries:
                t.retries += 1
                notify("retry", job, t)
                if backoff > 0:
                    time.sleep(backoff * attempts)
                continue
            outcome_at[h] = JobFailure(
                job, h, error, kind="error", attempts=attempts, elapsed=elapsed
            )
            t.failed += 1
            notify("failed", job, t)
            break
    if fork_cache is not None:
        t.state_forks += fork_cache.forks
        t.cold_starts += fork_cache.cold_starts


# ----------------------------------------------------------------------
# Parallel dispatch over the warm pool
# ----------------------------------------------------------------------
class _Dispatcher:
    """Non-blocking chunked dispatcher state for one parallel sweep."""

    def __init__(
        self, pending, outcome_at, t, notify,
        *, workers, cache, timeout, retries, backoff, worker_fn,
        chunk_size, suite_paths, pool,
    ):
        self.outcome_at = outcome_at
        self.t = t
        self.notify = notify
        self.workers = workers
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.worker_fn = worker_fn
        self.suite_paths = suite_paths
        self.pool = pool
        # Per-job timeouts need per-job futures: a chunk cannot be
        # deadline-checked mid-flight from the parent.
        if timeout is not None:
            chunk_size = 1
        self.auto = chunk_size is None
        self.fixed_chunk = 1 if chunk_size is None else int(chunk_size)
        #: ready-to-run (job, hash, attempt) triples
        self.ready: deque = deque((job, h, 1) for job, h in pending)
        #: retries waiting out their backoff: heap of (due, seq, triple)
        self.delayed: list = []
        self._seq = 0
        #: future -> (batch, submit_time)
        self.in_flight: dict = {}
        #: measured per-job wall costs (drives adaptive chunk sizing);
        #: seeded from the warm pool's last-sweep estimate, if any.
        self.cost_samples: deque = deque(maxlen=_COST_SAMPLES)
        if self.auto and pool.cost_hint is not None:
            self.cost_samples.append(pool.cost_hint)

    # -- chunk sizing ---------------------------------------------------
    def next_chunk_size(self) -> int:
        if not self.auto:
            return self.fixed_chunk
        if not self.cost_samples:
            return 1  # probe round: measure before batching
        est = median(self.cost_samples)
        if est <= 0:
            size = _MAX_CHUNK
        else:
            size = int(_TARGET_CHUNK_S / est)
        # Leave enough chunks to keep every worker busy.
        fair = max(1, len(self.ready) // max(1, self.workers))
        return max(1, min(size, _MAX_CHUNK, fair))

    # -- submission -----------------------------------------------------
    def submit_ready(self) -> None:
        t0 = time.perf_counter()
        while self.ready and len(self.in_flight) < self.workers:
            size = self.next_chunk_size()
            batch = [self.ready.popleft() for _ in range(min(size, len(self.ready)))]
            spec_dicts = [job.to_dict() for job, _, _ in batch]
            if self.worker_fn is not None:
                payload = (self.worker_fn, spec_dicts)
                entry = pool_mod.run_chunk_fn
            else:
                paths = [
                    self.suite_paths.get((job.platform, job.profile_seed))
                    for job, _, _ in batch
                ]
                payload = (spec_dicts, paths)
                entry = pool_mod.run_chunk
            try:
                fut = self.pool.submit(entry, *payload)
            except BaseException:
                # Pool died under us: put the batch back so the broken-
                # pool handler can turn it into structured failures.
                self.ready.extendleft(reversed(batch))
                raise
            try:
                self.t.bytes_serialized += len(pickle.dumps(payload))
            except Exception:  # noqa: BLE001 - telemetry only
                pass
            self.t.chunks += 1
            self.t.chunk_size = max(self.t.chunk_size, len(batch))
            self.in_flight[fut] = (batch, time.perf_counter())
            for job, _, _ in batch:
                self.notify("start", job, self.t)
            self.t.running = sum(len(b) for b, _ in self.in_flight.values())
        self.t.dispatch_overhead += time.perf_counter() - t0

    def requeue(self, job, h, attempt: int, now: float) -> None:
        """Schedule a retry without blocking the dispatch loop."""
        self.t.retries += 1
        self.notify("retry", job, self.t)
        self._seq += 1
        due = now + (self.backoff * attempt if self.backoff > 0 else 0.0)
        heapq.heappush(self.delayed, (due, self._seq, (job, h, attempt + 1)))

    def promote_due(self, now: float) -> None:
        while self.delayed and self.delayed[0][0] <= now:
            _, _, triple = heapq.heappop(self.delayed)
            self.ready.append(triple)

    # -- completion -----------------------------------------------------
    def record_chunk(self, batch, results, elapsed_total: float, now: float) -> None:
        t0 = time.perf_counter()
        for (job, h, attempt), res in zip(batch, results):
            elapsed = float(res.get("elapsed", elapsed_total / max(1, len(batch))))
            self.t.state_forks += int(res.get("forked", 0))
            self.t.cold_starts += int(res.get("cold_starts", 0))
            if res.get("ok"):
                self.cost_samples.append(elapsed)
                _record_success(
                    job, h, res["metrics"], elapsed, attempt,
                    self.outcome_at, self.t, self.cache,
                )
                self.notify("done", job, self.t)
            elif attempt <= self.retries:
                self.requeue(job, h, attempt, now)
            else:
                self.fail(job, h, res.get("error", "unknown error"),
                          kind="error", attempts=attempt, elapsed=elapsed)
        self.t.dispatch_overhead += time.perf_counter() - t0

    def fail(self, job, h, error, *, kind, attempts, elapsed=0.0) -> None:
        self.outcome_at[h] = JobFailure(
            job, h, error, kind=kind, attempts=attempts, elapsed=elapsed
        )
        self.t.failed += 1
        self.notify("failed", job, self.t)

    def expire_timeouts(self, now: float) -> None:
        if self.timeout is None:
            return
        for fut in [
            f for f, (_, t0) in self.in_flight.items() if now - t0 > self.timeout
        ]:
            batch, t0 = self.in_flight.pop(fut)
            if not fut.cancel():
                # Already running: the worker cannot be killed, so the
                # slot stays occupied until the job finishes on its own.
                self.t.timeout_leaked += len(batch)
                self.pool.leaked += len(batch)
            for job, h, attempt in batch:
                self.fail(job, h, f"exceeded timeout of {self.timeout:g} s",
                          kind="timeout", attempts=attempt, elapsed=now - t0)

    def fail_all_pending(self, error: str) -> None:
        """Broken pool: everything unresolved becomes a structured failure."""
        for batch, t0 in list(self.in_flight.values()):
            for job, h, attempt in batch:
                self.fail(job, h, error, kind="broken-pool", attempts=attempt,
                          elapsed=time.perf_counter() - t0)
        for job, h, attempt in self.ready:
            self.fail(job, h, error, kind="broken-pool", attempts=attempt)
        for _, _, (job, h, attempt) in self.delayed:
            self.fail(job, h, error, kind="broken-pool", attempts=attempt)
        self.in_flight.clear()
        self.ready.clear()
        self.delayed.clear()

    # -- the loop -------------------------------------------------------
    def wait_timeout(self, now: float) -> Optional[float]:
        wait_t = _POLL_S if self.timeout is not None else None
        if self.delayed:
            until_due = max(0.0, self.delayed[0][0] - now)
            wait_t = until_due if wait_t is None else min(wait_t, until_due)
        return wait_t

    def run(self) -> None:
        while self.ready or self.delayed or self.in_flight:
            now = time.perf_counter()
            self.promote_due(now)
            self.submit_ready()
            if not self.in_flight:
                # Nothing running and nothing ready: sleep out the
                # shortest retry backoff (the only remaining work).
                if self.delayed:
                    time.sleep(max(0.0, self.delayed[0][0] - time.perf_counter()))
                continue
            done, _ = wait(
                self.in_flight, timeout=self.wait_timeout(now),
                return_when=FIRST_COMPLETED,
            )
            now = time.perf_counter()
            for fut in done:
                batch, t0 = self.in_flight.pop(fut)
                elapsed_total = now - t0
                exc = fut.exception()
                if exc is None:
                    self.record_chunk(batch, fut.result(), elapsed_total, now)
                elif isinstance(exc, BrokenProcessPool):
                    # Re-park the batch so fail_all_pending records it.
                    self.in_flight[fut] = (batch, t0)
                    raise exc
                else:
                    # The chunk runner itself failed (e.g. unpicklable
                    # worker_fn result): every job gets a retry.
                    for job, h, attempt in batch:
                        if attempt <= self.retries:
                            self.requeue(job, h, attempt, now)
                        else:
                            self.fail(
                                job, h, f"{type(exc).__name__}: {exc}",
                                kind="error", attempts=attempt,
                                elapsed=elapsed_total,
                            )
            self.expire_timeouts(now)
            self.t.running = sum(len(b) for b, _ in self.in_flight.values())
        self.t.running = 0
        if self.auto and self.cost_samples:
            self.pool.cost_hint = median(self.cost_samples)


def _run_parallel(
    pending, outcome_at, t: SweepTelemetry, notify,
    *, workers, cache, timeout, retries, backoff, worker_fn,
    chunk_size=None, reuse_pool=True,
) -> None:
    suite_paths = _prepare_suites(pending, cache)
    pool, warm_hit = pool_mod.get_pool(
        workers, suite_paths.values(), reuse=reuse_pool
    )
    t.warm_pool_hit = warm_hit
    dispatcher = _Dispatcher(
        pending, outcome_at, t, notify,
        workers=workers, cache=cache, timeout=timeout, retries=retries,
        backoff=backoff, worker_fn=worker_fn, chunk_size=chunk_size,
        suite_paths=suite_paths, pool=pool,
    )
    try:
        dispatcher.run()
    except BrokenProcessPool as exc:
        # The pool died (OOM-killed worker, interpreter crash):
        # everything unresolved becomes a structured failure.
        pool.broken = True
        dispatcher.fail_all_pending(f"process pool broke: {exc}")
        t.running = 0
    finally:
        pool_mod.release_pool(pool, reuse=reuse_pool)


def _prepare_suites(
    pending: Sequence[tuple[JobSpec, str]], cache: Optional[ResultCache]
) -> dict[tuple[str, int], str]:
    """Write model-suite snapshots for every (platform, seed) that any
    pending job needs, before forking workers."""
    from repro.schedulers.registry import needs_suite

    needed = {
        (job.platform, job.profile_seed)
        for job, _ in pending
        if needs_suite(job.scheduler)
    }
    if not needed:
        return {}
    store = cache or ResultCache()
    return {
        key: str(store.ensure_suite(*key)) for key in sorted(needed)
    }
