"""On-disk caches for sweeps.

Two artifact kinds live under one cache root (default
``~/.cache/repro/sweep``, overridable via ``$REPRO_CACHE_DIR`` or the
``cache_dir`` argument):

* **results/** — content-addressed job results: ``<hash[:2]>/<hash>.json``
  holding the job spec, its execution time and the
  ``RunMetrics.to_dict()`` payload.  The hash covers every run-relevant
  input plus the sweep schema version, so a cache hit is only possible
  when nothing that could change the outcome has changed.
* **suites/** — fitted :class:`~repro.models.suite.ModelSuite`
  snapshots (via :mod:`repro.models.io`), keyed by platform name and
  profiling seed, so worker processes load models from disk instead of
  re-profiling the platform each.

Corrupted entries (truncated writes, schema drift, digest mismatches,
hand-edited JSON) are treated as misses: the offending file is moved to
``<root>/quarantine/`` beside a ``.reason`` file (never silently
deleted — chaos campaigns and operators can inspect what was detected),
``stats.corrupted`` is bumped, a ``cache_corrupted`` event is emitted,
and the sweep re-executes the job.  New entries carry a SHA-256
``digest`` over their canonical metrics JSON; entries written before
the digest existed remain readable.  Writes are atomic (temp file +
``os.replace``)
and safe under **concurrent writers** — multiple processes (sweep
workers, the :mod:`repro.serve` daemon's completion threads) racing on
the same key or shard serialise through a per-shard ``flock`` and, in
the worst case, last-writer-wins on a byte-complete entry; a reader
can never observe a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

try:  # POSIX advisory locks; absent on some platforms (no-op there).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.sweep.spec import SCHEMA_VERSION, JobSpec

#: Environment variable overriding the default cache root.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro" / "sweep"


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupted: int = 0

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0


class ResultCache:
    """Content-addressed job-hash -> result-entry JSON store."""

    def __init__(self, cache_dir: str | Path | None = None) -> None:
        self.root = Path(cache_dir) if cache_dir else default_cache_dir()
        self.results_dir = self.root / "results"
        self.suites_dir = self.root / "suites"
        self.quarantine_dir = self.root / "quarantine"
        self.stats = CacheStats()

    # -- result entries -------------------------------------------------
    def path_for(self, job_hash: str) -> Path:
        return self.results_dir / job_hash[:2] / f"{job_hash}.json"

    @contextmanager
    def shard_lock(self, job_hash: str):
        """Exclusive advisory lock over one hash shard.

        Serialises mutations (writes, corrupted-entry removal) within a
        shard across processes.  Reads stay lock-free: atomic renames
        guarantee a reader sees either the old or the new complete
        entry, never a partial one.  No-op where ``fcntl`` is missing.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        shard_dir = self.results_dir / job_hash[:2]
        shard_dir.mkdir(parents=True, exist_ok=True)
        with open(shard_dir / ".lock", "a+") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def get(self, job_hash: str) -> Optional[dict]:
        """Entry dict for ``job_hash`` or ``None`` (miss / corrupted)."""
        path = self.path_for(job_hash)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            entry = None
        reason = self._invalid_reason(entry)
        if reason is not None:
            # Corrupted or stale-schema: quarantine it and report a
            # miss so the sweep transparently re-executes the job.
            # The move happens under the shard lock with a re-read, so
            # a concurrent writer that just replaced the bad entry with
            # a fresh one cannot have its write swept out from under it.
            with self.shard_lock(job_hash):
                try:
                    entry = json.loads(path.read_text())
                except (FileNotFoundError, json.JSONDecodeError, OSError,
                        UnicodeDecodeError):
                    entry = None
                reason = self._invalid_reason(entry)
                if reason is not None:
                    self.stats.corrupted += 1
                    self.stats.misses += 1
                    self._quarantine(path, job_hash, reason)
                    return None
        self.stats.hits += 1
        return entry

    def _quarantine(self, path: Path, job_hash: str, reason: str) -> None:
        """Move a bad entry aside (with a reason file) — never delete.

        Locked by caller (shard lock).  Quarantined files keep their
        name; a repeat offender under the same hash overwrites its
        previous quarantine copy.
        """
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
            (self.quarantine_dir / f"{path.name}.reason").write_text(
                f"{reason}\n"
            )
        except OSError:
            # Quarantine is best-effort; a miss was reported either way.
            try:
                path.unlink()
            except OSError:
                pass
        self._emit_corrupted(job_hash, reason)

    @staticmethod
    def _emit_corrupted(job_hash: str, reason: str) -> None:
        from repro.obs.api import current_observer

        obs = current_observer()
        bus = getattr(obs, "bus", None)
        if bus is not None and getattr(bus, "active", False):
            bus.emit(
                "cache_corrupted", time.perf_counter(),
                key=job_hash, reason=reason,
            )

    def get_many(self, job_hashes: Sequence[str]) -> dict[str, dict]:
        """Batched probe: ``{hash: entry}`` for every present, valid hash.

        One directory scan per populated hash shard replaces one stat
        per job, so the upfront hit-scan of a large cold grid touches
        the filesystem O(shards) times instead of O(jobs).  Misses and
        hits are counted exactly as per-hash :meth:`get` calls would.
        """
        wanted = list(dict.fromkeys(job_hashes))
        by_shard: dict[str, list[str]] = {}
        for h in wanted:
            by_shard.setdefault(h[:2], []).append(h)
        present: set[str] = set()
        for shard, hs in by_shard.items():
            try:
                names = set(os.listdir(self.results_dir / shard))
            except (FileNotFoundError, NotADirectoryError, OSError):
                continue
            present.update(h for h in hs if f"{h}.json" in names)
        out: dict[str, dict] = {}
        for h in wanted:
            if h not in present:
                self.stats.misses += 1
                continue
            entry = self.get(h)  # full read + validation + stats
            if entry is not None:
                out[h] = entry
        return out

    @classmethod
    def _invalid_reason(cls, entry: Any) -> Optional[str]:
        """``None`` when the entry is usable, else a bounded slug."""
        if not isinstance(entry, dict):
            return "unreadable-json"
        if entry.get("schema_version") != SCHEMA_VERSION:
            return "schema-mismatch"
        if not isinstance(entry.get("metrics"), dict):
            return "missing-metrics"
        if not isinstance(entry.get("elapsed"), (int, float)):
            return "missing-elapsed"
        digest = entry.get("digest")
        # Entries written before the digest field existed stay valid;
        # a present-but-wrong digest means bit rot or a torn payload.
        if digest is not None and digest != cls._digest(entry["metrics"]):
            return "digest-mismatch"
        return None

    @classmethod
    def _valid(cls, entry: Any) -> bool:
        return cls._invalid_reason(entry) is None

    @staticmethod
    def _digest(metrics: dict) -> str:
        """SHA-256 over the canonical metrics JSON."""
        payload = json.dumps(
            metrics, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def put(self, job: JobSpec, job_hash: str, metrics: dict, elapsed: float) -> Path:
        entry = {
            "schema_version": SCHEMA_VERSION,
            "job": job.to_dict(),
            "elapsed": elapsed,
            "metrics": metrics,
            "digest": self._digest(metrics),
        }
        path = self.path_for(job_hash)
        with self.shard_lock(job_hash):
            _atomic_write_json(path, entry)
        self.stats.writes += 1
        return path

    def __len__(self) -> int:
        if not self.results_dir.is_dir():
            return 0
        return sum(1 for _ in self.results_dir.glob("*/*.json"))

    def clear(self) -> int:
        """Remove every cached result; returns the number removed."""
        removed = 0
        if self.results_dir.is_dir():
            for path in self.results_dir.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    # -- model-suite snapshots ------------------------------------------
    def suite_path(self, platform: str, profile_seed: int) -> Path:
        return self.suites_dir / f"{platform}-seed{profile_seed}-v{SCHEMA_VERSION}.json"

    def ensure_suite(self, platform: str, profile_seed: int) -> Path:
        """Write the fitted-suite snapshot if absent; return its path.

        Profiling + fitting runs at most once per (platform, seed) per
        cache: workers then share the JSON artifact — the paper's
        "profile once per platform, at install time" workflow.
        """
        path = self.suite_path(platform, profile_seed)
        if path.is_file():
            return path
        from repro.hw.platform import platform_factory
        from repro.models.io import suite_to_dict
        from repro.models.training import profile_and_fit

        suite = profile_and_fit(platform_factory(platform), seed=profile_seed)
        _atomic_write_json(path, suite_to_dict(suite))
        return path


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
