"""Cross-grid-point state sharing for sweeps (fork-from-neighbour).

A sweep grid re-runs the *same workload* under many (scheduler, seed,
repetition) combinations: of a :class:`~repro.sweep.spec.JobSpec`'s
fields, only ``(workload, scale, workload_seed, workload_overrides)``
affect the task graph, and only the platform affects ground-truth
partition timings.  Building the graph from scratch and re-deriving
every timing breakdown per job therefore repeats work that is invariant
across most of the grid.

:class:`ForkCache` shares that invariant state across the jobs one
process executes:

* **workload-graph forking** — the first job needing a graph builds it
  once (a *cold start*) and keeps it as a pristine, never-executed
  template; every job (including the first) runs a cheap
  :meth:`~repro.runtime.dag.TaskGraph.fork` of the template instead of
  re-running the workload generator.  Forks share the template's
  immutable :class:`~repro.exec_model.kernels.KernelSpec` objects;
* **shared timing-breakdown memos** — per-platform dicts handed to each
  job's :class:`~repro.exec_model.engine.ExecutionEngine`, which
  consults them when its own per-run memo misses.  Keys include the
  kernel's identity (pinned by the cached template, with an identity
  check on hit, so a recycled ``id`` can never alias) and the core-type
  *name* (core-type objects are rebuilt per job).  Breakdowns are pure
  functions of ``(kernel, core type, width, f_C, f_M)`` on a given
  platform, so sharing them is result-neutral.

Both serial sweeps (one cache per ``run_sweep`` call) and warm-pool
workers (one process-level cache, reset when the pool forks) use this.
Results are byte-identical with and without the cache — pinned by the
golden A/B tests in ``tests/sweep/test_fork.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.dag import TaskGraph
    from repro.sweep.spec import JobSpec

#: The JobSpec fields that determine the task graph — everything else
#: (scheduler, seeds, repetition, faults) only affects execution.
GraphKey = tuple


class ForkCache:
    """Per-process (or per-sweep) store of job-invariant state."""

    def __init__(self) -> None:
        #: Pristine workload-graph templates, never executed directly.
        self._graphs: dict[GraphKey, "TaskGraph"] = {}
        #: Per-platform shared breakdown memos (see module docstring).
        self._breakdowns: dict[str, dict] = {}
        #: Jobs served by forking an existing template.
        self.forks = 0
        #: Jobs that had to build their graph from scratch.
        self.cold_starts = 0

    @staticmethod
    def graph_key(spec: "JobSpec") -> GraphKey:
        return (
            spec.workload, spec.scale, spec.workload_seed,
            spec.workload_overrides,
        )

    def graph_for(self, spec: "JobSpec") -> "TaskGraph":
        """A fresh, runnable task graph for ``spec`` — forked from the
        cached template, building it first if this is the grid point's
        first visit."""
        from repro.workloads.registry import build_workload

        key = self.graph_key(spec)
        template = self._graphs.get(key)
        if template is None:
            template = build_workload(
                spec.workload,
                scale=spec.scale,
                seed=spec.workload_seed,
                **spec.workload_overrides_dict(),
            )
            self._graphs[key] = template
            self.cold_starts += 1
        else:
            self.forks += 1
        return template.fork()

    def breakdowns(self, platform: str) -> dict:
        """The shared timing-breakdown memo for one platform name."""
        memo = self._breakdowns.get(platform)
        if memo is None:
            memo = self._breakdowns[platform] = {}
        return memo

    def clear(self) -> None:
        self._graphs.clear()
        self._breakdowns.clear()
