"""Warm worker pools for parallel sweeps.

A :class:`WarmPool` wraps a :class:`~concurrent.futures.ProcessPoolExecutor`
whose workers preload the fitted model-suite snapshot(s) **once, at fork
time**, instead of lazily on the first task that needs them.  The pool
persists across :func:`~repro.sweep.engine.run_sweep` calls within a
process (module-level singleton), so back-to-back sweeps — ``repro
sweep`` after ``repro faults``, fig8 followed by fig9 — reuse already
warm workers instead of re-forking and re-loading.

This module also hosts the *worker-side* entry points (they must be
top-level so they pickle):

* :func:`suite_from_snapshot` — per-process memoised suite loading,
  shared by the fork-time initializer and by chunk execution;
* :func:`run_chunk` / :func:`run_chunk_fn` — execute a *chunk* of jobs
  in one task, returning per-job structured results so one failing job
  never poisons its chunk-mates.

Pool reuse rules (see :func:`get_pool`): a cached pool is reused only
when the worker count matches, every snapshot the new sweep needs is
already warmed, and no worker slot is known-leaked (a timed-out job
still running) or broken.  Anything else disposes the old pool and
forks a fresh one warmed with the union of old and new snapshots.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, wait
from typing import Callable, Iterable, Optional, Sequence

#: Set this environment variable to a file path to get one appended
#: line per *actual* suite-snapshot load in any process (parent or
#: worker).  Used by tests to prove warm workers never re-load.
SUITE_LOAD_LOG_ENV = "REPRO_SUITE_LOAD_LOG"

#: Per-process memo: snapshot path (or in-process fit key) -> suite.
_SUITE_MEMO: dict = {}

#: Per-worker-process fork cache (workload-graph templates + shared
#: timing-breakdown memos, see :mod:`repro.sweep.fork`).  Lives for the
#: worker's lifetime so chunks — and whole back-to-back sweeps served
#: by a warm pool — fork instead of rebuilding.
_FORK_CACHE = None


def _fork_cache():
    global _FORK_CACHE
    if _FORK_CACHE is None:
        from repro.sweep.fork import ForkCache

        _FORK_CACHE = ForkCache()
    return _FORK_CACHE


def suite_from_snapshot(path: str):
    """Load a fitted suite snapshot, memoised per process."""
    suite = _SUITE_MEMO.get(path)
    if suite is None:
        from repro.models.io import load_suite

        log = os.environ.get(SUITE_LOAD_LOG_ENV)
        if log:
            with open(log, "a") as fh:
                fh.write(f"{os.getpid()} {path}\n")
        suite = _SUITE_MEMO[path] = load_suite(path)
    return suite


def _worker_initializer(suite_paths: Sequence[str]) -> None:
    """Fork-time worker initializer.

    Silences the observer stack inherited from the forking thread (a
    worker emitting through the parent's sinks would tear its files at
    the shared offset), then preloads every snapshot the sweep (and any
    previous sweep this pool served) needs."""
    from repro.obs.api import reset_observers

    reset_observers()
    # A forked child inherits the parent's module state; start this
    # worker's job-invariant caches from scratch.
    global _FORK_CACHE
    _FORK_CACHE = None
    for path in suite_paths:
        suite_from_snapshot(path)


def _hold_slot(seconds: float) -> int:
    """Occupy one worker slot briefly (see :meth:`WarmPool.prewarm`)."""
    time.sleep(seconds)
    return os.getpid()


# ----------------------------------------------------------------------
# Chunk execution (worker side)
# ----------------------------------------------------------------------
def _job_result(body: Callable[[], dict]) -> dict:
    t0 = time.perf_counter()
    try:
        metrics = body()
    except Exception as exc:  # noqa: BLE001 - contained per job
        return {
            "ok": False,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed": time.perf_counter() - t0,
        }
    return {"ok": True, "metrics": metrics, "elapsed": time.perf_counter() - t0}


def run_chunk(
    spec_dicts: Sequence[dict], suite_paths: Sequence[Optional[str]]
) -> list[dict]:
    """Execute a chunk of jobs in this worker; one result dict per job.

    Jobs run sequentially; a raising job yields ``{"ok": False, ...}``
    and the rest of the chunk still executes (the dispatcher retries
    failed jobs individually).
    """
    from repro.sweep.engine import execute_job
    from repro.sweep.spec import JobSpec

    fork_cache = _fork_cache()
    out = []
    for spec_dict, suite_path in zip(spec_dicts, suite_paths):
        spec = JobSpec.from_dict(spec_dict)
        suite = suite_from_snapshot(suite_path) if suite_path else None
        forks0, cold0 = fork_cache.forks, fork_cache.cold_starts
        res = _job_result(
            lambda: execute_job(spec, suite=suite, fork_cache=fork_cache)
        )
        # Per-job fork accounting rides back with the result so the
        # dispatcher can fold it into the sweep telemetry.
        res["forked"] = fork_cache.forks - forks0
        res["cold_starts"] = fork_cache.cold_starts - cold0
        out.append(res)
    return out


def run_chunk_fn(worker_fn: Callable, spec_dicts: Sequence[dict]) -> list[dict]:
    """Like :func:`run_chunk` but with a substituted job body
    (``worker_fn(spec) -> metrics-dict``, test machinery)."""
    from repro.sweep.spec import JobSpec

    return [
        _job_result(lambda: worker_fn(JobSpec.from_dict(d))) for d in spec_dicts
    ]


# ----------------------------------------------------------------------
# Pool lifecycle (parent side)
# ----------------------------------------------------------------------
class WarmPool:
    """A process pool with fork-time-warmed workers and leak tracking."""

    def __init__(self, workers: int, suite_paths: Iterable[str], warm: bool = True):
        self.workers = int(workers)
        self.warmed = frozenset(suite_paths)
        self.leaked = 0  # timed-out jobs still occupying a worker slot
        self.broken = False
        #: Monotonic timestamp of the last submit — lets long-lived
        #: owners (the repro.serve daemon) reap a pool idling between
        #: request bursts instead of holding worker processes forever.
        self.last_used = time.monotonic()
        #: Median per-job cost (s) observed by the last sweep served —
        #: lets the next sweep skip its chunk-sizing probe round.
        self.cost_hint: Optional[float] = None
        # Every pool gets the initializer (observer hygiene); only warm
        # pools also preload suite snapshots at fork time.
        self.executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_initializer,
            initargs=(tuple(sorted(self.warmed)) if warm else (),),
        )

    def submit(self, fn: Callable, *args) -> Future:
        self.last_used = time.monotonic()
        return self.executor.submit(fn, *args)

    def prewarm(self, timeout: float = 60.0) -> None:
        """Fork every worker process *now* rather than lazily.

        :class:`~concurrent.futures.ProcessPoolExecutor` forks workers
        on demand at submit time.  A long-lived caller that will grow
        threads (the serve daemon) must fork all workers while it is
        still single-threaded: a child forked under live threads can
        inherit a lock mid-acquisition and deadlock before it ever
        reads from the call queue.  Submitting ``workers`` slot-holding
        tasks back-to-back forces one fork per task (each submit sees
        no idle worker), then waiting for them proves every worker came
        up.
        """
        futures = [
            self.executor.submit(_hold_slot, 0.2) for _ in range(self.workers)
        ]
        done, pending = wait(futures, timeout=timeout)
        if pending:
            raise RuntimeError(
                f"worker pool failed to start {len(pending)} of "
                f"{self.workers} workers within {timeout:g} s"
            )
        for fut in done:
            fut.result()  # surface BrokenProcessPool etc.

    @property
    def healthy(self) -> bool:
        return not self.broken and self.leaked == 0

    def shutdown(self, wait: bool = True) -> None:
        self.executor.shutdown(wait=wait)

    def dispose(self, grace: float = 5.0) -> None:
        """Shut down without ever blocking forever, killing stragglers.

        A worker wedged before it reads the shutdown sentinel (e.g. a
        fork that inherited a held lock) would survive
        ``shutdown(wait=True)`` as an orphan — keeping inherited file
        descriptors (the daemon's stdout pipe) open indefinitely.  Give
        workers ``grace`` seconds to exit cleanly, then SIGKILL the
        rest.
        """
        procs = list(getattr(self.executor, "_processes", {}).values())
        self.executor.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + grace
        for proc in procs:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)


_ACTIVE: Optional[WarmPool] = None


def active_pool() -> Optional[WarmPool]:
    """The currently cached warm pool, if any (introspection/tests)."""
    return _ACTIVE


def get_pool(
    workers: int, suite_paths: Iterable[str], reuse: bool = True
) -> tuple[WarmPool, bool]:
    """Return ``(pool, warm_hit)`` for a sweep needing ``suite_paths``.

    With ``reuse=True`` (the default) the module-level pool is returned
    when compatible (same worker count, needed snapshots already warm,
    no leaked/broken workers); otherwise it is disposed and a fresh
    pool is forked, warmed with the **union** of old and new snapshots
    so alternating sweeps converge to one fully-warm pool.

    ``reuse=False`` forks a cold, caller-owned pool with lazy suite
    loading — the pre-warm-pool execution model, kept for benchmarking
    the win and for callers wanting full isolation.  The caller must
    release it via :func:`release_pool`.
    """
    global _ACTIVE
    needed = frozenset(suite_paths)
    if not reuse:
        return WarmPool(workers, needed, warm=False), False
    pool = _ACTIVE
    if pool is not None:
        if pool.healthy and pool.workers == workers and needed <= pool.warmed:
            return pool, True
        carry = pool.warmed if pool.healthy else frozenset()
        pool.shutdown(wait=not pool.leaked)
        _ACTIVE = None
        needed = needed | carry
    _ACTIVE = WarmPool(workers, needed)
    return _ACTIVE, False


def release_pool(pool: WarmPool, reuse: bool = True) -> None:
    """Give a pool back after a sweep.

    Reusable healthy pools stay cached for the next sweep.  Broken or
    leak-carrying pools are disposed (a leaked worker would silently
    eat a slot of every later sweep), as are ``reuse=False`` pools.
    """
    global _ACTIVE
    if reuse and pool.healthy:
        return
    if pool is _ACTIVE:
        _ACTIVE = None
    # Don't block on leaked workers: they hold the slot until their
    # (already-failed) job finishes; the executor reaps them then.
    pool.shutdown(wait=not pool.leaked and not pool.broken)


def shutdown_warm_pool() -> None:
    """Dispose the cached warm pool (tests, benchmarks, interpreter exit).

    Uses :meth:`WarmPool.dispose`, so a wedged or leaked worker is
    killed after a short grace instead of orphaned (or waited on
    forever)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.dispose()
        _ACTIVE = None


def reap_idle_pool(idle_s: float) -> bool:
    """Dispose the cached pool if it has not been used for ``idle_s``.

    Callers are responsible for only reaping when they know no work is
    outstanding (the serve daemon checks its in-flight count first).
    Returns whether a pool was reaped.
    """
    if _ACTIVE is None or time.monotonic() - _ACTIVE.last_used < idle_s:
        return False
    shutdown_warm_pool()
    return True


atexit.register(shutdown_warm_pool)
