"""Parallel experiment orchestration with content-addressed caching.

The sweep subsystem turns a paper figure's run grid into data
(:class:`SweepSpec` / :class:`JobSpec`), executes it serially or over a
process pool (:func:`run_sweep`), and memoises results on disk keyed by
a canonical content hash (:class:`ResultCache`) so unchanged grids are
pure cache hits.
"""

from repro.sweep.cache import CacheStats, ResultCache, default_cache_dir
from repro.sweep.engine import (
    JobFailure,
    JobOutcome,
    SweepResult,
    execute_job,
    run_sweep,
)
from repro.sweep.fork import ForkCache
from repro.sweep.pool import WarmPool, active_pool, shutdown_warm_pool
from repro.sweep.spec import SCHEMA_VERSION, JobSpec, SweepSpec
from repro.sweep.telemetry import SweepTelemetry, console_progress

__all__ = [
    "SCHEMA_VERSION",
    "CacheStats",
    "ForkCache",
    "JobFailure",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "SweepResult",
    "SweepSpec",
    "SweepTelemetry",
    "WarmPool",
    "active_pool",
    "console_progress",
    "default_cache_dir",
    "execute_job",
    "run_sweep",
    "shutdown_warm_pool",
]
