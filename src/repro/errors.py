"""Exception hierarchy for the JOSS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single handler while still
letting programming errors (TypeError, ValueError from misuse of stdlib)
propagate untouched.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Raised for inconsistencies inside the discrete-event engine."""


class ConfigurationError(ReproError):
    """Raised when a platform / workload / scheduler is misconfigured."""


class FrequencyError(ConfigurationError):
    """Raised when a requested frequency is not an available OPP."""


class SchedulingError(ReproError):
    """Raised when the runtime or a scheduler reaches an invalid state."""


class ModelError(ReproError):
    """Raised when model fitting or prediction cannot proceed."""


class WorkloadError(ReproError):
    """Raised when a workload DAG cannot be constructed as requested."""


class SweepError(ReproError):
    """Raised when a sweep cannot be specified, executed or cached."""


class ObservabilityError(ReproError):
    """Raised by the event bus / metric registry (:mod:`repro.obs`)."""


class ServeError(ReproError):
    """Raised by the scheduling service (:mod:`repro.serve`): protocol
    violations, rejected submissions, error replies surfaced client-side."""


class FaultError(ReproError):
    """Raised when a fault campaign is malformed or cannot be injected."""


class ChaosError(ReproError):
    """Raised by the service-level chaos harness (:mod:`repro.chaos`):
    malformed campaigns, a daemon that cannot be driven, or invariant
    violations surfaced as structured failures."""


class DegradedModeError(SchedulingError):
    """Raised when the runtime cannot satisfy a placement because the
    platform has degraded past what graceful fallback can absorb (e.g.
    every core of a required cluster is offline)."""
