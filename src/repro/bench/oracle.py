"""Pinned-configuration measurement (the paper's offline exploration).

The motivation study (Figs. 1 and 2) and the model-accuracy study
(Fig. 10) measure a benchmark at *fixed* knob settings, no scheduler
involved: pin ``<T_C, N_C, f_C, f_M>``, run the kernel's tasks
back-to-back (dop = 1) and read the power rails.  The
:class:`ConfigurationExplorer` does exactly that against the simulated
platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.exec_model.engine import ExecutionEngine
from repro.exec_model.kernels import KernelSpec
from repro.hw.platform import Platform
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class MeasuredPoint:
    """Averaged measurements of one kernel at one configuration."""

    cluster: str
    n_cores: int
    f_c: float
    f_m: float
    #: Wall time per task (s).
    time: float
    #: Whole-rail average powers during execution (W).
    cpu_power: float
    mem_power: float
    #: Per-task energies including the full idle floor (J) — the
    #: benchmark-level energy of the paper's dop=1 studies.
    cpu_energy: float
    mem_energy: float

    @property
    def total_energy(self) -> float:
        return self.cpu_energy + self.mem_energy

    def config_str(self) -> str:
        return f"<{self.cluster}, {self.n_cores}, {self.f_c:.2f}, {self.f_m:.3f}>"


class ConfigurationExplorer:
    """Measures kernels at pinned configurations on one platform."""

    def __init__(
        self,
        platform_factory: Callable[[], Platform],
        seed: int = 0,
        duration_noise_sigma: float = 0.0,
    ) -> None:
        self.platform = platform_factory()
        self.sim = Simulator()
        self.engine = ExecutionEngine(
            self.sim,
            self.platform,
            RngStreams(seed),
            duration_noise_sigma=duration_noise_sigma,
        )
        self._completions: list[float] = []
        self.engine.on_complete = lambda act: self._completions.append(self.sim.now)

    def measure(
        self,
        kernel: KernelSpec,
        cluster_name: str,
        n_cores: int,
        f_c: float,
        f_m: float,
        tasks: int = 3,
    ) -> MeasuredPoint:
        """Run ``tasks`` back-to-back instances and average."""
        if tasks < 1:
            raise ConfigurationError("need at least one task")
        cluster = self.platform.cluster_by_type(cluster_name)
        if n_cores > cluster.n_cores:
            raise ConfigurationError("n_cores exceeds cluster size")
        # All clusters track f_c, matching the idle characterisation
        # (the profiler does the same; only the target cluster works).
        for cl in self.platform.clusters:
            cl.set_freq(f_c)
        self.platform.memory.set_freq(f_m)
        acc = self.engine.accountant
        t0 = self.sim.now
        e_cpu0, e_mem0 = acc.energy("cpu"), acc.energy("mem")
        for _ in range(tasks):
            self._completions.clear()
            for core in cluster.cores[:n_cores]:
                self.engine.start_activity(kernel, core, n_cores_total=n_cores)
            self.sim.run()
        dt = self.sim.now - t0
        e_cpu = acc.energy("cpu") - e_cpu0
        e_mem = acc.energy("mem") - e_mem0
        return MeasuredPoint(
            cluster=cluster_name,
            n_cores=n_cores,
            f_c=f_c,
            f_m=f_m,
            time=dt / tasks,
            cpu_power=e_cpu / dt,
            mem_power=e_mem / dt,
            cpu_energy=e_cpu / tasks,
            mem_energy=e_mem / tasks,
        )

    def sweep(
        self,
        kernel: KernelSpec,
        f_c_values: Optional[list[float]] = None,
        f_m_values: Optional[list[float]] = None,
        tasks: int = 3,
    ) -> dict[tuple[str, int, float, float], MeasuredPoint]:
        """Measure a kernel over all ``<T_C, N_C>`` x frequency combos."""
        points: dict[tuple[str, int, float, float], MeasuredPoint] = {}
        for cluster, n_cores in self.platform.resource_configs():
            fcs = f_c_values if f_c_values is not None else list(cluster.opps)
            fms = (
                f_m_values
                if f_m_values is not None
                else list(self.platform.memory.opps)
            )
            for f_c in fcs:
                for f_m in fms:
                    p = self.measure(
                        kernel, cluster.core_type.name, n_cores, f_c, f_m, tasks
                    )
                    points[(cluster.core_type.name, n_cores, f_c, f_m)] = p
        return points
