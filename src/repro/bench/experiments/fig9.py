"""Figure 9 — energy under performance constraints (section 7.2).

Runs JOSS with speedup targets 1.2x / 1.4x / 1.8x and MAXP, normalised
to unconstrained JOSS.  Paper headline: the three targets cost +6%,
+13% and +32% energy on average; memory-intensive benchmarks cannot
reach 1.8x even at maximum frequencies (bounded by peak FLOPS /
bandwidth).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec
from repro.workloads.registry import workload_names

VARIANTS = ("JOSS", "JOSS_1.2x", "JOSS_1.4x", "JOSS_1.8x", "JOSS_MAXP")

#: Default subset balancing coverage and bench runtime.
DEFAULT_WORKLOADS = (
    "hd-big", "dp", "vg", "slu", "mm-256", "mc-4096", "st-512",
)


def sweep_spec(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    variants: Sequence[str] = VARIANTS,
) -> SweepSpec:
    """The figure's run grid: every workload under every JOSS variant
    (the unconstrained "JOSS" column doubles as the baseline)."""
    cfg = config or BenchConfig()
    wls = workload_names() if list(workloads) == ["all"] else list(workloads)
    scheds = variants if "JOSS" in variants else ("JOSS", *variants)
    return SweepSpec.from_bench_config(cfg, wls, scheds)


def run(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    variants: Sequence[str] = VARIANTS,
    workers: int = 0,
    cache=None,
    progress=None,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    spec = sweep_spec(cfg, workloads, variants)
    result = run_sweep(
        spec, workers=workers, cache=cache, progress=progress
    )
    result.raise_on_failure()
    averaged = result.averaged()
    wls = list(spec.workloads)
    rows, table_rows = [], []
    speedups: dict[str, list[float]] = {v: [] for v in variants}
    premiums: dict[str, list[float]] = {v: [] for v in variants}
    for wl in wls:
        base = averaged[(wl, "JOSS", cfg.scale)]
        row = {"workload": wl}
        cells = [wl]
        for v in variants:
            m = averaged[(wl, v, cfg.scale)]
            t_norm = m.makespan / base.makespan
            e_norm = m.total_energy / base.total_energy
            row[f"{v}_time"] = t_norm
            row[f"{v}_energy"] = e_norm
            cells += [t_norm, e_norm]
            speedups[v].append(1.0 / t_norm if t_norm > 0 else float("nan"))
            premiums[v].append(e_norm - 1.0)
        rows.append(row)
        table_rows.append(cells)
    summary: dict[str, float] = {}
    for v in variants:
        if v == "JOSS":
            continue
        summary[f"{v}_avg_speedup"] = float(np.mean(speedups[v]))
        summary[f"{v}_avg_energy_premium"] = float(np.mean(premiums[v]))
    headers = ["workload"]
    for v in variants:
        headers += [f"{v} t", f"{v} E"]
    text = format_table(headers, table_rows, float_fmt="{:.2f}")
    return ExperimentResult(
        name="fig9",
        title=(
            "Figure 9: execution time (t) and energy (E) under performance "
            "constraints, normalised to unconstrained JOSS"
        ),
        rows=rows,
        text=text,
        summary=summary,
    )
