"""Section 7.1 — the SparseLU/BMOD analysis walk-through.

The paper explains *why* each scheduler lands where it does using
SparseLU's dominant BMOD kernel:

- GRWS spreads BMOD across both clusters (63% Denver / 37% A57 in the
  paper) because the four A57 cores steal aggressively;
- ERASE maps BMOD to two Denver cores (near-linear speedup without
  doubling CPU power) — less CPU energy than GRWS;
- STEER throttles ⟨Denver, 2⟩ to a low f_C for least CPU energy, which
  *increases memory energy* through the slowdown;
- JOSS additionally lowers f_M (BMOD's MB ≈ 1%) cutting memory energy
  without hurting execution time.

This experiment runs SLU under each scheduler with energy attribution
and reports BMOD's placement mix plus the CPU/memory energy split.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.attribution import EnergyAttributor
from repro.analysis.reports import cluster_fraction
from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.runtime.executor import Executor
from repro.schedulers.registry import make_scheduler
from repro.workloads.registry import build_workload

SCHEDULERS = ("GRWS", "ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS", "JOSS")


def run(config: Optional[BenchConfig] = None) -> ExperimentResult:
    cfg = config or BenchConfig()
    rows, table_rows = [], []
    for name in SCHEDULERS:
        suite = None if name in ("GRWS", "Aequitas") else cfg.suite()
        sched = make_scheduler(name, suite)
        ex = Executor(cfg.platform_factory(), sched, seed=cfg.seed)
        attributor = EnergyAttributor(ex.engine)
        graph = build_workload("slu", scale=cfg.scale, seed=cfg.workload_seed)
        m = ex.run(graph)
        denver_frac = cluster_fraction(m, "slu.bmod", "denver")
        bmod = attributor.per_kernel.get("slu.bmod")
        decision = ""
        if "decisions" in m.extras:
            decision = m.extras["decisions"].get("slu.bmod", "")
        rows.append(
            {
                "scheduler": name,
                "bmod_denver_fraction": denver_frac,
                "bmod_cpu_dyn_j": bmod.cpu if bmod else 0.0,
                "bmod_mem_dyn_j": bmod.mem if bmod else 0.0,
                "cpu_energy_j": m.cpu_energy,
                "mem_energy_j": m.mem_energy,
                "total_energy_j": m.total_energy,
                "makespan_s": m.makespan,
                "decision": decision,
            }
        )
        table_rows.append(
            [
                name,
                denver_frac * 100,
                m.cpu_energy,
                m.mem_energy,
                m.total_energy,
                m.makespan * 1e3,
                decision or "-",
            ]
        )
    text = format_table(
        ["scheduler", "BMOD on Denver (%)", "E_cpu (J)", "E_mem (J)",
         "E_total (J)", "time (ms)", "BMOD decision"],
        table_rows,
        float_fmt="{:.2f}",
    )
    by_name = {r["scheduler"]: r for r in rows}
    summary = {
        "grws_bmod_denver": by_name["GRWS"]["bmod_denver_fraction"],
        "joss_vs_steer_mem": (
            by_name["STEER"]["mem_energy_j"] - by_name["JOSS"]["mem_energy_j"]
        ),
        "joss_total": by_name["JOSS"]["total_energy_j"],
        "steer_total": by_name["STEER"]["total_energy_j"],
    }
    return ExperimentResult(
        name="sec71",
        title="Section 7.1: SparseLU / BMOD analysis across schedulers",
        rows=rows,
        text=text,
        summary=summary,
    )
