"""MPR degree study (paper section 4.3.3's overfitting note).

The paper: "We also evaluated the effectiveness of enhancing the
performance and power models with higher degree coefficients but
observed that it resulted in model overfitting and increased
computation overheads without further improvement in prediction
accuracy."

This experiment fits the full model suite at polynomial degrees 1, 2
and 3 from the *same* profiling dataset and evaluates each on held-out
workload kernels (never seen during training), reporting mean accuracy
per model plus the parameter count (the computation-overhead proxy).
Expected shape: degree 2 clearly beats degree 1; degree 3 adds
parameters without a matching accuracy gain.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.bench.oracle import ConfigurationExplorer
from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.hw.platform import Platform, jetson_tx2
from repro.models.mb import estimate_mb
from repro.models.training import fit_models
from repro.profiling.profiler import PlatformProfiler
from repro.workloads.registry import build_workload

DEGREES = (1, 2, 3)

F_C_GRID = (0.499, 0.960, 1.420, 2.040)
F_M_GRID = (0.408, 0.800, 1.331, 1.866)

#: Workloads contributing held-out evaluation kernels.
EVAL_WORKLOADS = ("slu", "mc-4096", "vg", "dp")


def run(
    platform_factory: Callable[[], Platform] = jetson_tx2,
    seed: int = 0,
    degrees: tuple[int, ...] = DEGREES,
) -> ExperimentResult:
    dataset = PlatformProfiler(platform_factory, seed=seed).run()
    suites = {d: fit_models(dataset, degree=d) for d in degrees}
    explorer = ConfigurationExplorer(platform_factory, seed=seed + 1)
    kernels = {}
    for wl in EVAL_WORKLOADS:
        for k in build_workload(wl, scale=0.5).kernels():
            kernels.setdefault(k.name, k)
    acc: dict[tuple[int, str], list[float]] = {}
    ref_suite = suites[degrees[0]]
    for kernel in kernels.values():
        for cl_name, n_cores in ref_suite.config_keys():
            ref = explorer.measure(
                kernel, cl_name, n_cores, ref_suite.f_c_ref, ref_suite.f_m_ref,
                tasks=1,
            )
            samp = explorer.measure(
                kernel, cl_name, n_cores, ref_suite.f_c_sample,
                ref_suite.f_m_ref, tasks=1,
            )
            mb = estimate_mb(
                ref.time, samp.time, ref_suite.f_c_ref, ref_suite.f_c_sample
            )
            for f_c in F_C_GRID:
                for f_m in F_M_GRID:
                    real = explorer.measure(
                        kernel, cl_name, n_cores, f_c, f_m, tasks=1
                    )
                    for d, suite in suites.items():
                        t = suite.predict_time(cl_name, n_cores, mb, ref.time, f_c, f_m)
                        pc = suite.predict_cpu_power(cl_name, n_cores, mb, f_c)
                        pm = suite.predict_mem_power(cl_name, n_cores, mb, f_c, f_m)
                        idle = suite.idle
                        acc.setdefault((d, "performance"), []).append(
                            1 - abs(real.time - t) / real.time
                        )
                        acc.setdefault((d, "cpu_power"), []).append(
                            1 - abs(real.cpu_power - (pc + idle.cpu_idle(f_c)))
                            / real.cpu_power
                        )
                        acc.setdefault((d, "mem_power"), []).append(
                            1 - abs(real.mem_power - (pm + idle.mem_idle(f_m)))
                            / real.mem_power
                        )
    rows, table_rows = [], []
    summary: dict[str, float] = {}
    for d in degrees:
        suite = suites[d]
        some_cm = next(iter(suite.models.values()))
        n_params = (
            some_cm.performance._stall.n_params
            + some_cm.cpu_power._reg.n_params
            + some_cm.mem_power._reg.n_params
        )
        row = {"degree": d, "params_per_config": n_params}
        cells = [d, n_params]
        for model in ("performance", "cpu_power", "mem_power"):
            mean = float(np.mean(acc[(d, model)]))
            row[f"{model}_mean_acc"] = mean
            cells.append(mean)
            summary[f"deg{d}_{model}"] = mean
        rows.append(row)
        table_rows.append(cells)
    text = format_table(
        ["degree", "params/config", "perf acc", "cpu acc", "mem acc"],
        table_rows,
    )
    return ExperimentResult(
        name="degree",
        title="Section 4.3.3: MPR degree study (held-out kernel accuracy)",
        rows=rows,
        text=text,
        summary=summary,
    )
