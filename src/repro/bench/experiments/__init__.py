"""Experiment implementations, one module per paper artefact."""

from repro.bench.experiments import (  # noqa: F401 - re-exported modules
    ablation,
    degree,
    dop,
    fig1,
    fig2,
    fig5,
    fig8,
    fig9,
    fig10,
    governors,
    granularity,
    multiprog,
    overhead,
    percore,
    portability,
    sampling,
    sec71,
    tab1,
)

#: Experiment name -> module with a ``run(...) -> ExperimentResult``.
ALL = {
    "fig1": fig1,
    "fig2": fig2,
    "fig5": fig5,
    "tab1": tab1,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "overhead": overhead,
    "sampling": sampling,
    "sec71": sec71,
    "percore": percore,
    "degree": degree,
    "dop": dop,
    "governors": governors,
    "portability": portability,
    "multiprog": multiprog,
    "granularity": granularity,
    "ablation": ablation,
}
