"""Figure 10 — prediction accuracy of the three models (section 7.3).

For every (workload kernel, ``<T_C, N_C>``, ``(f_C, f_M)``) point on a
grid, compare model predictions against "real" values measured by
running the kernel pinned at that configuration, using the paper's
accuracy metric ``1 - |real - pred| / real``.  The paper reports mean
(median) accuracies of 97% (98.3%) for performance, 90% (91.8%) for
CPU power and 80% (84.6%) for memory power.

MB and the reference time are obtained exactly as the runtime obtains
them: two timed runs at the reference and sampling core frequencies
(Eq. 3) — so the reported accuracy includes MB-estimation error, as in
the paper.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.bench.oracle import ConfigurationExplorer
from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.hw.platform import Platform, jetson_tx2
from repro.models.mb import estimate_mb
from repro.models.suite import ModelSuite
from repro.models.training import profile_and_fit
from repro.workloads.registry import build_workload, workload_names

F_C_GRID = (0.499, 0.960, 1.420, 2.040)
F_M_GRID = (0.408, 0.800, 1.331, 1.866)


def _accuracy(real: float, pred: float) -> float:
    if real <= 0:
        return float("nan")
    return 1.0 - abs(real - pred) / real


def run(
    platform_factory: Callable[[], Platform] = jetson_tx2,
    suite: Optional[ModelSuite] = None,
    workloads: Optional[Sequence[str]] = None,
    seed: int = 0,
) -> ExperimentResult:
    suite = suite or profile_and_fit(platform_factory, seed=seed)
    explorer = ConfigurationExplorer(platform_factory, seed=seed)
    platform = explorer.platform
    wls = list(workloads) if workloads is not None else workload_names()
    kernels: dict[str, object] = {}
    for wl in wls:
        for k in build_workload(wl, scale=0.5).kernels():
            kernels.setdefault(k.name, k)
    acc = {"performance": [], "cpu_power": [], "mem_power": []}
    for kernel in kernels.values():
        for cl_name, n_cores in suite.config_keys():
            ref = explorer.measure(
                kernel, cl_name, n_cores, suite.f_c_ref, suite.f_m_ref, tasks=2
            )
            samp = explorer.measure(
                kernel, cl_name, n_cores, suite.f_c_sample, suite.f_m_ref, tasks=2
            )
            mb = estimate_mb(ref.time, samp.time, suite.f_c_ref, suite.f_c_sample)
            idle = suite.idle
            for f_c in F_C_GRID:
                for f_m in F_M_GRID:
                    real = explorer.measure(
                        kernel, cl_name, n_cores, f_c, f_m, tasks=2
                    )
                    t_pred = suite.predict_time(
                        cl_name, n_cores, mb, ref.time, f_c, f_m
                    )
                    p_cpu = suite.predict_cpu_power(cl_name, n_cores, mb, f_c)
                    p_mem = suite.predict_mem_power(cl_name, n_cores, mb, f_c, f_m)
                    acc["performance"].append(_accuracy(real.time, t_pred))
                    # Whole-rail comparison: dynamic prediction + the
                    # characterised idle floor, as the sensor measures.
                    acc["cpu_power"].append(
                        _accuracy(real.cpu_power, p_cpu + idle.cpu_idle(f_c))
                    )
                    acc["mem_power"].append(
                        _accuracy(real.mem_power, p_mem + idle.mem_idle(f_m))
                    )
    rows, table_rows = [], []
    summary: dict[str, float] = {}
    paper = {
        "performance": (0.97, 0.983),
        "cpu_power": (0.90, 0.918),
        "mem_power": (0.80, 0.846),
    }
    for model, vals in acc.items():
        arr = np.asarray([v for v in vals if np.isfinite(v)])
        mean, median, p10 = (
            float(arr.mean()),
            float(np.median(arr)),
            float(np.percentile(arr, 10)),
        )
        rows.append(
            {"model": model, "mean": mean, "median": median, "p10": p10,
             "paper_mean": paper[model][0], "paper_median": paper[model][1]}
        )
        table_rows.append(
            [model, mean, median, p10, paper[model][0], paper[model][1]]
        )
        summary[f"{model}_mean"] = mean
        summary[f"{model}_median"] = median
    text = format_table(
        ["model", "mean acc", "median acc", "p10 acc", "paper mean", "paper median"],
        table_rows,
    )
    return ExperimentResult(
        name="fig10",
        title="Figure 10: model prediction accuracy across all benchmarks",
        rows=rows,
        text=text,
        summary=summary,
    )
