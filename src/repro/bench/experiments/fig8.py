"""Figure 8 — total energy across schedulers and benchmarks (section 7.1).

Runs GRWS, ERASE, Aequitas, STEER, JOSS and JOSS_NoMemDVFS over the
full workload suite and reports absolute and GRWS-normalised total
energy, plus the paper's headline averages:

- JOSS saves the most on every benchmark;
- paper averages vs GRWS: JOSS 40.7%, STEER 19.5%, ERASE 16.3%,
  Aequitas 8.7%, JOSS_NoMemDVFS 24.8% (i.e. +5.2% over STEER even
  without the memory knob).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig, run as bench_run
from repro.sweep.spec import SweepSpec
from repro.workloads.registry import workload_names

SCHEDULERS = ("GRWS", "ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS", "JOSS")


def sweep_spec(
    config: Optional[BenchConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
) -> SweepSpec:
    """The figure's run grid, declared as data (cache-addressable)."""
    cfg = config or BenchConfig()
    wls = list(workloads) if workloads is not None else workload_names()
    return SweepSpec.from_bench_config(cfg, wls, schedulers)


def run(
    config: Optional[BenchConfig] = None,
    workloads: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    workers: int = 0,
    cache=None,
    progress=None,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    wls = list(workloads) if workloads is not None else workload_names()
    matrix = bench_run(
        (wls, list(schedulers)), config=cfg,
        workers=workers, cache=cache, progress=progress,
    )
    rows, table_rows = [], []
    for wl in wls:
        base = matrix[wl]["GRWS"].total_energy
        row = {"workload": wl, "grws_energy_j": base}
        cells = [wl]
        for s in schedulers:
            m = matrix[wl][s]
            norm = m.total_energy / base if base > 0 else float("nan")
            row[s] = norm
            row[f"{s}_cpu_j"] = m.cpu_energy
            row[f"{s}_mem_j"] = m.mem_energy
            cells.append(norm)
        rows.append(row)
        table_rows.append(cells)
    summary: dict[str, float] = {}
    for s in schedulers:
        if s == "GRWS":
            continue
        reductions = [1 - r[s] for r in rows]
        summary[f"{s}_avg_reduction"] = float(np.mean(reductions))
    if "JOSS" in schedulers and "STEER" in schedulers:
        extra = [r["STEER"] - r["JOSS"] for r in rows]
        summary["JOSS_vs_STEER_extra"] = float(np.mean(extra))
    if "JOSS" in schedulers and "JOSS_NoMemDVFS" in schedulers:
        extra = [r["JOSS_NoMemDVFS"] - r["JOSS"] for r in rows]
        summary["memory_dvfs_extra"] = float(np.mean(extra))
    text = format_table(
        ["workload"] + [f"{s} (norm)" for s in schedulers], table_rows
    )
    return ExperimentResult(
        name="fig8",
        title="Figure 8: total energy, normalised to GRWS (lower is better)",
        rows=rows,
        text=text,
        summary=summary,
    )
