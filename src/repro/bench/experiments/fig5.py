"""Figure 5 — CPU and memory power of synthetics on A57 x 2 (section 4.3).

Profiles three synthetic benchmarks (low / medium / high
memory-boundness) on two A57 cores across a ``(f_C, f_M)`` grid and
reports the dynamic rail powers.  The paper's observations, which the
model structure is built on:

- CPU power shows negligible effect from memory frequency (Eq. 4
  drops f_M);
- memory power depends on MB, f_C and f_M (Eq. 5 keeps all three).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.exec_model.engine import ExecutionEngine
from repro.hw.platform import Platform, jetson_tx2
from repro.profiling.synthetic import synthetic_kernels
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams

#: Synthetic sweep indices for the three MB levels (41-kernel sweep:
#: index 4 is ~90% memory, 20 is 50/50, 36 is ~90% compute).
MB_LEVELS = {"high-MB": 4, "mid-MB": 20, "low-MB": 36}

F_C_GRID = (0.652, 1.110, 1.570, 2.040)
F_M_GRID = (0.408, 1.062, 1.866)


def run(
    platform_factory: Callable[[], Platform] = jetson_tx2,
    seed: int = 0,
) -> ExperimentResult:
    platform = platform_factory()
    sim = Simulator()
    engine = ExecutionEngine(
        sim, platform, RngStreams(seed), duration_noise_sigma=0.0
    )
    done: list[float] = []
    engine.on_complete = lambda act: done.append(sim.now)
    kernels = synthetic_kernels(platform)
    a57 = platform.cluster_by_type("a57")
    rows, table_rows = [], []
    cpu_by_level: dict[str, list[float]] = {}
    mem_at_fm: dict[tuple[str, float], list[float]] = {}
    for label, idx in MB_LEVELS.items():
        kernel = kernels[idx]
        for f_c in F_C_GRID:
            for f_m in F_M_GRID:
                for cl in platform.clusters:
                    cl.set_freq(f_c)
                platform.memory.set_freq(f_m)
                idle = engine.rail_powers()
                acc = engine.accountant
                t0, c0, m0 = sim.now, acc.energy("cpu"), acc.energy("mem")
                for core in a57.cores[:2]:
                    engine.start_activity(kernel, core, n_cores_total=2)
                sim.run()
                dt = sim.now - t0
                cpu_dyn = max(0.0, (acc.energy("cpu") - c0) / dt - idle["cpu"])
                mem_dyn = max(0.0, (acc.energy("mem") - m0) / dt - idle["mem"])
                rows.append(
                    {
                        "level": label,
                        "f_c": f_c,
                        "f_m": f_m,
                        "cpu_power_w": cpu_dyn,
                        "mem_power_w": mem_dyn,
                    }
                )
                table_rows.append([label, f_c, f_m, cpu_dyn, mem_dyn])
                cpu_by_level.setdefault(f"{label}@{f_c}", []).append(cpu_dyn)
                mem_at_fm.setdefault((label, f_c), []).append(mem_dyn)
    # Quantify the two observations.
    cpu_fm_spread = float(
        np.mean(
            [
                (max(v) - min(v)) / max(max(v), 1e-9)
                for v in cpu_by_level.values()
            ]
        )
    )
    text = format_table(
        ["MB level", "f_C (GHz)", "f_M (GHz)", "P_cpu_dyn (W)", "P_mem_dyn (W)"],
        table_rows,
    )
    return ExperimentResult(
        name="fig5",
        title="Figure 5: synthetic-benchmark power on A57 x 2 cores",
        rows=rows,
        text=text,
        summary={"cpu_power_fm_sensitivity": cpu_fm_spread},
    )
