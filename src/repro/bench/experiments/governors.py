"""Kernel-governor baselines vs JOSS (extension study).

Compares the classic cpufreq policies — performance, powersave,
ondemand — against JOSS.  Governors see only core utilisation and
bandwidth pressure; JOSS sees per-task characteristics, which is the
paper's core thesis.

Two comparisons matter: (a) on *energy*, JOSS beats or ties the best
governor — notably powersave, which gets close on compute-heavy
workloads only by crawling at the V/f floor and paying ~5-6x in
execution time; (b) on the energy-delay product, JOSS's
performance-seeking MAXP variant sits far below powersave and brackets
gov-performance (winning where task-aware placement beats blind
stealing, paying a modest sampling/confinement premium elsewhere).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig, run as bench_run

SCHEDULERS = ("gov-performance", "gov-ondemand", "gov-powersave", "JOSS", "JOSS_MAXP")
DEFAULT_WORKLOADS = ("slu", "mc-4096", "vg", "st-512")


def run(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    rows, table_rows = [], []
    edp_ratios = []
    for wl in workloads:
        metrics = {s: bench_run((wl, s), config=cfg) for s in SCHEDULERS}
        base = metrics["gov-performance"]
        cells = [wl]
        for s in SCHEDULERS:
            m = metrics[s]
            e_norm = m.total_energy / base.total_energy
            t_norm = m.makespan / base.makespan
            edp = e_norm * t_norm
            rows.append(
                {
                    "workload": wl,
                    "scheduler": s,
                    "energy_norm": e_norm,
                    "time_norm": t_norm,
                    "edp_norm": edp,
                }
            )
            cells += [e_norm, t_norm, edp]
        table_rows.append(cells)
        wl_rows = {r["scheduler"]: r for r in rows if r["workload"] == wl}
        best_gov_energy = min(
            wl_rows[s]["energy_norm"] for s in SCHEDULERS if s.startswith("gov-")
        )
        edp_ratios.append(
            {
                "joss_energy_vs_best_gov": wl_rows["JOSS"]["energy_norm"] / best_gov_energy,
                "maxp_edp_vs_performance": wl_rows["JOSS_MAXP"]["edp_norm"],
            }
        )
    headers = ["workload"]
    for s in SCHEDULERS:
        headers += [f"{s} E", "t", "EDP"]
    text = format_table(headers, table_rows, float_fmt="{:.2f}")
    return ExperimentResult(
        name="governors",
        title=(
            "Kernel governors vs JOSS (normalised to gov-performance; "
            "E = energy, t = time, EDP = energy-delay product)"
        ),
        rows=rows,
        text=text,
        summary={
            "joss_energy_vs_best_governor": float(
                np.mean([x["joss_energy_vs_best_gov"] for x in edp_ratios])
            ),
            "joss_maxp_edp_vs_performance": float(
                np.mean([x["maxp_edp_vs_performance"] for x in edp_ratios])
            ),
        },
    )
