"""Design-choice ablations called out in DESIGN.md.

1. **Frequency coordination** (section 5.3): arithmetic mean vs min /
   max / ours / theirs on workloads with concurrent DVFS conflicts —
   the paper evaluated these and found the mean best.
2. **Task coarsening** (section 5.3): on vs off for the fine-grained
   Fibonacci workload.
3. **Selection search**: steepest descent vs exhaustive, end-to-end
   (does the pruning change the energy outcome?).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig, run as bench_run

COORDINATION_WORKLOADS = ("dp", "slu", "st-512")
STRATEGIES = ("mean", "min", "max", "ours", "theirs")


def run(config: Optional[BenchConfig] = None) -> ExperimentResult:
    cfg = config or BenchConfig(repetitions=2)
    rows, sections = [], []

    # 1. Coordination strategy.
    coord_rows = []
    per_strategy: dict[str, list[float]] = {s: [] for s in STRATEGIES}
    for wl in COORDINATION_WORKLOADS:
        cells = [wl]
        energies = {}
        for strat in STRATEGIES:
            c = BenchConfig(
                platform_factory=cfg.platform_factory,
                scale=cfg.scale,
                repetitions=cfg.repetitions,
                seed=cfg.seed,
                workload_seed=cfg.workload_seed,
                scheduler_kwargs={"coordination": strat},
            )
            m = bench_run((wl, "JOSS"), config=c)
            energies[strat] = m.total_energy
        for strat in STRATEGIES:
            norm = energies[strat] / energies["mean"]
            cells.append(norm)
            per_strategy[strat].append(norm)
            rows.append(
                {"ablation": "coordination", "workload": wl,
                 "variant": strat, "energy_vs_mean": norm}
            )
        coord_rows.append(cells)
    sections.append(
        "Coordination heuristic (energy normalised to 'mean'):\n"
        + format_table(["workload"] + list(STRATEGIES), coord_rows)
    )

    # 2. Coarsening on/off for fine-grained tasks.
    coarse_rows = []
    for enabled in (True, False):
        from repro.core.coarsening import CoarseningPolicy

        c = BenchConfig(
            platform_factory=cfg.platform_factory,
            scale=cfg.scale,
            repetitions=cfg.repetitions,
            seed=cfg.seed,
            workload_seed=cfg.workload_seed,
            scheduler_kwargs={"coarsening": CoarseningPolicy(enabled=enabled)},
        )
        m = bench_run(("fb", "JOSS"), config=c)
        coarse_rows.append(
            ["on" if enabled else "off", m.total_energy, m.makespan * 1e3,
             m.extras.get("coarsening_suppressed", 0)]
        )
        rows.append(
            {"ablation": "coarsening", "workload": "fb",
             "variant": "on" if enabled else "off",
             "energy_j": m.total_energy, "makespan_s": m.makespan}
        )
    sections.append(
        "Task coarsening on fine-grained FB:\n"
        + format_table(
            ["coarsening", "energy (J)", "time (ms)", "suppressed DVFS reqs"],
            coarse_rows,
        )
    )

    # 3. Selector: steepest vs exhaustive, end to end.
    sel_rows = []
    for wl in ("slu", "vg"):
        cells = [wl]
        for selector in ("steepest", "exhaustive"):
            c = BenchConfig(
                platform_factory=cfg.platform_factory,
                scale=cfg.scale,
                repetitions=cfg.repetitions,
                seed=cfg.seed,
                workload_seed=cfg.workload_seed,
                scheduler_kwargs={"selector": selector},
            )
            m = bench_run((wl, "JOSS"), config=c)
            cells += [m.total_energy, m.extras.get("selection_evaluations", 0)]
            rows.append(
                {"ablation": "selector", "workload": wl, "variant": selector,
                 "energy_j": m.total_energy,
                 "evaluations": m.extras.get("selection_evaluations", 0)}
            )
        sel_rows.append(cells)
    sections.append(
        "Selection search, end to end:\n"
        + format_table(
            ["workload", "steepest E (J)", "steepest evals",
             "exhaustive E (J)", "exhaustive evals"],
            sel_rows,
        )
    )

    summary = {
        f"coordination_{s}_avg": float(np.mean(per_strategy[s]))
        for s in STRATEGIES
    }
    return ExperimentResult(
        name="ablation",
        title="Ablations: coordination heuristic, coarsening, selection search",
        rows=rows,
        text="\n\n".join(sections),
        summary=summary,
    )
