"""DAG-parallelism sweep (the paper's dop dimension, section 7.1).

The synthetics MM/MC/ST expose a configurable *dop* (task concurrency =
tasks / critical path); the paper evaluates "different task granularity
and task DAG parallelism settings ... a broad spectrum of task DAGs".
This experiment sweeps dop for each synthetic and reports JOSS's energy
vs GRWS across the spectrum — from the serial dop=1 case of the
motivation study to dop > cores.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig, run as bench_run

WORKLOADS = ("mm-256", "mc-4096", "st-512")
DOPS = (1, 2, 4, 8)


def run(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = WORKLOADS,
    dops: Sequence[int] = DOPS,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    rows, table_rows = [], []
    ratios = []
    for wl in workloads:
        cells = [wl]
        for dop in dops:
            grws = bench_run((wl, "GRWS"), config=cfg, dop=dop)
            joss = bench_run((wl, "JOSS"), config=cfg, dop=dop)
            ratio = joss.total_energy / grws.total_energy
            ratios.append(ratio)
            rows.append(
                {
                    "workload": wl,
                    "dop": dop,
                    "joss_vs_grws_energy": ratio,
                    "joss_vs_grws_time": joss.makespan / grws.makespan,
                }
            )
            cells.append(ratio)
        table_rows.append(cells)
    text = format_table(
        ["workload"] + [f"dop={d}" for d in dops], table_rows
    )
    return ExperimentResult(
        name="dop",
        title="dop sweep: JOSS total energy normalised to GRWS",
        rows=rows,
        text=text,
        summary={
            "mean_ratio": float(np.mean(ratios)),
            "worst_ratio": float(np.max(ratios)),
            "best_ratio": float(np.min(ratios)),
        },
    )
