"""Figure 2 — exploring energy/performance trade-offs (section 2.3).

Starting from the configuration with the least total energy (the first
bar of the paper's figure), raise core / memory frequency and report
the speedup obtained and the energy premium paid, up to the fastest
configuration.  The paper's datapoints: raising f_C from 1.11 to 1.57
gives MM 1.4x (+10% energy) and MC 1.3x (+1%); maximum speedups are
1.8x (+36%) and 1.9x (+30%).
"""

from __future__ import annotations

from typing import Callable

from repro.bench.experiments.fig1 import BENCHMARKS
from repro.bench.oracle import ConfigurationExplorer
from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.hw.platform import Platform, jetson_tx2


def run(
    platform_factory: Callable[[], Platform] = jetson_tx2,
    seed: int = 0,
    tasks_per_point: int = 2,
) -> ExperimentResult:
    explorer = ConfigurationExplorer(platform_factory, seed=seed)
    rows, table_rows = [], []
    summary: dict[str, float] = {}
    for bench_name, kernel in BENCHMARKS.items():
        points = explorer.sweep(kernel, tasks=tasks_per_point)
        base = min(points.values(), key=lambda p: p.total_energy)
        # Frontier along rising core frequency on the base <T_C, N_C>,
        # with f_M re-optimised for energy at each step (the trade-off
        # curve the scheduler exposes to the user).
        cluster = explorer.platform.cluster_by_type(base.cluster)
        frontier = []
        for f_c in cluster.opps:
            if f_c < base.f_c:
                continue
            candidates = [
                p
                for (cl, nc, fc, fm), p in points.items()
                if cl == base.cluster and nc == base.n_cores
                and abs(fc - f_c) < 1e-9
            ]
            fastest_energy = min(
                (p for p in candidates if p.time <= base.time / 1.0001 or f_c == base.f_c),
                key=lambda p: p.total_energy,
                default=min(candidates, key=lambda p: p.total_energy),
            )
            frontier.append(fastest_energy)
        fastest = min(points.values(), key=lambda p: p.time)
        for p in frontier + [fastest]:
            speedup = base.time / p.time
            premium = p.total_energy / base.total_energy - 1
            label = "fastest overall" if p is fastest else "frontier"
            rows.append(
                {
                    "benchmark": bench_name,
                    "kind": label,
                    "config": p.config_str(),
                    "speedup": speedup,
                    "energy_premium": premium,
                }
            )
            table_rows.append(
                [bench_name, label, p.config_str(), speedup, premium * 100]
            )
        summary[f"{bench_name}_max_speedup"] = base.time / fastest.time
        summary[f"{bench_name}_max_premium"] = (
            fastest.total_energy / base.total_energy - 1
        )
    text = format_table(
        ["bench", "kind", "config", "speedup (x)", "energy premium (%)"],
        table_rows,
        float_fmt="{:.2f}",
    )
    return ExperimentResult(
        name="fig2",
        title="Figure 2: energy/performance trade-off exploration",
        rows=rows,
        text=text,
        summary=summary,
    )
