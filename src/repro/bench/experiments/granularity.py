"""Task-granularity sweep (extension study).

The paper evaluates "different task granularity ... settings" via the
two sizes of each synthetic (Fig. 8).  This experiment sweeps the axis
continuously: the same *total* work, chopped into tasks of varying
size (per-task work scaled by g, task count by 1/g).  Expectations:

- coarse tasks amortise sampling and DVFS transitions: JOSS's full
  advantage;
- very fine tasks (sub-millisecond) push JOSS into its coarsening path
  (section 5.3) — savings shrink but must not invert, since coarsening
  suppresses per-task throttling rather than mis-throttling.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.runtime.executor import Executor
from repro.schedulers.registry import make_scheduler
from repro.workloads.matmul import _KERNELS as MM_KERNELS
from repro.workloads.memcopy import _KERNELS as MC_KERNELS

GRAINS = (0.1, 0.3, 1.0, 3.0)

BASES = {
    "mm": (MM_KERNELS[256], 120),
    "mc": (MC_KERNELS[4096], 100),
}


def _graph(base: KernelSpec, base_count: int, grain: float, dop: int = 4) -> TaskGraph:
    kernel = base.scaled(grain, name=f"{base.name}.g{grain:g}")
    total = max(dop * 2, int(round(base_count / grain)))
    chain_len = max(2, total // dop)
    g = TaskGraph(f"{base.name}-g{grain:g}")
    for _ in range(dop):
        prev = None
        for _ in range(chain_len):
            prev = g.add_task(kernel, deps=[prev] if prev else None)
    return g


def run(
    config: Optional[BenchConfig] = None,
    grains: Sequence[float] = GRAINS,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    rows, table_rows = [], []
    for name, (base, base_count) in BASES.items():
        cells = [name]
        for grain in grains:
            energies = {}
            for s in ("GRWS", "JOSS"):
                reps = []
                for r in range(cfg.repetitions):
                    suite = None if s == "GRWS" else cfg.suite()
                    ex = Executor(
                        cfg.platform_factory(), make_scheduler(s, suite),
                        seed=cfg.seed + 1000 * r,
                    )
                    m = ex.run(_graph(base, base_count, grain))
                    reps.append(m.total_energy)
                energies[s] = float(np.mean(reps))
            ratio = energies["JOSS"] / energies["GRWS"]
            rows.append(
                {
                    "benchmark": name,
                    "grain": grain,
                    "tasks": len(_graph(base, base_count, grain)),
                    "joss_vs_grws_energy": ratio,
                }
            )
            cells.append(ratio)
        table_rows.append(cells)
    text = format_table(
        ["benchmark"] + [f"grain x{g:g}" for g in grains], table_rows
    )
    ratios = [r["joss_vs_grws_energy"] for r in rows]
    return ExperimentResult(
        name="granularity",
        title="Task-granularity sweep: JOSS energy normalised to GRWS",
        rows=rows,
        text=text,
        summary={
            "worst_ratio": float(np.max(ratios)),
            "best_ratio": float(np.min(ratios)),
        },
    )
