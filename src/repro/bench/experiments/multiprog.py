"""Multi-programmed co-scheduling (extension study).

The memory-DVFS works the paper builds on (MemScale, CoScale) target
*multi-programmed* workloads; the paper's contribution is doing it for
task-parallel applications.  This experiment bridges the two settings:
two applications with opposite characteristics — compute-bound MM and
memory-bound MC — run *concurrently* on one platform (their DAGs are
merged with no cross-dependencies), so the schedulers must juggle
conflicting frequency demands continuously.

Expected shape: JOSS still wins (it coordinates conflicting f_M
demands by averaging, section 5.3), and the mix stresses exactly the
interference path single-application runs exercise only during phase
changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.runtime.dag import TaskGraph
from repro.runtime.executor import Executor
from repro.schedulers.registry import make_scheduler
from repro.workloads.registry import build_workload

SCHEDULERS = ("GRWS", "ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS", "JOSS")

MIXES = (
    ("mm-256", "mc-4096"),
    ("slu", "mc-8192"),
    ("vg", "dp"),
)


def run(config: Optional[BenchConfig] = None) -> ExperimentResult:
    cfg = config or BenchConfig()
    rows, table_rows = [], []
    for mix in MIXES:
        mix_name = "+".join(mix)
        energies = {}
        for s in SCHEDULERS:
            reps = []
            for r in range(cfg.repetitions):
                graphs = [
                    build_workload(wl, scale=cfg.scale, seed=cfg.workload_seed + i)
                    for i, wl in enumerate(mix)
                ]
                merged = TaskGraph.combine(graphs)
                suite = None if s in ("GRWS", "Aequitas") else cfg.suite()
                ex = Executor(
                    cfg.platform_factory(), make_scheduler(s, suite),
                    seed=cfg.seed + 1000 * r,
                )
                m = ex.run(merged)
                reps.append(m.total_energy)
            energies[s] = float(np.mean(reps))
        base = energies["GRWS"]
        row = {"mix": mix_name}
        cells = [mix_name]
        for s in SCHEDULERS:
            row[s] = energies[s] / base
            cells.append(energies[s] / base)
        rows.append(row)
        table_rows.append(cells)
    summary = {
        f"{s}_avg_reduction": float(np.mean([1 - r[s] for r in rows]))
        for s in SCHEDULERS[1:]
    }
    text = format_table(["mix"] + [f"{s} (norm)" for s in SCHEDULERS], table_rows)
    return ExperimentResult(
        name="multiprog",
        title=(
            "Multi-programmed mixes: total energy normalised to GRWS "
            "(two applications share the platform concurrently)"
        ),
        rows=rows,
        text=text,
        summary=summary,
    )
