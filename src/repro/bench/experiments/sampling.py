"""Section 5.1 — cost of the online sampling phase.

The paper reports JOSS spending 0.8% of total execution time in
sampling, leaning on kernels being invoked very many times.  Our
scaled-down graphs invoke kernels tens-to-hundreds of times, so the
fraction is larger at scale 1; this experiment shows the fraction and
how it falls as the workload scale (invocations per kernel) grows —
extrapolating toward the paper's regime.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec

DEFAULT_WORKLOADS = ("hd-small", "dp", "slu", "st-512")
DEFAULT_SCALES = (1.0, 2.0, 4.0)


def sweep_spec(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scales: Sequence[float] = DEFAULT_SCALES,
) -> SweepSpec:
    """JOSS across the workload x scale grid, one repetition each (the
    sampling share is structural, not noise-sensitive)."""
    base_cfg = config or BenchConfig(repetitions=1)
    return SweepSpec(
        workloads=tuple(workloads),
        schedulers=("JOSS",),
        platform=base_cfg.platform_name(),
        scales=tuple(scales),
        repetitions=1,
        seed=base_cfg.seed,
        workload_seed=base_cfg.workload_seed,
        profile_seed=base_cfg.profile_seed,
    )


def run(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scales: Sequence[float] = DEFAULT_SCALES,
    workers: int = 0,
    cache=None,
    progress=None,
) -> ExperimentResult:
    spec = sweep_spec(config, workloads, scales)
    result = run_sweep(spec, workers=workers, cache=cache, progress=progress)
    result.raise_on_failure()
    averaged = result.averaged()
    rows, table_rows = [], []
    largest_scale_fracs = []
    for wl in workloads:
        for scale in scales:
            m = averaged[(wl, "JOSS", float(scale))]
            busy = sum(ks.total_time for ks in m.per_kernel.values())
            frac_busy = m.sampling_time / busy if busy > 0 else float("nan")
            rows.append(
                {
                    "workload": wl,
                    "scale": scale,
                    "tasks": m.tasks_executed,
                    "sampling_time_s": m.sampling_time,
                    "fraction_of_task_time": frac_busy,
                }
            )
            table_rows.append(
                [wl, scale, m.tasks_executed, m.sampling_time * 1e3, frac_busy * 100]
            )
            if scale == max(scales):
                largest_scale_fracs.append(frac_busy)
    text = format_table(
        ["workload", "scale", "tasks", "sampling time (ms)",
         "sampling share of task time (%)"],
        table_rows,
        float_fmt="{:.2f}",
    )
    return ExperimentResult(
        name="sampling",
        title="Section 5.1: online sampling-phase cost vs workload scale",
        rows=rows,
        text=text,
        summary={
            "largest_scale_avg_fraction": float(np.nanmean(largest_scale_fracs)),
        },
    )
