"""Section 7.4 — overhead analysis.

Two parts:

1. **Search cost**: steepest-descent vs exhaustive configuration
   selection over the same per-kernel tables — cost evaluations
   performed and the energy quality of the chosen configuration.
   Paper: steepest descent cuts timing overhead ~70% while retaining
   ~97% of the energy benefit; the gap grows on larger platforms.
2. **Look-up-table storage**: the ``3 * M * log2(N/M) * Nf_C * Nf_M``
   per-kernel entry count, evaluated for the TX2 and larger synthetic
   platforms.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.bench.oracle import ConfigurationExplorer
from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.core.goals import MinTotalEnergy
from repro.core.selection import exhaustive_select, steepest_descent_select
from repro.hw.platform import Platform, jetson_tx2
from repro.models.mb import estimate_mb
from repro.models.suite import ModelSuite
from repro.models.tables import storage_entries
from repro.models.training import profile_and_fit
from repro.profiling.synthetic import synthetic_kernels


def _tables_for(suite: ModelSuite, explorer: ConfigurationExplorer, kernel):
    platform = explorer.platform
    tables = {}
    for cl_name, n_cores in suite.config_keys():
        ref = explorer.measure(
            kernel, cl_name, n_cores, suite.f_c_ref, suite.f_m_ref, tasks=1
        )
        samp = explorer.measure(
            kernel, cl_name, n_cores, suite.f_c_sample, suite.f_m_ref, tasks=1
        )
        mb = estimate_mb(ref.time, samp.time, suite.f_c_ref, suite.f_c_sample)
        cluster = platform.cluster_by_type(cl_name)
        tables[(cl_name, n_cores)] = suite.build_table(
            cl_name, n_cores, mb, ref.time,
            cluster.opps.as_array(), platform.memory.opps.as_array(),
        )
    return tables


def run(
    platform_factory: Callable[[], Platform] = jetson_tx2,
    suite: Optional[ModelSuite] = None,
    n_kernels: int = 9,
    seed: int = 0,
) -> ExperimentResult:
    suite = suite or profile_and_fit(platform_factory, seed=seed)
    explorer = ConfigurationExplorer(platform_factory, seed=seed + 1)
    platform = explorer.platform
    # Held-out kernels spanning the MB range (every 5th synthetic).
    kernels = synthetic_kernels(platform, count=41, t_ref=0.004)[::41 // n_kernels]
    goal_cost = lambda tab: tab.energy_grid(4.0)  # noqa: E731
    rows, table_rows = [], []
    eval_reductions, energy_ratios, time_ratios = [], [], []
    for kernel in kernels:
        tables = _tables_for(suite, explorer, kernel)
        t0 = time.perf_counter()
        ex = exhaustive_select(tables, goal_cost)
        t_ex = time.perf_counter() - t0
        t0 = time.perf_counter()
        sd = steepest_descent_select(tables, goal_cost)
        t_sd = time.perf_counter() - t0
        same = (ex.cluster, ex.n_cores, ex.i_fc, ex.i_fm) == (
            sd.cluster, sd.n_cores, sd.i_fc, sd.i_fm,
        )
        energy_ratio = ex.cost / sd.cost if sd.cost > 0 else float("nan")
        eval_red = 1 - sd.evaluations / ex.evaluations
        eval_reductions.append(eval_red)
        energy_ratios.append(energy_ratio)
        time_ratios.append(1 - t_sd / t_ex if t_ex > 0 else float("nan"))
        rows.append(
            {
                "kernel": kernel.name,
                "exhaustive_evals": ex.evaluations,
                "steepest_evals": sd.evaluations,
                "eval_reduction": eval_red,
                "same_config": same,
                "energy_ratio": energy_ratio,
            }
        )
        table_rows.append(
            [kernel.name, ex.evaluations, sd.evaluations, eval_red * 100,
             "yes" if same else "no", energy_ratio * 100]
        )
    storage_rows = []
    for label, m, n_per, nfc, nfm in [
        ("jetson-tx2", 2, 4, 12, 7),
        ("4 clusters x 8 cores", 4, 8, 12, 7),
        ("8 clusters x 16 cores", 8, 16, 16, 8),
    ]:
        storage_rows.append([label, storage_entries(m, n_per, nfc, nfm)])
    text = (
        format_table(
            ["kernel", "exhaustive", "steepest", "evals saved (%)",
             "same config", "energy quality (%)"],
            table_rows,
            float_fmt="{:.1f}",
        )
        + "\n\nPer-kernel look-up-table storage (entries, 3 tables):\n"
        + format_table(["platform", "entries"], storage_rows)
    )
    return ExperimentResult(
        name="overhead",
        title="Section 7.4: steepest descent vs exhaustive search + LUT storage",
        rows=rows,
        text=text,
        summary={
            "avg_eval_reduction": float(np.mean(eval_reductions)),
            "avg_energy_quality": float(np.mean(energy_ratios)),
            "avg_wall_time_reduction": float(np.nanmean(time_ratios)),
        },
    )
