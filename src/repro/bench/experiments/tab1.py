"""Table 1 — the evaluated benchmark suite.

Regenerates the suite inventory from the workload registry: kernels,
task counts (scaled and paper-size), and DAG parallelism.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.workloads.registry import workload_table


def run(scale: float = 1.0) -> ExperimentResult:
    rows = workload_table()
    table_rows = [
        [
            r["name"],
            r["abbr"],
            ", ".join(r["kernels"]),
            r["tasks"],
            r["paper_tasks"],
            r["dop"],
            r["description"],
        ]
        for r in rows
    ]
    text = format_table(
        ["workload", "abbr", "kernels", "tasks", "paper tasks", "dop", "description"],
        table_rows,
        float_fmt="{:.2f}",
    )
    return ExperimentResult(
        name="tab1",
        title="Table 1: evaluated benchmarks (scaled reproduction)",
        rows=rows,
        text=text,
        summary={"workloads": float(len(rows))},
    )
