"""Figure 1 — why memory energy and joint knobs matter (section 2).

Reproduces the four configuration-selection scenarios on MM
(compute-intensive) and MC (memory-intensive) at dop = 1:

1. least **CPU** energy over ``<T_C, N_C, f_C>``, f_M pinned at max
   (the state of the art, STEER);
2. least **total** energy over the same three knobs, f_M pinned;
3. scenario 1's ``<T_C, N_C, f_C>``, then f_M tuned orthogonally;
4. least total energy over all four knobs jointly (JOSS's approach).

Expected shape: E2 <= E1 (counting memory energy changes the chosen
configuration), E4 <= E3 (joint beats orthogonal), with the gaps wider
for MC than MM.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.bench.oracle import ConfigurationExplorer, MeasuredPoint
from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.hw.platform import Platform, jetson_tx2
from repro.workloads.matmul import _KERNELS as MM_KERNELS
from repro.workloads.memcopy import _KERNELS as MC_KERNELS

#: The two motivation benchmarks (paper section 2).
BENCHMARKS = {
    "MM": MM_KERNELS[512],
    "MC": MC_KERNELS[4096],
}


def _argmin(points, key, fm_max: Optional[float] = None, fixed3=None):
    best = None
    for (cl, nc, fc, fm), p in points.items():
        if fm_max is not None and abs(fm - fm_max) > 1e-9:
            continue
        if fixed3 is not None and (cl, nc, fc) != fixed3:
            continue
        if best is None or key(p) < key(best):
            best = p
    assert best is not None
    return best


def run(
    platform_factory: Callable[[], Platform] = jetson_tx2,
    seed: int = 0,
    tasks_per_point: int = 2,
) -> ExperimentResult:
    explorer = ConfigurationExplorer(platform_factory, seed=seed)
    fm_max = explorer.platform.memory.opps.max
    rows = []
    table_rows = []
    summary: dict[str, float] = {}
    for bench_name, kernel in BENCHMARKS.items():
        points = explorer.sweep(kernel, tasks=tasks_per_point)
        s1 = _argmin(points, lambda p: p.cpu_energy, fm_max=fm_max)
        s2 = _argmin(points, lambda p: p.total_energy, fm_max=fm_max)
        s3 = _argmin(
            points,
            lambda p: p.total_energy,
            fixed3=(s1.cluster, s1.n_cores, s1.f_c),
        )
        s4 = _argmin(points, lambda p: p.total_energy)
        scenarios = {
            "1 least-CPU-energy (state of the art)": s1,
            "2 least-total-energy, 3 knobs": s2,
            "3 scenario-1 + orthogonal f_M": s3,
            "4 joint four knobs (JOSS)": s4,
        }
        for label, p in scenarios.items():
            rows.append(
                {
                    "benchmark": bench_name,
                    "scenario": label,
                    "config": p.config_str(),
                    "total_energy_j": p.total_energy,
                    "normalized": p.total_energy / s1.total_energy,
                }
            )
            table_rows.append(
                [
                    bench_name,
                    label,
                    p.config_str(),
                    p.total_energy * 1e3,
                    p.total_energy / s1.total_energy,
                ]
            )
        summary[f"{bench_name}_s2_vs_s1"] = 1 - s2.total_energy / s1.total_energy
        summary[f"{bench_name}_s4_vs_s3"] = 1 - s4.total_energy / s3.total_energy
    text = format_table(
        ["bench", "scenario", "config <T_C,N_C,f_C,f_M>", "E_total (mJ)", "norm"],
        table_rows,
    )
    return ExperimentResult(
        name="fig1",
        title="Figure 1: total energy under four configuration-selection scenarios",
        rows=rows,
        text=text,
        summary=summary,
    )
