"""Portability study — the same framework on an ODROID-XU4 model.

The paper argues its PMC-free models make JOSS portable across
architectures (section 4).  This experiment re-runs the Figure-8
scheduler line-up, unchanged, on a second platform: an ODROID-XU4
model (A15x4 + A7x4) with *heterogeneous per-cluster OPP ladders* and
*no memory DVFS knob* — the other common asymmetric board ([2] in the
paper).

Expected shape: the scheduler ordering carries over (JOSS lowest,
GRWS highest), with JOSS degenerating gracefully to total-energy
scheduling over <T_C, N_C, f_C> since the memory-frequency grid has a
single column.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.hw.platform import odroid_xu4
from repro.models.training import profile_and_fit
from repro.runtime.executor import Executor
from repro.schedulers.registry import make_scheduler
from repro.workloads.registry import build_workload

SCHEDULERS = ("GRWS", "ERASE", "Aequitas", "STEER", "JOSS")
DEFAULT_WORKLOADS = ("hd-big", "dp", "vg", "slu", "mm-256", "mc-4096", "st-512")


def run(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    suite = profile_and_fit(odroid_xu4, seed=cfg.profile_seed)
    rows, table_rows = [], []
    for wl in workloads:
        energies = {}
        for s in SCHEDULERS:
            reps = []
            for r in range(cfg.repetitions):
                sched = make_scheduler(
                    s, None if s in ("GRWS", "Aequitas") else suite
                )
                ex = Executor(odroid_xu4(), sched, seed=cfg.seed + 1000 * r)
                m = ex.run(
                    build_workload(wl, scale=cfg.scale, seed=cfg.workload_seed)
                )
                reps.append(m.total_energy)
            energies[s] = float(np.mean(reps))
        base = energies["GRWS"]
        row = {"workload": wl}
        cells = [wl]
        for s in SCHEDULERS:
            row[s] = energies[s] / base
            cells.append(energies[s] / base)
        rows.append(row)
        table_rows.append(cells)
    summary = {}
    for s in SCHEDULERS[1:]:
        summary[f"{s}_avg_reduction"] = float(
            np.mean([1 - r[s] for r in rows])
        )
    text = format_table(["workload"] + [f"{s} (norm)" for s in SCHEDULERS],
                        table_rows)
    return ExperimentResult(
        name="portability",
        title=(
            "Portability: Figure-8 line-up on the ODROID-XU4 model "
            "(heterogeneous ladders, no memory DVFS; norm. to GRWS)"
        ),
        rows=rows,
        text=text,
        summary=summary,
    )
