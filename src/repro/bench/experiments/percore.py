"""Extension study — what does cluster-level DVFS cost?

The paper's platform groups cores into clusters sharing one frequency
(cheaper silicon), which forces JOSS's frequency *coordination* between
concurrent tasks (section 5.3).  This experiment quantifies that
design constraint by comparing three JOSS setups:

1. **clustered** — the paper's TX2 (cluster DVFS + moldable tasks);
2. **clustered-nc1** — same platform, moldable execution disabled
   (isolates the moldability benefit from the DVFS granularity);
3. **per-core** — an idealised TX2 where every core is its own DVFS
   domain (no coordination conflicts; no moldability by construction).

Comparing (2) and (3) isolates the DVFS-granularity effect; (1) vs (2)
shows what moldable execution contributes on the clustered design.

Finding: on this platform model per-core DVFS does *not* pay for
itself — every additional frequency domain carries its own uncore
(PLL/regulator/interconnect) power, and with six domains instead of
two that overhead outweighs the coordination conflicts it removes.
This is the economic argument for core-clustered designs the paper's
introduction cites ([27]), emerging from the model rather than being
assumed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.bench.report import format_table
from repro.bench.result import ExperimentResult
from repro.bench.runner import BenchConfig
from repro.core.joss import JossScheduler
from repro.hw.platform import jetson_tx2, jetson_tx2_per_core
from repro.models.suite import ModelSuite
from repro.models.training import profile_and_fit
from repro.runtime.executor import Executor
from repro.workloads.registry import build_workload

DEFAULT_WORKLOADS = ("mm-256", "mc-4096", "slu", "vg")


def _nc1_suite(suite: ModelSuite) -> ModelSuite:
    """Restrict a fitted suite to single-core configurations."""
    models = {k: v for k, v in suite.models.items() if k[1] == 1}
    return ModelSuite(
        models,
        suite.idle,
        f_c_ref=suite.f_c_ref,
        f_m_ref=suite.f_m_ref,
        f_c_sample=suite.f_c_sample,
        platform_name=suite.platform_name + " (nc=1)",
    )


def run(
    config: Optional[BenchConfig] = None,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
) -> ExperimentResult:
    cfg = config or BenchConfig()
    clustered_suite = profile_and_fit(jetson_tx2, seed=cfg.profile_seed)
    percore_suite = profile_and_fit(jetson_tx2_per_core, seed=cfg.profile_seed)
    setups = {
        "clustered": (jetson_tx2, clustered_suite),
        "clustered-nc1": (jetson_tx2, _nc1_suite(clustered_suite)),
        "per-core": (jetson_tx2_per_core, percore_suite),
    }
    rows, table_rows = [], []
    ratios_dvfs, ratios_mold = [], []
    for wl in workloads:
        cells = [wl]
        energies = {}
        for label, (factory, suite) in setups.items():
            reps = []
            for r in range(cfg.repetitions):
                ex = Executor(
                    factory(), JossScheduler(suite), seed=cfg.seed + 1000 * r
                )
                m = ex.run(build_workload(wl, scale=cfg.scale, seed=cfg.workload_seed))
                reps.append(m)
            energy = float(np.mean([m.total_energy for m in reps]))
            makespan = float(np.mean([m.makespan for m in reps]))
            energies[label] = energy
            rows.append(
                {"workload": wl, "setup": label,
                 "total_energy_j": energy, "makespan_s": makespan}
            )
            cells += [energy, makespan * 1e3]
        table_rows.append(cells)
        ratios_dvfs.append(energies["per-core"] / energies["clustered-nc1"])
        ratios_mold.append(energies["clustered"] / energies["clustered-nc1"])
    text = format_table(
        ["workload",
         "clustered E (J)", "t (ms)",
         "nc1 E (J)", "t (ms)",
         "per-core E (J)", "t (ms)"],
        table_rows,
    )
    return ExperimentResult(
        name="percore",
        title="Extension: per-core DVFS vs the paper's cluster-level DVFS",
        rows=rows,
        text=text,
        summary={
            "percore_vs_clustered_nc1": float(np.mean(ratios_dvfs)),
            "moldable_benefit": float(np.mean(ratios_mold)),
        },
    )
