"""Structured experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


@dataclass
class ExperimentResult:
    """Rows + rendered table for one reproduced paper artefact."""

    name: str
    title: str
    rows: list[dict[str, Any]]
    text: str
    #: Headline scalars (e.g. average reductions) for assertions/docs.
    summary: dict[str, float] = field(default_factory=dict)

    def save(self, directory: str | Path) -> Path:
        """Write the rendered table (plus summary) to ``<name>.txt``."""
        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        path = d / f"{self.name}.txt"
        lines = [self.title, "=" * len(self.title), "", self.text]
        if self.summary:
            lines += ["", "Summary:"]
            lines += [f"  {k} = {v:.4g}" for k, v in self.summary.items()]
        path.write_text("\n".join(lines) + "\n")
        return path
