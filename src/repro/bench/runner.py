"""Run (workload, scheduler) combinations and collect metrics.

Mirrors the paper's methodology (section 6.1): frequencies are pinned
at maximum before each run, each experiment is repeated and the
arithmetic average reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.hw.platform import Platform, jetson_tx2
from repro.models.suite import ModelSuite
from repro.models.training import profile_and_fit
from repro.runtime.executor import Executor
from repro.runtime.metrics import RunMetrics
from repro.schedulers.registry import make_scheduler, needs_suite
from repro.workloads.registry import build_workload


@dataclass
class BenchConfig:
    """Shared settings for one bench invocation."""

    platform_factory: Callable[[], Platform] = jetson_tx2
    #: Workload size multiplier (1.0 = CI-sized, larger = paper-ward).
    scale: float = 1.0
    #: Repetitions per (workload, scheduler); the paper uses 10.
    repetitions: int = 2
    seed: int = 11
    workload_seed: int = 3
    profile_seed: int = 0
    scheduler_kwargs: dict = field(default_factory=dict)

    def suite(self) -> ModelSuite:
        """Fitted (cached) model suite for the platform."""
        return profile_and_fit(self.platform_factory, seed=self.profile_seed)


def run_one(
    workload: str,
    scheduler_name: str,
    config: Optional[BenchConfig] = None,
    repetition: int = 0,
    **workload_overrides,
) -> RunMetrics:
    """One run of one scheduler on one workload."""
    cfg = config or BenchConfig()
    suite = cfg.suite() if needs_suite(scheduler_name) else None
    sched = make_scheduler(scheduler_name, suite, **cfg.scheduler_kwargs)
    graph = build_workload(
        workload, scale=cfg.scale, seed=cfg.workload_seed, **workload_overrides
    )
    ex = Executor(
        cfg.platform_factory(), sched, seed=cfg.seed + 1000 * repetition
    )
    return ex.run(graph)


def run_averaged(
    workload: str,
    scheduler_name: str,
    config: Optional[BenchConfig] = None,
    **workload_overrides,
) -> RunMetrics:
    """Average metrics over ``config.repetitions`` runs (paper: 10)."""
    cfg = config or BenchConfig()
    runs = [
        run_one(workload, scheduler_name, cfg, repetition=r, **workload_overrides)
        for r in range(cfg.repetitions)
    ]
    avg = RunMetrics(scheduler=scheduler_name, workload=workload)
    avg.makespan = float(np.mean([m.makespan for m in runs]))
    avg.cpu_energy = float(np.mean([m.cpu_energy for m in runs]))
    avg.mem_energy = float(np.mean([m.mem_energy for m in runs]))
    avg.cpu_energy_exact = float(np.mean([m.cpu_energy_exact for m in runs]))
    avg.mem_energy_exact = float(np.mean([m.mem_energy_exact for m in runs]))
    avg.tasks_executed = runs[0].tasks_executed
    avg.steals = int(np.mean([m.steals for m in runs]))
    avg.cluster_freq_transitions = int(
        np.mean([m.cluster_freq_transitions for m in runs])
    )
    avg.memory_freq_transitions = int(
        np.mean([m.memory_freq_transitions for m in runs])
    )
    avg.sampling_time = float(np.mean([m.sampling_time for m in runs]))
    avg.extras = runs[0].extras
    # Per-kernel stats are structural (placements, invocations); the
    # first repetition is representative.
    avg.per_kernel = runs[0].per_kernel
    return avg


def run_matrix(
    workloads: Sequence[str],
    schedulers: Sequence[str],
    config: Optional[BenchConfig] = None,
) -> dict[str, dict[str, RunMetrics]]:
    """``{workload: {scheduler: averaged metrics}}`` over the grid."""
    cfg = config or BenchConfig()
    out: dict[str, dict[str, RunMetrics]] = {}
    for wl in workloads:
        out[wl] = {}
        for s in schedulers:
            out[wl][s] = run_averaged(wl, s, cfg)
    return out
