"""Run (workload, scheduler) combinations and collect metrics.

Mirrors the paper's methodology (section 6.1): frequencies are pinned
at maximum before each run, each experiment is repeated and the
arithmetic average reported.

:func:`run` is the single public entry point — it dispatches on the
spec's shape (one grid point, a grid, or a named paper experiment).
The legacy names ``run_averaged`` / ``run_matrix`` remain as deprecated
shims.  Everything is a thin veneer over
:func:`repro.sweep.engine.run_sweep`: the grid is declared as job
specs and executed — serially in-process by default (deterministic,
what the tests use), or fanned out over worker processes and/or backed
by the on-disk result cache when the caller passes ``workers`` /
``cache``.
"""

from __future__ import annotations

import inspect
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

from repro.hw.platform import PLATFORM_FACTORIES, Platform, jetson_tx2
from repro.models.suite import ModelSuite
from repro.models.training import profile_and_fit
from repro.runtime.executor import Executor
from repro.runtime.metrics import RunMetrics, average_run_metrics
from repro.schedulers.registry import make_scheduler, needs_suite
from repro.workloads.registry import build_workload


@dataclass
class BenchConfig:
    """Shared settings for one bench invocation."""

    platform_factory: Callable[[], Platform] = jetson_tx2
    #: Workload size multiplier (1.0 = CI-sized, larger = paper-ward).
    scale: float = 1.0
    #: Repetitions per (workload, scheduler); the paper uses 10.
    repetitions: int = 2
    seed: int = 11
    workload_seed: int = 3
    profile_seed: int = 0
    scheduler_kwargs: dict = field(default_factory=dict)
    #: Optional open-arrival stream applied to every run built from this
    #: config (an :class:`repro.workloads.arrivals.ArrivalSpec`, its
    #: dict form, or ``()`` for the closed system).
    arrivals: object = ()
    _suite_memo: Optional[ModelSuite] = field(
        default=None, init=False, repr=False, compare=False
    )
    _platform_name: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def suite(self) -> ModelSuite:
        """Fitted (cached) model suite for the platform.

        Memoised on the config instance, so repeated repetitions skip
        even the global profile-and-fit cache lookup.
        """
        if self._suite_memo is None:
            self._suite_memo = profile_and_fit(
                self.platform_factory, seed=self.profile_seed
            )
        return self._suite_memo

    def platform_name(self) -> str:
        """Name of the platform this config builds (probed once)."""
        if self._platform_name is None:
            self._platform_name = self.platform_factory().name
        return self._platform_name

    def registered_platform(self) -> bool:
        """Whether job specs built from this config can be resolved by
        name in worker processes / the result cache."""
        name = self.platform_name()
        return PLATFORM_FACTORIES.get(name) is self.platform_factory

    def job_spec(
        self,
        workload: str,
        scheduler_name: str,
        repetition: int = 0,
        **workload_overrides,
    ):
        """The :class:`~repro.sweep.spec.JobSpec` this config maps one
        grid point to.

        This is the single source of truth for the bench -> job-spec
        translation: :func:`run` submits these to the sweep engine, and
        the :mod:`repro.serve` client submits the very same specs to the
        daemon — which is what makes a served result bit-identical to
        (and cache-compatible with) a direct :func:`run` call.
        """
        from repro.sweep.spec import JobSpec

        return JobSpec(
            workload=workload,
            scheduler=scheduler_name,
            platform=self.platform_name(),
            scale=self.scale,
            seed=self.seed,
            workload_seed=self.workload_seed,
            profile_seed=self.profile_seed,
            repetition=repetition,
            scheduler_kwargs=self.scheduler_kwargs,
            workload_overrides=workload_overrides,
            arrivals=self.arrivals,
        )

    def arrival_spec(self):
        """The config's :class:`~repro.workloads.arrivals.ArrivalSpec`,
        or ``None`` for the closed system (round-trips through the
        canonical JobSpec form so every accepted shape is honoured)."""
        return self.job_spec("_", "_").arrival_spec()


def run_one(
    workload: str,
    scheduler_name: str,
    config: Optional[BenchConfig] = None,
    repetition: int = 0,
    **workload_overrides,
) -> RunMetrics:
    """One run of one scheduler on one workload."""
    cfg = config or BenchConfig()
    suite = cfg.suite() if needs_suite(scheduler_name) else None
    sched = make_scheduler(scheduler_name, suite, **cfg.scheduler_kwargs)
    arrival_spec = cfg.arrival_spec()
    plan = None
    if arrival_spec is not None:
        plan = arrival_spec.build(
            workload, scale=cfg.scale, workload_seed=cfg.workload_seed,
            overrides=workload_overrides,
        )
        graph = plan.graph
    else:
        graph = build_workload(
            workload, scale=cfg.scale, seed=cfg.workload_seed,
            **workload_overrides,
        )
    ex = Executor(
        cfg.platform_factory(), sched, seed=cfg.seed + 1000 * repetition,
        arrivals=plan,
    )
    return ex.run(graph)


def run(
    spec: Union[str, tuple],
    *,
    repeats: Optional[int] = None,
    config: Optional[BenchConfig] = None,
    obs=None,
    workers: int = 0,
    cache=None,
    progress=None,
    **overrides,
):
    """Unified bench entry point; dispatches on the shape of ``spec``.

    ``spec`` may be:

    * ``"fb/JOSS"`` or ``("fb", "JOSS")`` — one grid point; returns the
      repetition-averaged :class:`RunMetrics` (``**overrides`` are
      workload overrides).
    * a :class:`repro.sweep.spec.JobSpec` — the very same object the
      sweep engine and the serve daemon accept; returns the
      repetition-averaged :class:`RunMetrics` for that job (its
      platform/seeds/faults/arrivals are taken from the spec, not the
      config).
    * ``(workloads, schedulers)`` where both elements are sequences —
      the full grid; returns ``{workload: {scheduler: RunMetrics}}``.
    * ``"fig8"`` (any :data:`repro.bench.experiments.ALL` name) — a
      paper artefact; returns its
      :class:`~repro.bench.result.ExperimentResult` (``**overrides``
      are forwarded to the experiment's ``run``).

    ``repeats`` overrides ``config.repetitions``; ``obs`` (an
    :class:`repro.obs.Observability`) is installed as the process
    default for the duration, so every executor and sweep inside emits
    to it; ``workers`` / ``cache`` / ``progress`` are forwarded to the
    sweep engine for grid specs.
    """
    cfg = config or BenchConfig()
    if repeats is not None:
        cfg = replace(cfg, repetitions=int(repeats))
    scope = obs.as_current() if obs is not None else nullcontext()
    with scope:
        from repro.sweep.spec import JobSpec

        if isinstance(spec, JobSpec):
            if overrides:
                raise TypeError(
                    "workload overrides belong inside the JobSpec "
                    "(workload_overrides=...), not as **overrides"
                )
            return _run_job_spec(spec, cfg)
        if isinstance(spec, str):
            if "/" in spec:
                workload, _, scheduler = spec.partition("/")
                return _run_averaged(workload, scheduler, cfg, **overrides)
            return _run_experiment(spec, cfg, **overrides)
        if isinstance(spec, (tuple, list)) and len(spec) == 2:
            first, second = spec
            if isinstance(first, str) and isinstance(second, str):
                return _run_averaged(first, second, cfg, **overrides)
            if not isinstance(first, str) and not isinstance(second, str):
                return _run_matrix(
                    list(first), list(second), cfg,
                    workers=workers, cache=cache, progress=progress,
                )
    raise TypeError(
        f"cannot interpret bench spec {spec!r}: expected 'workload/"
        f"scheduler', (workload, scheduler), (workloads, schedulers) "
        f"or an experiment name"
    )


def _run_job_spec(spec, cfg: BenchConfig) -> RunMetrics:
    """Average a single :class:`JobSpec` over ``cfg.repetitions``.

    The spec is the source of truth for everything but the repetition
    count; repetitions re-seed exactly like :func:`_run_averaged`.
    """
    from repro.sweep.engine import run_sweep

    reps = max(1, int(cfg.repetitions))
    jobs = (
        [spec] if reps == 1
        else [replace(spec, repetition=r) for r in range(reps)]
    )
    result = run_sweep(jobs, workers=0)
    result.raise_on_failure()
    avg = average_run_metrics(result.metrics())
    avg.scheduler = spec.scheduler
    avg.workload = spec.workload
    return avg


def _run_experiment(name: str, cfg: BenchConfig, **kwargs):
    from repro.bench.experiments import ALL

    mod = ALL.get(name)
    if mod is None:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(ALL)} "
            f"(or pass 'workload/scheduler' for a single run)"
        )
    if "config" in inspect.signature(mod.run).parameters:
        kwargs.setdefault("config", cfg)
    return mod.run(**kwargs)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.bench.{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def run_averaged(
    workload: str,
    scheduler_name: str,
    config: Optional[BenchConfig] = None,
    **workload_overrides,
) -> RunMetrics:
    """Deprecated shim for :func:`run` with a single grid point."""
    _deprecated("run_averaged", "repro.bench.run('workload/scheduler')")
    return _run_averaged(
        workload, scheduler_name, config or BenchConfig(), **workload_overrides
    )


def _run_averaged(
    workload: str,
    scheduler_name: str,
    cfg: BenchConfig,
    **workload_overrides,
) -> RunMetrics:
    """Average metrics over ``cfg.repetitions`` runs (paper: 10).

    Delegates the repetitions to the sweep engine's serial in-process
    path; seeds and averaging match the pre-sweep behaviour exactly.
    """
    from repro.sweep.engine import run_sweep

    jobs = [
        cfg.job_spec(workload, scheduler_name, r, **workload_overrides)
        for r in range(cfg.repetitions)
    ]
    factory = None if cfg.registered_platform() else cfg.platform_factory
    result = run_sweep(jobs, workers=0, platform_factory=factory)
    result.raise_on_failure()
    avg = average_run_metrics(result.metrics())
    avg.scheduler = scheduler_name
    avg.workload = workload
    return avg


def run_matrix(
    workloads: Sequence[str],
    schedulers: Sequence[str],
    config: Optional[BenchConfig] = None,
    *,
    workers: int = 0,
    cache=None,
    progress=None,
) -> dict[str, dict[str, RunMetrics]]:
    """Deprecated shim for :func:`run` with a ``(workloads, schedulers)``
    grid spec."""
    _deprecated("run_matrix", "repro.bench.run((workloads, schedulers))")
    return _run_matrix(
        list(workloads), list(schedulers), config or BenchConfig(),
        workers=workers, cache=cache, progress=progress,
    )


def _run_matrix(
    workloads: Sequence[str],
    schedulers: Sequence[str],
    cfg: BenchConfig,
    *,
    workers: int = 0,
    cache=None,
    progress=None,
) -> dict[str, dict[str, RunMetrics]]:
    """``{workload: {scheduler: averaged metrics}}`` over the grid.

    Delegates to the sweep engine.  The default is the serial
    in-process path; pass ``workers`` > 1 for a process-pool sweep and
    a :class:`repro.sweep.ResultCache` as ``cache`` to make repeated
    invocations of an unchanged grid pure cache hits.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec.from_bench_config(cfg, workloads, schedulers)
    factory = None
    if not cfg.registered_platform():
        # Custom factory (e.g. symmetric_platform closures): run in
        # process, by direct callable; by-name resolution and content
        # addressing would be unsound for it.
        if workers and workers > 1:
            raise ValueError(
                f"platform {cfg.platform_name()!r} is not registered; "
                "parallel sweeps need a registered platform factory"
            )
        cache = None
        factory = cfg.platform_factory
    result = run_sweep(
        spec, workers=workers, cache=cache, progress=progress,
        platform_factory=factory,
    )
    result.raise_on_failure()
    averaged = result.averaged()
    return {
        wl: {s: averaged[(wl, s, cfg.scale)] for s in schedulers}
        for wl in workloads
    }
