"""Run (workload, scheduler) combinations and collect metrics.

Mirrors the paper's methodology (section 6.1): frequencies are pinned
at maximum before each run, each experiment is repeated and the
arithmetic average reported.

Since the sweep subsystem landed, :func:`run_averaged` and
:func:`run_matrix` are thin veneers over
:func:`repro.sweep.engine.run_sweep`: the grid is declared as job
specs and executed — serially in-process by default (deterministic,
what the tests use), or fanned out over worker processes and/or backed
by the on-disk result cache when the caller passes ``workers`` /
``cache``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.hw.platform import PLATFORM_FACTORIES, Platform, jetson_tx2
from repro.models.suite import ModelSuite
from repro.models.training import profile_and_fit
from repro.runtime.executor import Executor
from repro.runtime.metrics import RunMetrics, average_run_metrics
from repro.schedulers.registry import make_scheduler, needs_suite
from repro.workloads.registry import build_workload


@dataclass
class BenchConfig:
    """Shared settings for one bench invocation."""

    platform_factory: Callable[[], Platform] = jetson_tx2
    #: Workload size multiplier (1.0 = CI-sized, larger = paper-ward).
    scale: float = 1.0
    #: Repetitions per (workload, scheduler); the paper uses 10.
    repetitions: int = 2
    seed: int = 11
    workload_seed: int = 3
    profile_seed: int = 0
    scheduler_kwargs: dict = field(default_factory=dict)
    _suite_memo: Optional[ModelSuite] = field(
        default=None, init=False, repr=False, compare=False
    )
    _platform_name: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )

    def suite(self) -> ModelSuite:
        """Fitted (cached) model suite for the platform.

        Memoised on the config instance, so repeated repetitions skip
        even the global profile-and-fit cache lookup.
        """
        if self._suite_memo is None:
            self._suite_memo = profile_and_fit(
                self.platform_factory, seed=self.profile_seed
            )
        return self._suite_memo

    def platform_name(self) -> str:
        """Name of the platform this config builds (probed once)."""
        if self._platform_name is None:
            self._platform_name = self.platform_factory().name
        return self._platform_name

    def registered_platform(self) -> bool:
        """Whether job specs built from this config can be resolved by
        name in worker processes / the result cache."""
        name = self.platform_name()
        return PLATFORM_FACTORIES.get(name) is self.platform_factory


def run_one(
    workload: str,
    scheduler_name: str,
    config: Optional[BenchConfig] = None,
    repetition: int = 0,
    **workload_overrides,
) -> RunMetrics:
    """One run of one scheduler on one workload."""
    cfg = config or BenchConfig()
    suite = cfg.suite() if needs_suite(scheduler_name) else None
    sched = make_scheduler(scheduler_name, suite, **cfg.scheduler_kwargs)
    graph = build_workload(
        workload, scale=cfg.scale, seed=cfg.workload_seed, **workload_overrides
    )
    ex = Executor(
        cfg.platform_factory(), sched, seed=cfg.seed + 1000 * repetition
    )
    return ex.run(graph)


def run_averaged(
    workload: str,
    scheduler_name: str,
    config: Optional[BenchConfig] = None,
    **workload_overrides,
) -> RunMetrics:
    """Average metrics over ``config.repetitions`` runs (paper: 10).

    Delegates the repetitions to the sweep engine's serial in-process
    path; seeds and averaging match the pre-sweep behaviour exactly.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.spec import JobSpec

    cfg = config or BenchConfig()
    jobs = [
        JobSpec(
            workload=workload,
            scheduler=scheduler_name,
            platform=cfg.platform_name(),
            scale=cfg.scale,
            seed=cfg.seed,
            workload_seed=cfg.workload_seed,
            profile_seed=cfg.profile_seed,
            repetition=r,
            scheduler_kwargs=cfg.scheduler_kwargs,
            workload_overrides=workload_overrides,
        )
        for r in range(cfg.repetitions)
    ]
    factory = None if cfg.registered_platform() else cfg.platform_factory
    result = run_sweep(jobs, workers=0, platform_factory=factory)
    result.raise_on_failure()
    avg = average_run_metrics(result.metrics())
    avg.scheduler = scheduler_name
    avg.workload = workload
    return avg


def run_matrix(
    workloads: Sequence[str],
    schedulers: Sequence[str],
    config: Optional[BenchConfig] = None,
    *,
    workers: int = 0,
    cache=None,
    progress=None,
) -> dict[str, dict[str, RunMetrics]]:
    """``{workload: {scheduler: averaged metrics}}`` over the grid.

    Delegates to the sweep engine.  The default is the serial
    in-process path; pass ``workers`` > 1 for a process-pool sweep and
    a :class:`repro.sweep.ResultCache` as ``cache`` to make repeated
    invocations of an unchanged grid pure cache hits.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.spec import SweepSpec

    cfg = config or BenchConfig()
    spec = SweepSpec.from_bench_config(cfg, workloads, schedulers)
    factory = None
    if not cfg.registered_platform():
        # Custom factory (e.g. symmetric_platform closures): run in
        # process, by direct callable; by-name resolution and content
        # addressing would be unsound for it.
        if workers and workers > 1:
            raise ValueError(
                f"platform {cfg.platform_name()!r} is not registered; "
                "parallel sweeps need a registered platform factory"
            )
        cache = None
        factory = cfg.platform_factory
    result = run_sweep(
        spec, workers=workers, cache=cache, progress=progress,
        platform_factory=factory,
    )
    result.raise_on_failure()
    averaged = result.averaged()
    return {
        wl: {s: averaged[(wl, s, cfg.scale)] for s in schedulers}
        for wl in workloads
    }
