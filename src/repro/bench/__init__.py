"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment module under :mod:`repro.bench.experiments` returns an
:class:`~repro.bench.result.ExperimentResult` with structured rows and
a formatted text table matching the paper's artefact:

========  =====================================================
fig1      Fig. 1 — motivation: four configuration-selection scenarios
fig2      Fig. 2 — energy/performance trade-off frontier
fig5      Fig. 5 — synthetic-benchmark power profiles on A57
tab1      Table 1 — benchmark suite inventory
fig8      Fig. 8 — total energy across schedulers and benchmarks
fig9      Fig. 9 — energy/time under performance constraints
fig10     Fig. 10 — model prediction accuracy distributions
overhead  Section 7.4 — steepest descent vs exhaustive, LUT storage
sampling  Section 5.1 — sampling-phase cost
ablation  Design-choice ablations (coordination, coarsening, search)
========  =====================================================
"""

from repro.bench.result import ExperimentResult
from repro.bench.runner import (
    BenchConfig,
    run,
    run_averaged,
    run_matrix,
    run_one,
)

__all__ = [
    "ExperimentResult",
    "BenchConfig",
    "run",
    "run_one",
    # Deprecated shims over ``run`` (kept for one release):
    "run_averaged",
    "run_matrix",
]
