"""Plain-text table rendering for bench output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Fixed-width table; floats formatted, everything else ``str()``."""

    def cell(v: Any) -> str:
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    out.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def bar(value: float, scale: float, width: int = 40, char: str = "#") -> str:
    """ASCII bar of ``value`` relative to ``scale``."""
    if scale <= 0:
        return ""
    n = max(0, min(width, int(round(width * value / scale))))
    return char * n
