"""Workload specification plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import WorkloadError
from repro.runtime.dag import TaskGraph

#: A builder takes (scale, seed) plus spec-specific defaults and
#: returns a fresh task graph.
Builder = Callable[..., TaskGraph]


@dataclass(frozen=True)
class WorkloadSpec:
    """One entry of the paper's Table 1."""

    name: str                 # registry id, e.g. "mm-256"
    abbr: str                 # paper abbreviation, e.g. "MM"
    description: str
    builder: Builder
    #: Task count of the paper's full-size run (Table 1), for reporting.
    paper_tasks: int
    #: Extra keyword defaults forwarded to the builder.
    params: Mapping[str, object] = field(default_factory=dict)

    def build(self, scale: float = 1.0, seed: int = 0, **overrides) -> TaskGraph:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        kw = dict(self.params)
        kw.update(overrides)
        graph = self.builder(scale=scale, seed=seed, **kw)
        graph.validate()
        return graph


def scaled_count(base: int, scale: float, minimum: int = 1) -> int:
    """Scale an integer structural parameter, keeping it at least
    ``minimum``."""
    return max(minimum, int(round(base * scale)))
