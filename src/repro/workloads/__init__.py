"""The paper's benchmark suite as task-DAG generators (Table 1).

Ten benchmarks from the Edge and HPC domains — Heat Diffusion, Dot
Product, Fibonacci, Darknet-VGG-16, Biomarker Infection, Alya,
Sparse LU, Matrix Multiplication, Matrix Copy and Stencil — each built
as a :class:`~repro.runtime.dag.TaskGraph` with kernels whose
compute/memory characteristics follow the paper's descriptions.

Task counts are scaled down from the paper's (hundreds of thousands of
tasks are infeasible for a pure-Python DES in CI); the ``scale``
parameter restores larger graphs, and DAG *shape*, kernel mix and
``dop`` are preserved at any scale.
"""

from repro.workloads.arrivals import ArrivalPlan, ArrivalSpec
from repro.workloads.base import WorkloadSpec
from repro.workloads.registry import (
    build_workload,
    get_workload,
    workload_names,
    workload_table,
)

__all__ = [
    "ArrivalPlan",
    "ArrivalSpec",
    "WorkloadSpec",
    "build_workload",
    "get_workload",
    "workload_names",
    "workload_table",
]
