"""Workload registry — the evaluation line-up of the paper's Figure 8.

Fifteen workload configurations: three HD sizes, DP, FB, VG, BI, AL,
SLU, and the dop-configurable synthetics MM (256/512), MC (4096/8192)
and ST (512/2048).
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.runtime.dag import TaskGraph
from repro.workloads import (
    alya,
    biomarker,
    dotproduct,
    fibonacci,
    heat,
    matmul,
    memcopy,
    sparselu,
    stencil,
    vgg,
)
from repro.workloads.base import WorkloadSpec

_SPECS: dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    if spec.name in _SPECS:
        raise WorkloadError(f"duplicate workload {spec.name}")
    _SPECS[spec.name] = spec


_register(WorkloadSpec(
    "hd-small", "HD", "Heat diffusion, 2048 grid (many tiny tasks)",
    heat.build, paper_tasks=320032, params={"size": "small"},
))
_register(WorkloadSpec(
    "hd-big", "HD", "Heat diffusion, 8192 grid",
    heat.build, paper_tasks=32032, params={"size": "big"},
))
_register(WorkloadSpec(
    "hd-huge", "HD", "Heat diffusion, 16384 grid (few large tasks)",
    heat.build, paper_tasks=16032, params={"size": "huge"},
))
_register(WorkloadSpec(
    "dp", "DP", "Blocked dot product, 100 iterations",
    dotproduct.build, paper_tasks=20200,
))
_register(WorkloadSpec(
    "fb", "FB", "Recursive Fibonacci (fine-grained tasks)",
    fibonacci.build, paper_tasks=57314,
))
_register(WorkloadSpec(
    "vg", "VG", "Darknet VGG-16 fork-join CNN, 10 iterations",
    vgg.build, paper_tasks=5090,
))
_register(WorkloadSpec(
    "bi", "BI", "Biomarker infection combinatorics",
    biomarker.build, paper_tasks=6217,
))
_register(WorkloadSpec(
    "al", "AL", "Alya computational mechanics (mesh partitioning)",
    alya.build, paper_tasks=47840,
))
_register(WorkloadSpec(
    "slu", "SLU", "Sparse LU factorisation (LU0/FWD/BDIV/BMOD)",
    sparselu.build, paper_tasks=11472,
))
_register(WorkloadSpec(
    "mm-256", "MM", "Matrix multiply, 256 tiles (compute-bound)",
    matmul.build, paper_tasks=10000, params={"size": 256},
))
_register(WorkloadSpec(
    "mm-512", "MM", "Matrix multiply, 512 tiles",
    matmul.build, paper_tasks=2000, params={"size": 512},
))
_register(WorkloadSpec(
    "mc-4096", "MC", "Matrix copy, 4096 (memory-bound streaming)",
    memcopy.build, paper_tasks=20000, params={"size": 4096},
))
_register(WorkloadSpec(
    "mc-8192", "MC", "Matrix copy, 8192",
    memcopy.build, paper_tasks=10000, params={"size": 8192},
))
_register(WorkloadSpec(
    "st-512", "ST", "Stencil sweeps, 512 grid",
    stencil.build, paper_tasks=50000, params={"size": 512},
))
_register(WorkloadSpec(
    "st-2048", "ST", "Stencil sweeps, 2048 grid",
    stencil.build, paper_tasks=50000, params={"size": 2048},
))


def workload_names() -> list[str]:
    return list(_SPECS)


def get_workload(name: str) -> WorkloadSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r} (known: {workload_names()})"
        ) from None


def build_workload(
    name: str, scale: float = 1.0, seed: int = 0, **overrides
) -> TaskGraph:
    return get_workload(name).build(scale=scale, seed=seed, **overrides)


def workload_table() -> list[dict]:
    """Rows for the Table 1 reproduction bench."""
    rows = []
    for spec in _SPECS.values():
        g = spec.build(scale=1.0)
        rows.append(
            {
                "name": spec.name,
                "abbr": spec.abbr,
                "description": spec.description,
                "kernels": [k.name for k in g.kernels()],
                "tasks": len(g),
                "paper_tasks": spec.paper_tasks,
                "dop": round(g.dop(), 2),
            }
        )
    return rows
