"""Dot Product (DP) — blocked vector dot product, 100 iterations.

Each iteration computes per-block partial sums (``dp.block``, pure
streaming of two vectors, memory-bound) followed by a small reduction
(``dp.reduce``); the next iteration waits on the reduction (Table 1:
VectorSize 6400000, BlockSize 32000 -> 200 blocks x 100 iterations +
reductions = 20200 tasks).
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

BLOCK = KernelSpec(
    name="dp.block",
    w_comp=0.0015,
    w_bytes=0.0085,  # two input vectors streamed once
)

REDUCE = KernelSpec(
    name="dp.reduce",
    w_comp=0.0012,
    w_bytes=0.0001,
)


def build(scale: float = 1.0, seed: int = 0) -> TaskGraph:
    iterations = scaled_count(25, scale, minimum=5)
    blocks = scaled_count(12, scale**0.5, minimum=4)
    g = TaskGraph("dp")
    barrier = None
    for _ in range(iterations):
        parts = [
            g.add_task(BLOCK, deps=[barrier] if barrier else None)
            for _ in range(blocks)
        ]
        barrier = g.add_task(REDUCE, deps=parts)
    return g
