"""Matrix Copy (MC) — memory-intensive synthetic (Table 1).

Each task reads and writes a large matrix, producing pure streaming
traffic to main memory.  Like MM, the DAG is ``dop`` independent
chains; two matrix sizes (4096 and 8192) set the per-task traffic.
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

_KERNELS = {
    4096: KernelSpec(
        name="mc.4096",
        w_comp=0.0015,
        w_bytes=0.030,
    ),
    8192: KernelSpec(
        name="mc.8192",
        w_comp=0.0030,
        w_bytes=0.060,
    ),
}


def build(
    scale: float = 1.0, seed: int = 0, size: int = 4096, dop: int = 4
) -> TaskGraph:
    if size not in _KERNELS:
        raise ValueError(f"unknown MC size {size} (options: {sorted(_KERNELS)})")
    if dop < 1:
        raise ValueError("dop must be >= 1")
    kernel = _KERNELS[size]
    base_tasks = 100 if size == 4096 else 50
    total = scaled_count(base_tasks, scale, minimum=dop * 2)
    chain_len = max(2, total // dop)
    g = TaskGraph(f"mc-{size}")
    for _ in range(dop):
        prev = None
        for _ in range(chain_len):
            prev = g.add_task(kernel, deps=[prev] if prev else None)
    return g
