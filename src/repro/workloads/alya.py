"""Alya (AL) — computational mechanics on a partitioned mesh.

Alya solves complex PDEs with a mesh-partitioning parallelisation
(Table 1: 200K CSR non-zeros, 47840 tasks).  The task structure per
time step is: per-partition matrix assembly, then an iterative sparse
solver (SpMV + dot-product reductions) with halo dependencies between
neighbouring partitions.  SpMV on CSR is memory-bound; assembly mixes
integer/index work with streaming.
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

ASSEMBLY = KernelSpec(
    name="al.assembly",
    w_comp=0.015,
    w_bytes=0.0040,
    type_affinity={"denver": 1.3},
)

SPMV = KernelSpec(
    name="al.spmv",
    w_comp=0.0030,
    w_bytes=0.0075,  # CSR streaming
)

DOT = KernelSpec(
    name="al.dot",
    w_comp=0.0008,
    w_bytes=0.0012,
)


def build(scale: float = 1.0, seed: int = 0) -> TaskGraph:
    steps = scaled_count(4, scale**0.5, minimum=2)
    partitions = scaled_count(8, scale**0.5, minimum=3)
    solver_iters = scaled_count(6, scale**0.5, minimum=3)
    g = TaskGraph("al")
    barrier = None
    for _ in range(steps):
        assembly = [
            g.add_task(ASSEMBLY, deps=[barrier] if barrier else None)
            for _ in range(partitions)
        ]
        prev = assembly
        for _ in range(solver_iters):
            spmvs = []
            for p in range(partitions):
                deps = [
                    prev[np_]
                    for np_ in (p - 1, p, p + 1)
                    if 0 <= np_ < partitions
                ]
                spmvs.append(g.add_task(SPMV, deps=deps))
            barrier = g.add_task(DOT, deps=spmvs)  # global reduction
            prev = [barrier] * partitions
    return g
