"""Stencil (ST) — neighbour-update synthetic (Table 1).

Each task repeatedly updates points on a multi-dimensional grid from
neighbouring values: a mix of compute and strided memory access between
MM and MC in intensity.  The DAG is ``dop`` chains with cross-chain
neighbour dependencies every sweep (wavefront coupling); two grid
sizes (512 and 2048).
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

_KERNELS = {
    512: KernelSpec(
        name="st.512",
        w_comp=0.008,
        w_bytes=0.0045,
        type_affinity={"denver": 1.3},
    ),
    2048: KernelSpec(
        name="st.2048",
        w_comp=0.030,
        w_bytes=0.018,
        type_affinity={"denver": 1.3},
    ),
}


def build(
    scale: float = 1.0, seed: int = 0, size: int = 512, dop: int = 4
) -> TaskGraph:
    if size not in _KERNELS:
        raise ValueError(f"unknown ST size {size} (options: {sorted(_KERNELS)})")
    if dop < 1:
        raise ValueError("dop must be >= 1")
    kernel = _KERNELS[size]
    sweeps = scaled_count(25, scale, minimum=5)
    g = TaskGraph(f"st-{size}")
    prev = [None] * dop
    for _ in range(sweeps):
        cur = []
        for c in range(dop):
            deps = [
                prev[n]
                for n in (c - 1, c, c + 1)
                if 0 <= n < dop and prev[n] is not None
            ]
            cur.append(g.add_task(kernel, deps=deps))
        prev = cur
    return g
