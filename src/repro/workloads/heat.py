"""Heat Diffusion (HD) — iterative Jacobi stencil on a 2D grid.

Two kernels per iteration (Table 1): ``copy`` (streaming the updated
grid back, memory-bound) and ``jacobi`` (the 5-point update, mixed).
The grid is tiled into a 2D block grid; a jacobi block depends on its
own and its four von-Neumann neighbours' copy blocks of the previous
iteration (halo exchange), and a copy block depends on its jacobi
block — the classic stencil wavefront structure.

The paper evaluates three problem sizes with an inverse relation
between resolution and task count (small=2048 runs 320k tiny tasks,
huge=16384 runs 16k large tasks): higher resolution means larger
blocks, fewer iterations to evaluate.
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

#: Per-size (block work multiplier, iterations base, block-grid side).
_SIZES = {
    "small": (0.25, 14, 3),
    "big": (2.0, 7, 2),
    "huge": (8.0, 4, 2),
}


def _kernels(size: str) -> tuple[KernelSpec, KernelSpec]:
    mult, _, _ = _SIZES[size]
    jacobi = KernelSpec(
        name=f"hd.jacobi.{size}",
        w_comp=0.020 * mult,
        w_bytes=0.0020 * mult,
        type_affinity={"denver": 1.3},
    )
    copy = KernelSpec(
        name=f"hd.copy.{size}",
        w_comp=0.0008 * mult,
        w_bytes=0.0040 * mult,
    )
    return jacobi, copy


def build(scale: float = 1.0, seed: int = 0, size: str = "small") -> TaskGraph:
    """Build the HD task graph for one problem size."""
    if size not in _SIZES:
        raise ValueError(f"unknown HD size {size!r} (options: {sorted(_SIZES)})")
    _, iters_base, side_base = _SIZES[size]
    iterations = scaled_count(iters_base, scale, minimum=3)
    side = scaled_count(side_base, scale**0.25, minimum=2)
    jacobi, copy = _kernels(size)
    g = TaskGraph(f"hd-{size}")
    prev_copies: dict[tuple[int, int], object] = {}
    for _ in range(iterations):
        jacobis = {}
        for bx in range(side):
            for by in range(side):
                deps = []
                for nx, ny in (
                    (bx, by), (bx - 1, by), (bx + 1, by),
                    (bx, by - 1), (bx, by + 1),
                ):
                    t = prev_copies.get((nx, ny))
                    if t is not None:
                        deps.append(t)
                jacobis[(bx, by)] = g.add_task(jacobi, deps=deps)
        prev_copies = {
            pos: g.add_task(copy, deps=[jt]) for pos, jt in jacobis.items()
        }
    return g
