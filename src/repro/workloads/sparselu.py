"""Sparse LU factorisation (SLU) — four kernels, BMOD-dominated.

The BOTS SparseLU decomposition over a B x B blocked matrix
(Table 1: 64 blocks, BlockSize 512, 11472 tasks):

    for k in 0..B-1:
        lu0(k)                          # diagonal factorisation
        fwd(k, j)  for j > k            # row panel
        bdiv(k, i) for i > k            # column panel
        bmod(k, i, j) for i, j > k      # trailing update

``bmod`` accounts for ~91% of all tasks (section 7.1's analysis kernel)
and is compute-intensive: a dense block GEMM that runs ~3.4x faster on
a Denver core than an A57 (paper section 7.1).  The sparsity pattern
skips a fraction of trailing blocks, as in BOTS.
"""

from __future__ import annotations

import numpy as np

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

LU0 = KernelSpec(
    name="slu.lu0",
    w_comp=0.045,
    w_bytes=0.0008,
    type_affinity={"denver": 1.55},
)

FWD = KernelSpec(
    name="slu.fwd",
    w_comp=0.030,
    w_bytes=0.0010,
    type_affinity={"denver": 1.5},
)

BDIV = KernelSpec(
    name="slu.bdiv",
    w_comp=0.030,
    w_bytes=0.0010,
    type_affinity={"denver": 1.5},
)

#: Dense block GEMM: Denver's wide OoO core extracts ~3.4x over A57
#: (base 2.2x throughput x 1.55 affinity).
BMOD = KernelSpec(
    name="slu.bmod",
    w_comp=0.040,
    w_bytes=0.0012,
    type_affinity={"denver": 1.55},
)


def build(
    scale: float = 1.0, seed: int = 0, blocks: int | None = None,
    density: float = 0.8,
) -> TaskGraph:
    """Build the SparseLU DAG for a ``blocks x blocks`` matrix."""
    if blocks is None:
        blocks = scaled_count(11, scale**0.5, minimum=6)
    rng = np.random.default_rng(seed)
    g = TaskGraph("slu")
    # present[i][j]: the task that last wrote block (i, j), or None.
    last_writer: dict[tuple[int, int], object] = {}
    occupied = {
        (i, j)
        for i in range(blocks)
        for j in range(blocks)
        if i == j or rng.random() < density
    }
    for k in range(blocks):
        lu0 = g.add_task(LU0, deps=[d for d in [last_writer.get((k, k))] if d])
        last_writer[(k, k)] = lu0
        fwds = {}
        for j in range(k + 1, blocks):
            if (k, j) not in occupied:
                continue
            deps = [lu0] + [d for d in [last_writer.get((k, j))] if d]
            fwds[j] = g.add_task(FWD, deps=deps)
            last_writer[(k, j)] = fwds[j]
        bdivs = {}
        for i in range(k + 1, blocks):
            if (i, k) not in occupied:
                continue
            deps = [lu0] + [d for d in [last_writer.get((i, k))] if d]
            bdivs[i] = g.add_task(BDIV, deps=deps)
            last_writer[(i, k)] = bdivs[i]
        for i in bdivs:
            for j in fwds:
                deps = [bdivs[i], fwds[j]]
                prev = last_writer.get((i, j))
                if prev is not None:
                    deps.append(prev)
                t = g.add_task(BMOD, deps=deps)
                last_writer[(i, j)] = t
                occupied.add((i, j))  # fill-in
    return g
