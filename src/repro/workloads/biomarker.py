"""Biomarker Infection (BI) — medical combinatorics use case.

Evaluates biomarker combinations to differentiate periprosthetic hip
infection from aseptic loosening (Table 1: 6217 tasks).  Structurally a
wide bag of independent combination-scoring tasks batched per round,
with a small aggregation after each round — high dop, modest per-task
work, mildly memory-bound scoring.
"""

from __future__ import annotations

import numpy as np

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

COMBO = KernelSpec(
    name="bi.combo",
    w_comp=0.012,
    w_bytes=0.0018,
    type_affinity={"denver": 1.35},
)

AGGREGATE = KernelSpec(
    name="bi.aggregate",
    w_comp=0.002,
    w_bytes=0.0006,
)


def build(scale: float = 1.0, seed: int = 0) -> TaskGraph:
    # At least 12 rounds so the aggregate kernel is invoked often
    # enough for the model-based schedulers' sampling plans to resolve.
    rounds = scaled_count(12, scale**0.5, minimum=12)
    rng = np.random.default_rng(seed)
    g = TaskGraph("bi")
    barrier = None
    for _ in range(rounds):
        # Combination counts vary per round (deeper combos are rarer).
        width = scaled_count(int(rng.integers(18, 30)), scale, minimum=4)
        combos = [
            g.add_task(COMBO, deps=[barrier] if barrier else None)
            for _ in range(width)
        ]
        barrier = g.add_task(AGGREGATE, deps=combos)
    return g
