"""Fibonacci (FB) — BOTS-style recursive task tree.

``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)`` down to a grain size,
then a join task combines the children — a deep, *fine-grained* task
tree (Table 1: term 55, grain 34; execution times per task in the
microsecond range).  This is the workload that stresses the paper's
task-coarsening path (section 5.3): per-task DVFS throttling would be
pure overhead here.

The DAG mirrors real recursion: a *spawn* task for ``fib(n)`` must run
before its children exist (become ready), and the *join* waits on both
children — so readiness unfolds top-down over time, exactly like a
work-stealing runtime executing BOTS fib (leaves are not all ready at
t=0, which matters for online sampling).
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph

#: Spawn: the body of fib(n) above the grain — checks, two spawns.
SPAWN = KernelSpec(
    name="fb.spawn",
    w_comp=0.0001,
    w_bytes=0.0,
    type_affinity={"denver": 1.6},
)

#: Leaf computation: sequential fib below the grain — a fine-grained,
#: purely compute-bound kernel (fits in cache).
LEAF = KernelSpec(
    name="fb.leaf",
    w_comp=0.0006,
    w_bytes=0.0,
    type_affinity={"denver": 1.6},
)

#: Join: adds two child results; tiny.
JOIN = KernelSpec(
    name="fb.join",
    w_comp=0.0001,
    w_bytes=0.0,
    type_affinity={"denver": 1.6},
)


def build(scale: float = 1.0, seed: int = 0, term: int | None = None) -> TaskGraph:
    """Build the fib call tree.

    ``term`` defaults to a scale-derived depth; the graph grows like
    the Fibonacci numbers themselves, so the default is conservative.
    """
    if term is None:
        term = 15 + int(round(3 * (scale - 1)))
    term = max(4, term)
    grain = 2  # below this, the recursion is a single leaf task
    g = TaskGraph("fb")

    def rec(n: int, parent):
        if n <= grain:
            return g.add_task(LEAF, deps=[parent] if parent else None)
        spawn = g.add_task(SPAWN, deps=[parent] if parent else None)
        a = rec(n - 1, spawn)
        b = rec(n - 2, spawn)
        return g.add_task(JOIN, deps=[a, b])

    rec(term, None)
    return g
