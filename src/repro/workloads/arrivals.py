"""Open-system arrival processes: DAG instances released over time.

The paper's experiments are closed-system — every application is
released at t=0 and the metric is makespan.  A serving deployment is
an *open* system: DAG instances arrive over time, possibly in bursts,
each carrying a deadline.  :class:`ArrivalSpec` describes such a
stream declaratively (immutable, JSON-serialisable, content-hashable,
seeded — the same canonical-data shape as
:class:`repro.faults.spec.FaultSpec`), and :meth:`ArrivalSpec.build`
materialises it into an :class:`ArrivalPlan` the executor consumes:
one merged :class:`~repro.runtime.dag.TaskGraph` whose root tasks are
annotated with release times and whose every task carries its DAG
instance's absolute deadline.

Patterns:

- ``poisson`` — memoryless arrivals at ``rate`` per second;
- ``bursty`` — an MMPP-style on/off process: bursts of geometrically
  many arrivals at ``burstiness``-times the base rate, separated by
  exponential gaps (``rate`` sets the time scale, not the exact mean);
- ``heavy`` — Pareto (heavy-tailed) inter-arrivals with tail exponent
  ``heavy_shape``, scaled so the mean inter-arrival is ``1/rate``.

Multi-tenant mixes generalise ``bench_multiprog``: with more than one
entry in ``workloads`` each arrival draws its application uniformly
from the mix; with none, every instance runs the enclosing job's
workload.  Composition with fault campaigns needs nothing special —
``Executor(..., arrivals=plan, faults=campaign)`` just works, the two
layers never touch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.runtime.dag import TaskGraph

#: Bump when arrival-trace generation changes (part of the spec hash,
#: so cached results of older traces stop matching).
ARRIVAL_SCHEMA_VERSION = 1

_PATTERNS = ("poisson", "bursty", "heavy")


@dataclass(frozen=True)
class Arrival:
    """One entry of an arrival trace."""

    index: int
    time: float
    #: Workload name, or ``None`` for "the enclosing job's workload".
    workload: Optional[str]


@dataclass(frozen=True)
class DagInstance:
    """One released DAG instance inside a built :class:`ArrivalPlan`."""

    index: int
    workload: str
    release: float
    #: Absolute deadline (release + relative deadline), or ``None``.
    deadline: Optional[float]
    #: Number of tasks this instance contributes to the merged graph.
    size: int


@dataclass(frozen=True)
class ArrivalSpec:
    """Seeded, declarative description of an open arrival stream.

    Immutable and canonically serialisable: ``to_dict`` /
    ``from_dict`` round-trip, and :attr:`spec_hash` is stable under
    field reordering (sorted-key JSON).  The same seed always yields
    the identical arrival trace.
    """

    pattern: str = "poisson"
    #: Mean arrivals per simulated second (time-scale for ``bursty``).
    rate: float = 50.0
    #: Number of DAG instances to release.
    count: int = 8
    #: Workload mix; empty = the enclosing job's workload for every
    #: instance, multiple entries = uniform multi-tenant mix.
    workloads: Sequence[str] = ()
    #: Relative deadline per instance in simulated seconds (absolute
    #: deadline = release + ``deadline``); ``None`` = no deadlines.
    deadline: Optional[float] = None
    #: ``bursty``: burst-rate multiplier (arrivals inside a burst come
    #: ``burstiness`` times faster; gaps are ``burstiness`` times longer).
    burstiness: float = 8.0
    #: ``bursty``: mean burst length (geometric).
    burst_len: float = 4.0
    #: ``heavy``: Pareto tail exponent (> 1 so the mean is finite).
    heavy_shape: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pattern not in _PATTERNS:
            raise WorkloadError(
                f"unknown arrival pattern {self.pattern!r} "
                f"(known: {', '.join(_PATTERNS)})"
            )
        if self.rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        if self.count < 1:
            raise WorkloadError("arrival count must be at least 1")
        if self.deadline is not None and self.deadline <= 0:
            raise WorkloadError("relative deadline must be positive")
        if self.burstiness < 1 or self.burst_len < 1:
            raise WorkloadError("burstiness and burst_len must be >= 1")
        if self.heavy_shape <= 1:
            raise WorkloadError("heavy_shape must exceed 1 (finite mean)")
        object.__setattr__(
            self, "workloads", tuple(str(w) for w in self.workloads)
        )

    # -- canonical form -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": ARRIVAL_SCHEMA_VERSION,
            "pattern": self.pattern,
            "rate": self.rate,
            "count": self.count,
            "workloads": list(self.workloads),
            "deadline": self.deadline,
            "burstiness": self.burstiness,
            "burst_len": self.burst_len,
            "heavy_shape": self.heavy_shape,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArrivalSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @property
    def spec_hash(self) -> str:
        """Content hash; independent of dict/field ordering."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- trace generation -----------------------------------------------
    def arrival_times(self) -> list[float]:
        """Absolute release times, deterministic in ``seed``."""
        rng = np.random.default_rng(self.seed)
        if self.pattern == "poisson":
            gaps = rng.exponential(1.0 / self.rate, size=self.count)
            return list(np.cumsum(gaps))
        if self.pattern == "heavy":
            # (1 + Pareto(a)) * xm has mean xm * a / (a - 1); pick xm
            # so the mean inter-arrival is 1/rate.
            a = self.heavy_shape
            xm = (a - 1.0) / (a * self.rate)
            gaps = xm * (1.0 + rng.pareto(a, size=self.count))
            return list(np.cumsum(gaps))
        # bursty: long exponential gaps between bursts, geometric burst
        # sizes, short exponential gaps inside a burst.
        times: list[float] = []
        t = 0.0
        while len(times) < self.count:
            t += float(rng.exponential(self.burstiness / self.rate))
            times.append(t)
            size = int(rng.geometric(1.0 / self.burst_len))
            for _ in range(size - 1):
                if len(times) >= self.count:
                    break
                t += float(rng.exponential(1.0 / (self.rate * self.burstiness)))
                times.append(t)
        return times

    def trace(self) -> list[Arrival]:
        """The full arrival trace (times + per-arrival workload draw).

        Workload draws use an independent seeded stream so the trace's
        *times* do not shift when a mix is added or removed.
        """
        times = self.arrival_times()
        if len(self.workloads) > 1:
            mix_rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, 0x4A4F5353])
            )
            picks = mix_rng.integers(len(self.workloads), size=self.count)
            names: list[Optional[str]] = [
                self.workloads[int(p)] for p in picks
            ]
        elif self.workloads:
            names = [self.workloads[0]] * self.count
        else:
            names = [None] * self.count
        return [
            Arrival(i, float(t), names[i]) for i, t in enumerate(times)
        ]

    # -- materialisation ------------------------------------------------
    def build(
        self,
        default_workload: str,
        scale: float = 1.0,
        workload_seed: int = 3,
        overrides: Mapping[str, Any] | None = None,
    ) -> "ArrivalPlan":
        """Materialise the stream into an executor-ready plan.

        Each distinct workload is generated once and instances share
        its (immutable) kernels; the merged graph's tasks carry
        ``meta["dag"]`` (instance index), ``meta["deadline"]``
        (absolute, when the spec has one), and root tasks
        ``meta["release"]``.
        """
        from repro.workloads.registry import build_workload

        trace = self.trace()
        names = [a.workload or default_workload for a in trace]
        templates: dict[str, TaskGraph] = {}
        for nm in dict.fromkeys(names):
            templates[nm] = build_workload(
                nm, scale=scale, seed=workload_seed, **dict(overrides or {})
            )
        merged = TaskGraph.combine(
            [templates[nm] for nm in names],
            name=f"{'+'.join(dict.fromkeys(names))}~{self.pattern}x{self.count}",
        )
        instances: list[DagInstance] = []
        off = 0
        for arr, nm in zip(trace, names):
            size = len(templates[nm])
            abs_deadline = (
                arr.time + self.deadline if self.deadline is not None else None
            )
            for t in merged.tasks[off:off + size]:
                t.meta["dag"] = arr.index
                if abs_deadline is not None:
                    t.meta["deadline"] = abs_deadline
                if t.deps_remaining == 0:
                    t.meta["release"] = arr.time
            instances.append(
                DagInstance(arr.index, nm, arr.time, abs_deadline, size)
            )
            off += size
        return ArrivalPlan(merged, tuple(instances), self)


@dataclass
class ArrivalPlan:
    """A built arrival stream: the merged graph plus per-instance facts.

    Single-use, like any executed :class:`TaskGraph` — rebuild from the
    spec for another run.
    """

    graph: TaskGraph
    instances: tuple[DagInstance, ...]
    spec: ArrivalSpec

    def __len__(self) -> int:
        return len(self.instances)
