"""Matrix Multiplication (MM) — compute-intensive synthetic (Table 1).

Each task computes a tiled ``A x B = C`` GEMM.  The DAG parallelism
``dop`` is configurable (paper section 2 uses dop=1): the graph is
``dop`` independent chains, giving exactly ``tasks/critical-path =
dop``.  Two tile sizes are evaluated (256 and 512), trading task count
against granularity.
"""

from __future__ import annotations

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

#: Per-size kernels: 2*N^3 flops, 3*N^2 doubles of (partly cached) traffic.
_KERNELS = {
    256: KernelSpec(
        name="mm.256",
        w_comp=0.034,
        w_bytes=0.0008,
        type_affinity={"denver": 1.5},
    ),
    512: KernelSpec(
        name="mm.512",
        w_comp=0.27,
        w_bytes=0.0032,
        type_affinity={"denver": 1.5},
    ),
}


def build(
    scale: float = 1.0, seed: int = 0, size: int = 256, dop: int = 4
) -> TaskGraph:
    if size not in _KERNELS:
        raise ValueError(f"unknown MM size {size} (options: {sorted(_KERNELS)})")
    if dop < 1:
        raise ValueError("dop must be >= 1")
    kernel = _KERNELS[size]
    base_tasks = 120 if size == 256 else 40
    total = scaled_count(base_tasks, scale, minimum=dop * 2)
    chain_len = max(2, total // dop)
    g = TaskGraph(f"mm-{size}")
    for _ in range(dop):
        prev = None
        for _ in range(chain_len):
            prev = g.add_task(kernel, deps=[prev] if prev else None)
    return g
