"""Darknet-VGG-16 (VG) — the real 16-layer CNN as a fork-join DAG.

Table 1: a 768x576 RGB input, blocksize 64, 10 iterations, 5090 tasks.
The per-layer work here is derived from the actual VGG-16 architecture
(Simonyan & Zisserman [43]): thirteen 3x3 convolutions in five groups
separated by 2x2 max-pools, then three fully-connected layers.  For
each layer we compute FLOPs (2 * H*W * Cin * Cout * 9 for convs) and
the dominant memory traffic (activations for the big early convs,
weight matrices for the FC tail), then normalise the totals to
simulation-scale task granularities while preserving the *relative*
shape: early layers are huge and compute-bound, the FC tail is small
and memory-bound (weights stream from DRAM once per image).

Layers of one group share a kernel (their blocks have near-identical
arithmetic intensity), giving five conv kernels + one FC kernel — each
invoked every iteration so the samplers resolve quickly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec_model.kernels import KernelSpec
from repro.runtime.dag import TaskGraph
from repro.workloads.base import scaled_count

#: Input resolution of the paper's Darknet run.
INPUT_H, INPUT_W = 576, 768

#: VGG-16 conv groups: (group name, n_layers, C_in of first, C_out).
_CONV_GROUPS = [
    ("g1", 2, 3, 64),
    ("g2", 2, 64, 128),
    ("g3", 3, 128, 256),
    ("g4", 3, 256, 512),
    ("g5", 3, 512, 512),
]

#: FC tail: (C_in, C_out); the first flattens the pooled feature map.
_FC_LAYERS = [(512 * (INPUT_H // 32) * (INPUT_W // 32), 4096),
              (4096, 4096), (4096, 1000)]

#: Calibration: total compute work per network pass at scale 1, in
#: giga-ops of the simulated platform (real VGG-16 at this input is
#: ~270 GFLOP; the simulator runs a proportionally scaled instance).
TOTAL_COMP_BUDGET = 6.0
#: And total beyond-LLC traffic per pass (GB, scaled likewise).
TOTAL_BYTES_BUDGET = 0.12


@dataclass(frozen=True)
class LayerProfile:
    """Derived work of one VGG-16 layer group."""

    name: str
    flops: float          # raw FLOPs of the whole group
    traffic: float        # raw bytes of the whole group
    blocks: int           # fork width per layer (Table 1 blocksize 64)
    n_layers: int


def layer_profiles(block_size: int = 64) -> list[LayerProfile]:
    """Per-group FLOPs/traffic from the real architecture."""
    profiles = []
    h, w = INPUT_H, INPUT_W
    for name, n_layers, c_in, c_out in _CONV_GROUPS:
        flops = 0.0
        traffic = 0.0
        cin = c_in
        for _ in range(n_layers):
            flops += 2.0 * h * w * cin * c_out * 9
            # Activations in+out (4 B floats) dominate conv traffic.
            traffic += 4.0 * h * w * (cin + c_out)
            cin = c_out
        blocks = max(2, (h * w) // (block_size * block_size * 8))
        profiles.append(LayerProfile(name, flops, traffic, blocks, n_layers))
        h, w = h // 2, w // 2  # max-pool between groups
    fc_flops = sum(2.0 * ci * co for ci, co in _FC_LAYERS)
    fc_traffic = sum(4.0 * ci * co for ci, co in _FC_LAYERS)  # weights
    profiles.append(
        LayerProfile("fc", fc_flops, fc_traffic, blocks=2, n_layers=len(_FC_LAYERS))
    )
    return profiles


def _kernels(block_size: int = 64) -> dict[str, tuple[KernelSpec, LayerProfile]]:
    profiles = layer_profiles(block_size)
    total_flops = sum(p.flops for p in profiles)
    total_traffic = sum(p.traffic for p in profiles)
    out = {}
    for p in profiles:
        comp_share = p.flops / total_flops * TOTAL_COMP_BUDGET
        bytes_share = p.traffic / total_traffic * TOTAL_BYTES_BUDGET
        tasks_per_pass = p.blocks * p.n_layers
        affinity = {"denver": 1.6} if p.name != "fc" else {}
        out[p.name] = (
            KernelSpec(
                name=f"vg.{p.name}",
                w_comp=comp_share / tasks_per_pass,
                w_bytes=bytes_share / tasks_per_pass,
                type_affinity=affinity,
            ),
            p,
        )
    return out


JOIN = KernelSpec(name="vg.join", w_comp=0.0004, w_bytes=0.0)


def build(
    scale: float = 1.0, seed: int = 0, iterations: int | None = None,
    block_size: int = 64,
) -> TaskGraph:
    if iterations is None:
        # At least 4 iterations so every kernel is invoked often enough
        # for the model-based schedulers' sampling plans.
        iterations = scaled_count(4, scale, minimum=4)
    kernels = _kernels(block_size)
    width_scale = max(0.25, scale**0.5)
    g = TaskGraph("vg")
    barrier = None
    for _ in range(iterations):
        for name, (kernel, profile) in kernels.items():
            for _layer in range(profile.n_layers):
                width = max(1, int(round(profile.blocks * width_scale)))
                tasks = [
                    g.add_task(kernel, deps=[barrier] if barrier else None)
                    for _ in range(width)
                ]
                barrier = g.add_task(JOIN, deps=tasks)
    return g
