"""Memory-bandwidth contention between concurrent tasks.

When the aggregate bandwidth demand of all running activities exceeds
the memory system's capacity at its current frequency, every stall
phase stretches by the oversubscription ratio.  This is the mechanism
behind two of the paper's observations: why concurrent memory-intensive
tasks interfere, and why throttling ``f_M`` on a memory-bound mix hurts
performance (capacity shrinks with frequency).
"""

from __future__ import annotations

from typing import Iterable

from repro.hw.memory import MemorySystem


class ContentionModel:
    """Global stall-stretch factor from aggregate bandwidth demand."""

    def __init__(self, memory: MemorySystem) -> None:
        self.memory = memory

    def factor(self, demands_gbps: Iterable[float]) -> float:
        """Contention factor >= 1 given per-activity uncontended
        bandwidth demands (GB/s)."""
        return self.factor_from_total(sum(demands_gbps))

    def factor_from_total(self, total_gbps: float) -> float:
        """:meth:`factor` from a pre-summed aggregate demand, so the
        hot loop sums the demands once for factor, achieved bandwidth
        and per-activity shares."""
        cap = self.memory.bandwidth_capacity
        if cap <= 0 or total_gbps <= cap:
            return 1.0
        return total_gbps / cap

    def achieved_bandwidth(
        self, demands_gbps: Iterable[float], factor: float | None = None
    ) -> float:
        """Aggregate bandwidth actually flowing, after contention.

        With the uniform-stretch model, demand above capacity saturates
        at capacity.
        """
        return self.achieved_from_total(sum(demands_gbps))

    def achieved_from_total(self, total_gbps: float) -> float:
        """:meth:`achieved_bandwidth` from a pre-summed demand."""
        cap = self.memory.bandwidth_capacity
        return min(total_gbps, cap) if cap > 0 else 0.0
