"""Execution engine: runs activities on cores under changing state.

Responsibilities:

- start/complete activities (task partitions) on cores;
- re-time every running activity whenever a cluster frequency, the
  memory frequency, or the set of running activities changes (the
  contention factor is global, so any change can shift every deadline);
- evaluate instantaneous rail power after every state change and feed
  the exact :class:`~repro.hw.sensor.EnergyAccountant`;
- expose a ``rail_powers`` read function for the sampled
  :class:`~repro.hw.sensor.PowerSensor`.

The re-timing step is the heart of the simulation: it is what makes
DVFS interference between concurrent tasks (paper section 5.3) a real,
measurable effect rather than an assumption.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.exec_model.activity import Activity
from repro.exec_model.contention import ContentionModel
from repro.exec_model.kernels import KernelSpec
from repro.exec_model.timing import MIN_DURATION_S, GroundTruthTiming, TimingBreakdown
from repro.hw.core import Core
from repro.hw.platform import Platform
from repro.hw.sensor import EnergyAccountant
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

#: Completion events run after DVFS applies (-10) at equal timestamps
#: but before ordinary runtime events (0), so dependents woken by a
#: completion see consistent core states.
COMPLETION_PRIORITY = -5


class ExecutionEngine:
    """Owns all running activities and the power/energy bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        rng: RngStreams,
        accountant: Optional[EnergyAccountant] = None,
        tracer: Optional[Tracer] = None,
        duration_noise_sigma: float = 0.02,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.timing = GroundTruthTiming(platform.memory)
        self.contention = ContentionModel(platform.memory)
        self.accountant = accountant if accountant is not None else EnergyAccountant()
        self.tracer = tracer
        self.duration_noise_sigma = float(duration_noise_sigma)
        self._noise_rng = rng.stream("exec-noise")
        self._activities: list[Activity] = []
        #: Callback ``fn(activity)`` invoked when a partition finishes.
        self.on_complete: Optional[Callable[[Activity], None]] = None
        #: Callbacks invoked (no args) after every global re-timing —
        #: i.e. whenever frequencies or the running set changed.  Used
        #: by analysis instrumentation (energy attribution).
        self.on_state_change: list[Callable[[], None]] = []
        # Re-time on any frequency change.
        for cl in platform.clusters:
            cl.on_freq_change.append(lambda _cl: self._state_changed())
        platform.memory.on_freq_change.append(lambda _m: self._state_changed())
        # Initialise rail powers for the all-idle platform.
        self.accountant.update(sim.now, self.rail_powers())

    # ------------------------------------------------------------------
    # Activity lifecycle
    # ------------------------------------------------------------------
    @property
    def activities(self) -> tuple[Activity, ...]:
        return tuple(self._activities)

    def busy_core_count(self) -> int:
        """Instantaneous number of working cores (the paper's task
        concurrency signal for idle-power attribution)."""
        return len(self._activities)

    def start_activity(
        self,
        kernel: KernelSpec,
        core: Core,
        n_cores_total: int = 1,
        payload: Any = None,
    ) -> Activity:
        """Begin executing one partition of ``kernel`` on ``core``."""
        if core.busy:
            raise SchedulingError(f"core {core.core_id} is already busy")
        noise = 1.0
        if self.duration_noise_sigma > 0:
            noise = float(
                self._noise_rng.lognormal(mean=0.0, sigma=self.duration_noise_sigma)
            )
        act = Activity(kernel, core, n_cores_total, noise, payload, self.sim.now)
        core.busy = True
        core.current_activity = act
        self._activities.append(act)
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "activity-start", kernel=kernel.name, core=core.core_id
            )
        self._state_changed()
        return act

    def _complete(self, act: Activity) -> None:
        if act not in self._activities:  # cancelled/stale event
            return
        act.advance_to(self.sim.now)
        self._activities.remove(act)
        act.core.busy = False
        act.core.current_activity = None
        act.completion_event = None
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "activity-end",
                kernel=act.kernel.name,
                core=act.core.core_id,
                elapsed=self.sim.now - act.started_at,
            )
        self._state_changed()
        if self.on_complete is not None:
            self.on_complete(act)

    def abort_all(self) -> None:
        """Cancel every running activity (used by tests/teardown)."""
        for act in list(self._activities):
            if act.completion_event is not None:
                act.completion_event.cancel()
            act.core.busy = False
            act.core.current_activity = None
        self._activities.clear()
        self._state_changed()

    # ------------------------------------------------------------------
    # Re-timing
    # ------------------------------------------------------------------
    def _breakdown_for(self, act: Activity) -> TimingBreakdown:
        """Partition timing: wall time equals the whole task's wall time
        on ``n_cores_total`` cores; bandwidth demand is the per-core
        share (traffic is conserved across partitions)."""
        b = self.timing.breakdown(
            act.kernel,
            act.core.core_type,
            act.n_cores_total,
            act.core.freq,
            self.platform.memory.freq,
        )
        return TimingBreakdown(
            t_comp=b.t_comp, t_mem=b.t_mem, bw_demand=b.bw_demand / act.n_cores_total
        )

    def _state_changed(self) -> None:
        """Advance progress, recompute contention, reschedule deadlines,
        refresh rail power."""
        now = self.sim.now
        for act in self._activities:
            act.advance_to(now)
        breakdowns = [self._breakdown_for(a) for a in self._activities]
        factor = self.contention.factor(b.bw_demand for b in breakdowns)
        achieved_total = self.contention.achieved_bandwidth(
            (b.bw_demand for b in breakdowns)
        )
        total_demand = sum(b.bw_demand for b in breakdowns)
        for act, b in zip(self._activities, breakdowns):
            duration_full = max(
                (b.t_comp + b.t_mem * factor) * act.noise, MIN_DURATION_S
            )
            stall_left = max(0.0, act.stall_until - now)
            act.rate = 0.0 if stall_left > 0 else 1.0 / duration_full
            stretched = b.t_comp + b.t_mem * factor
            act.mb_inst = (b.t_mem * factor) / stretched if stretched > 0 else 0.0
            if total_demand > 0:
                act.bw_achieved = achieved_total * (b.bw_demand / total_demand)
            else:
                act.bw_achieved = 0.0
            remaining = stall_left + act.frac_remaining * duration_full
            if act.completion_event is not None:
                act.completion_event.cancel()
            act.completion_event = self.sim.schedule(
                remaining, self._complete, act, priority=COMPLETION_PRIORITY
            )
        self.accountant.update(now, self.rail_powers())
        for fn in self.on_state_change:
            fn()

    def stall_activities(self, cores=None, duration: float = 0.0) -> None:
        """Freeze progress of the given cores' activities (``None`` =
        every running activity) for ``duration`` seconds — the
        execution cost of a DVFS transition on a shared domain."""
        if duration <= 0:
            return
        until = self.sim.now + duration
        affected = False
        core_set = set(cores) if cores is not None else None
        for act in self._activities:
            if core_set is None or act.core in core_set:
                act.stall_until = max(act.stall_until, until)
                affected = True
        if affected:
            # Re-time now (rates drop to zero) and again at stall end.
            self._state_changed()
            self.sim.schedule(duration, self._state_changed)

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def rail_powers(self) -> dict[str, float]:
        """Instantaneous true power on the CPU and memory rails (W)."""
        pm = self.platform.power_model
        cpu = 0.0
        for cl in self.platform.clusters:
            loads: list[Optional[float]] = []
            for core in cl.cores:
                act = core.current_activity
                if act is None and not core.online:
                    continue  # hot-unplugged and drained: no leakage
                loads.append(act.mb_inst if isinstance(act, Activity) else None)
            cpu += pm.cluster_power(cl, loads)
        achieved = sum(a.bw_achieved for a in self._activities)
        mem = pm.memory_power(self.platform.memory, achieved)
        return {"cpu": cpu, "mem": mem}

    def finalize(self) -> None:
        """Close the energy integration at the current time."""
        if self._activities:
            raise SimulationError(
                f"finalize with {len(self._activities)} activities still running"
            )
        self.accountant.finalize(self.sim.now)
