"""Execution engine: runs activities on cores under changing state.

Responsibilities:

- start/complete activities (task partitions) on cores;
- re-time the activities whose timing inputs actually changed whenever
  a cluster frequency, the memory frequency, or the set of running
  activities changes (the contention factor is global, so a *factor*
  move can shift every deadline — but a factor-preserving change only
  touches its own cluster's activities);
- evaluate instantaneous rail power after every state change and feed
  the exact :class:`~repro.hw.sensor.EnergyAccountant`;
- expose a ``rail_powers`` read function for the sampled
  :class:`~repro.hw.sensor.PowerSensor`.

The re-timing step is the heart of the simulation: it is what makes
DVFS interference between concurrent tasks (paper section 5.3) a real,
measurable effect rather than an assumption.

Cost model (see docs/architecture.md, "Performance"): a state change is
O(affected), not O(everything).  Affected sets are derived from running
sums (total bandwidth demand, per-cluster dynamic-activity sums) that
update in O(1) per delta; per-activity numeric state lives in a
structure-of-arrays store (:mod:`repro.exec_model.soa`) so residual
full passes can vectorize; and materialisation skips by value — an
activity whose recomputed rate is unchanged keeps its scheduled
completion event and its lazily stale progress counters, which is also
what makes the incremental and ``strict_retime=True`` reference paths
bit-identical: both consume progress at exactly the same instants.
"""

from __future__ import annotations

from heapq import heappush as _heappush
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SchedulingError, SimulationError
from repro.exec_model.activity import Activity
from repro.exec_model.contention import ContentionModel
from repro.exec_model.kernels import KernelSpec
from repro.exec_model.soa import ActivityState
from repro.exec_model.timing import MIN_DURATION_S, GroundTruthTiming, TimingBreakdown
from repro.hw.core import Core
from repro.hw.platform import Platform
from repro.hw.sensor import EnergyAccountant
from repro.sim.engine import _COMPACT_MIN_DEAD, Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

#: Completion events run after DVFS applies (-10) at equal timestamps
#: but before ordinary runtime events (0), so dependents woken by a
#: completion see consistent core states.
COMPLETION_PRIORITY = -5

#: Affected-set size at which materialisation switches from the scalar
#: loop to the vectorized (NumPy bulk) pass.  NumPy's fixed per-call
#: overhead loses below a few dozen elements, so embedded-class
#: platforms (TX2: 6 cores) always take the scalar path; both paths are
#: bit-identical, making the threshold a pure performance heuristic.
VECTOR_MIN_DEFAULT = 32

#: Sentinel for "integrate energy up to now, change no rail" updates.
_NO_POWERS: dict = {}


class ExecutionEngine:
    """Owns all running activities and the power/energy bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        rng: RngStreams,
        accountant: Optional[EnergyAccountant] = None,
        tracer: Optional[Tracer] = None,
        duration_noise_sigma: float = 0.02,
        cache_size: int = 8192,
        shared_breakdowns: Optional[dict] = None,
        strict_retime: bool = False,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.timing = GroundTruthTiming(platform.memory, cache_size=cache_size)
        self.contention = ContentionModel(platform.memory)
        self.accountant = accountant if accountant is not None else EnergyAccountant()
        self._std_rails = self.accountant.rails == ("cpu", "mem")
        self.tracer = tracer
        self.duration_noise_sigma = float(duration_noise_sigma)
        self._noise_rng = rng.stream("exec-noise")
        # Duration noise is drawn in blocks: a vectorised lognormal
        # consumes the bitstream exactly like repeated scalar draws, so
        # the per-activity values are bit-identical — the engine is the
        # stream's only consumer, making the read-ahead invisible.
        self._noise_buf: Any = None
        self._noise_i = 0
        self._activities: list[Activity] = []
        # Hot-path caches (``cache_size=0`` disables every one; cached
        # values are always bit-identical to what recomputation would
        # produce, which the determinism tests pin down).  See
        # docs/architecture.md, "Performance".
        self._cache_size = int(cache_size)
        #: Reference mode: every re-timing pass re-derives every running
        #: activity (O(everything)) instead of only the affected set.
        #: All skips inside materialisation are *by value*, so the two
        #: modes take identical decisions and produce identical bytes —
        #: pinned by the retime-equivalence tests.
        self._strict = bool(strict_retime)
        #: Scalar→vector materialisation cut-over (see
        #: :data:`VECTOR_MIN_DEFAULT`); tests lower it to force the
        #: vector path on small platforms.
        self.vector_min = VECTOR_MIN_DEFAULT
        #: Partition-share breakdowns keyed like the timing memo.
        self._part_cache: dict = {}
        #: Optional cross-run breakdown memo (sweep fork path; see
        #: :class:`repro.sweep.fork.ForkCache`).  Consulted only on a
        #: ``_part_cache`` miss, keyed by core-type *name* because core
        #: objects are rebuilt per run; ``None`` costs nothing on the
        #: hot path.  Disabled alongside the other caches at
        #: ``cache_size=0`` so the reference path stays pure.
        self._shared_bd = shared_breakdowns if cache_size > 0 else None
        # ---- SoA state + dense index maps --------------------------------
        # Slot = dense index into platform.cores (one running activity
        # per core); cluster index = dense index into platform.clusters.
        cores = platform.cores
        clusters = list(platform.clusters)
        self._clusters = clusters
        cl_k = {cl.cluster_id: k for k, cl in enumerate(clusters)}
        self._cl_k = cl_k
        self._soa = ActivityState(
            n_slots=len(cores),
            stall_act=tuple(c.core_type.stall_activity for c in cores),
            cl_idx=tuple(cl_k[c.cluster.cluster_id] for c in cores),
        )
        #: Per-cluster running activities (insertion order — the basis
        #: of O(affected) marking on a cluster frequency change).
        self._cl_acts: list[list[Activity]] = [[] for _ in clusters]
        #: Per-cluster incremental power inputs: busy-core count and the
        #: sum of every running activity's dynamic-activity factor
        #: ``(1 - mb) + mb * stall_activity``.  Maintained at activity
        #: start/finish/re-materialisation (both cache paths run the
        #: same updates, so they stay bit-identical), and resynced to
        #: 0.0 whenever the cluster drains — the same drift-bounding
        #: discipline as ``_total_demand``.  With these sums the rail
        #: power is closed-form arithmetic: no per-core scan, no cache.
        self._cl_nbusy: list[int] = [0 for _ in clusters]
        self._cl_pasum: list[float] = [0.0 for _ in clusters]
        # Power-model parameters, hoisted once (immutable for the run).
        pmp = platform.power_model.params
        self._k_uncore = pmp.k_uncore
        self._k_idle_clock = pmp.k_idle_clock
        self._mem_idle_base = pmp.mem_idle_base
        self._mem_idle_per_ghz = pmp.mem_idle_per_ghz
        self._mem_e_per_gb = pmp.mem_energy_per_gb
        self._k_mem_ctrl = pmp.k_mem_ctrl
        self._mem = platform.memory
        # (V, f)-derived power coefficients, cached per voltage/frequency
        # change (rail power is evaluated once per re-timing pass, the
        # operating point moves orders of magnitude less often).  Each
        # cached value is a left-prefix of the original expression, so
        # the arithmetic — and hence every energy byte — is unchanged.
        self._cl_c_uncore = [0.0 for _ in clusters]  # k_uncore * V^2 f
        self._cl_c_static = [0.0 for _ in clusters]  # k_static * V^2
        self._cl_c_idle = [0.0 for _ in clusters]    # k_idle_clock * V^2 f
        self._cl_k_dyn = [cl.core_type.k_dyn for cl in clusters]
        self._cl_v2f = [0.0 for _ in clusters]       # V^2 f
        for k in range(len(clusters)):
            self._refresh_cluster_power(k)
        self._mem_cap = 0.0   # bw_cap_per_ghz * f_M
        self._mem_idle = 0.0  # mem_idle_base + mem_idle_per_ghz * f_M
        self._mem_cctrl = 0.0  # k_mem_ctrl * V^2 f_M
        self._refresh_mem_power()
        #: Contention factor of the last re-timing pass.  After every
        #: pass each activity's materialised state reflects this factor
        #: (a factor change re-materialises *all* activities), which is
        #: what makes the affected-set scheme in ``_retime`` sound.
        self._prev_factor: float = 1.0
        #: Running sum of every activity's folded-in bandwidth demand —
        #: the contention model's total, maintained incrementally so a
        #: clean re-timing pass never loops the running set.  Resynced
        #: to 0.0 whenever the set drains (bounds float drift to one
        #: busy phase; the drifted value is used consistently
        #: everywhere, so results stay deterministic).
        self._total_demand = 0.0
        #: Count of activities marked dirty (``Activity.dirty``) and not
        #: yet re-materialised.  The dirty *set* is recovered by one
        #: scan of ``_activities`` in the pass — insertion order, never
        #: a Python set, whose address-based iteration order would break
        #: cross-process bit-identity — and the scan is skipped entirely
        #: when the count is zero.
        self._n_dirty = 0
        #: Callback ``fn(activity)`` invoked when a partition finishes.
        self.on_complete: Optional[Callable[[Activity], None]] = None
        #: Callbacks invoked (no args) after every global re-timing —
        #: i.e. whenever frequencies or the running set changed.  Used
        #: by analysis instrumentation (energy attribution).  When any
        #: are registered, completions always defer a full pass (the
        #: subscribers see every state change); when none are, a
        #: factor-preserving completion refreshes power inline and
        #: skips the pass — see ``_complete``.
        self.on_state_change: list[Callable[[], None]] = []
        # Re-time on any frequency change (the affected activities'
        # breakdowns move, so they are queued for re-materialisation).
        for cl in clusters:
            cl.on_freq_change.append(self._on_cluster_freq)
        platform.memory.on_freq_change.append(self._on_mem_freq)
        # Initialise rail powers for the all-idle platform.
        self.accountant.update(sim.now, self.rail_powers())

    # ------------------------------------------------------------------
    # Activity lifecycle
    # ------------------------------------------------------------------
    @property
    def activities(self) -> tuple[Activity, ...]:
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        return tuple(self._activities)

    def busy_core_count(self) -> int:
        """Instantaneous number of working cores (the paper's task
        concurrency signal for idle-power attribution)."""
        return len(self._activities)

    def start_activity(
        self,
        kernel: KernelSpec,
        core: Core,
        n_cores_total: int = 1,
        payload: Any = None,
    ) -> Activity:
        """Begin executing one partition of ``kernel`` on ``core``."""
        if core.busy:
            raise SchedulingError(f"core {core.core_id} is already busy")
        noise = 1.0
        if self.duration_noise_sigma > 0:
            buf = self._noise_buf
            if buf is None or self._noise_i >= len(buf):
                buf = self._noise_buf = self._noise_rng.lognormal(
                    mean=0.0, sigma=self.duration_noise_sigma, size=256
                )
                self._noise_i = 0
            noise = float(buf[self._noise_i])
            self._noise_i += 1
        sim = self.sim
        now = sim._now
        slot = core.slot
        act = Activity(kernel, core, n_cores_total, payload, now, slot, self._soa)
        core.busy = True
        core.current_activity = act
        self._activities.append(act)
        act.dirty = True
        self._n_dirty += 1
        self._soa.reset_slot(slot, now, noise)
        k = self._soa.cl_idx[slot]
        self._cl_acts[k].append(act)
        self._cl_nbusy[k] += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "activity-start", kernel=kernel.name, core=core.core_id
            )
        obs = sim.obs
        if obs.active:
            obs.emit(
                "task_started", now,
                kernel=kernel.name, core=core.core_id,
            )
        # Defer the re-timing pass (see _state_changed, inlined here:
        # this is the hot path).  The pass runs before the clock next
        # advances, so its accountant update integrates the pre-change
        # power over exactly the same interval an eager update would.
        sim.flush_fn = self._flush_if_needed
        return act

    def _complete(self, act: Activity) -> None:
        if not act.live:  # cancelled/stale event
            return
        sim = self.sim
        now = sim._now
        st = self._soa
        i = act.slot
        # Activity.advance_to inlined: consolidate progress to now.
        dt = now - st.last_upd[i]
        r = st.rate[i]
        if dt > 0 and r > 0:
            frac = st.frac[i] - dt * r
            st.frac[i] = frac if frac > 0.0 else 0.0
        st.last_upd[i] = now
        acts = self._activities
        acts.remove(act)
        act.live = False
        if act.dirty:
            act.dirty = False
            self._n_dirty -= 1
        total = self._total_demand - st.bw_dem[i]
        if not acts:
            total = 0.0  # resync the running sum
        self._total_demand = total
        core = act.core
        cluster = core.cluster
        core.busy = False
        core.current_activity = None
        k = st.cl_idx[i]
        self._cl_acts[k].remove(act)
        nb = self._cl_nbusy[k] = self._cl_nbusy[k] - 1
        if nb == 0:
            self._cl_pasum[k] = 0.0  # resync the activity sum
        else:
            self._cl_pasum[k] -= st.pa[i]
        if not core._online:  # drained after a hot-unplug (grace end)
            cluster._n_draining -= 1
        act.completion_event = None
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "activity-end",
                kernel=act.kernel.name,
                core=core.core_id,
                elapsed=now - act.started_at,
            )
        obs = sim.obs
        if obs.active:
            obs.emit(
                "task_finished", now,
                kernel=act.kernel.name, core=core.core_id,
                elapsed=now - act.started_at,
            )
        # Defer the re-timing pass.  A completion is almost always
        # followed by a same-timestamp start on the freed core (the
        # worker fetches synchronously), so deferral folds the
        # completion's pass and the start's pass into one — paying
        # anything here (even an inline power refresh) is strictly
        # extra work in that dominant case.
        sim.flush_fn = self._flush_if_needed
        if self.on_complete is not None:
            self.on_complete(act)

    def abort_all(self) -> None:
        """Cancel every running activity (used by tests/teardown)."""
        for act in list(self._activities):
            if act.completion_event is not None:
                act.completion_event.cancel()
            act.live = False
            act.dirty = False
            act.core.busy = False
            act.core.current_activity = None
            if not act.core._online:
                act.core.cluster._n_draining -= 1
        self._activities.clear()
        for lst in self._cl_acts:
            lst.clear()
        self._n_dirty = 0
        self._total_demand = 0.0
        for k in range(len(self._cl_nbusy)):
            self._cl_nbusy[k] = 0
            self._cl_pasum[k] = 0.0
        self._state_changed()

    # ------------------------------------------------------------------
    # Change notifications
    # ------------------------------------------------------------------
    def _on_cluster_freq(self, cl) -> None:
        # O(affected): only this cluster's activities re-materialise (a
        # factor move, detected inside the pass from the running demand
        # total, widens the set there).
        k = self._cl_k[cl.cluster_id]
        self._refresh_cluster_power(k)
        n = self._n_dirty
        for act in self._cl_acts[k]:
            if not act.dirty:
                act.dirty = True
                n += 1
        self._n_dirty = n
        self._state_changed()

    def _on_mem_freq(self, _mem) -> None:
        # The memory frequency enters every breakdown: all affected.
        self._refresh_mem_power()
        n = self._n_dirty
        for act in self._activities:
            if not act.dirty:
                act.dirty = True
                n += 1
        self._n_dirty = n
        self._state_changed()

    def _refresh_cluster_power(self, k: int) -> None:
        """Re-derive cluster ``k``'s cached (V, f) power products (see
        ``__init__``); called on every cluster frequency change."""
        cl = self._clusters[k]
        v = cl._volts
        v2f = v * v * cl._freq
        self._cl_v2f[k] = v2f
        self._cl_c_uncore[k] = self._k_uncore * v2f
        self._cl_c_static[k] = cl.core_type.k_static * v * v
        self._cl_c_idle[k] = self._k_idle_clock * v2f

    def _refresh_mem_power(self) -> None:
        """Re-derive the memory rail's cached (V, f) products; called on
        every memory frequency change."""
        mem = self._mem
        f = mem._freq
        mv = mem._volts
        self._mem_cap = mem.bw_cap_per_ghz * f
        self._mem_idle = self._mem_idle_base + self._mem_idle_per_ghz * f
        self._mem_cctrl = self._k_mem_ctrl * mv * mv * f

    # ------------------------------------------------------------------
    # Re-timing
    # ------------------------------------------------------------------
    def _breakdown_for(self, act: Activity) -> TimingBreakdown:
        """Partition timing: wall time equals the whole task's wall time
        on ``n_cores_total`` cores; bandwidth demand is the per-core
        share (traffic is conserved across partitions)."""
        kernel = act.kernel
        core_type = act.core.core_type
        f_c = act.core.freq
        f_m = self.platform.memory.freq
        cache = self._part_cache
        key = (id(kernel), id(core_type), act.n_cores_total, f_c, f_m)
        hit = cache.get(key)
        if hit is not None and hit[0] is kernel:
            return hit[1]
        b = self.timing.breakdown(kernel, core_type, act.n_cores_total, f_c, f_m)
        part = TimingBreakdown(
            t_comp=b.t_comp, t_mem=b.t_mem, bw_demand=b.bw_demand / act.n_cores_total
        )
        if self._cache_size > 0:
            if len(cache) >= self._cache_size:  # FIFO eviction
                cache.pop(next(iter(cache)))
            cache[key] = (kernel, part)
        return part

    def _state_changed(self) -> None:
        """The running set, a frequency or a stall deadline changed.

        The pass is deferred (marked via ``Simulator.flush_fn``): bursts
        of same-timestamp changes (a moldable task's partitions start
        via separate equal-time events) each re-time the running set,
        and every pass but the last is invisible — its completion events
        are superseded by the next pass, its power refresh happens at
        ``dt == 0``.  Deferral runs only the last one.

        Energy stays exact without an eager ``integrate_to`` here: the
        pass runs before the clock next advances (``Simulator._pop_live``
        invokes the flush hook first), so its accountant update
        integrates the pre-change power over exactly the interval an
        eager update would have closed.
        """
        self.sim.flush_fn = self._flush_if_needed

    def _flush_if_needed(
        self, head_time: Optional[float], head_priority: int
    ) -> bool:
        """``Simulator.flush_fn``: run the deferred re-timing pass unless
        the head event provably pops first in the eager schedule too.

        Deferring past the head is sound only when the head fires at the
        current instant AND no event the pass would (re)schedule could
        beat it: completion events are the only priority-(-5) events, so
        a lower-priority head (DVFS apply) always wins, an equal-priority
        head is a stale completion the pass must supersede first, and a
        higher-priority head (runtime/fetch events) wins unless a
        re-timed completion lands at ``now`` itself — excluded by the
        remaining-time lower bound ``frac * MIN_DURATION_S``.
        """
        now = self.sim._now
        if head_time is not None and head_time == now:
            if head_priority < COMPLETION_PRIORITY:
                return False
            if head_priority > COMPLETION_PRIORITY:
                md = MIN_DURATION_S
                st = self._soa
                frac_c = st.frac
                lu_c = st.last_upd
                rate_c = st.rate
                for act in self._activities:
                    i = act.slot
                    frac = frac_c[i]
                    dt = now - lu_c[i]
                    r = rate_c[i]
                    if dt > 0 and r > 0:
                        frac = frac - dt * r
                        if frac < 0.0:
                            frac = 0.0
                    if not (now + frac * md > now):
                        break
                else:
                    return False
        self._retime()
        return True

    def _partition_breakdown(self, act: Activity, mem_freq: float, key: tuple):
        """Fetch/recompute ``act``'s partition breakdown for ``key`` and
        stamp ``bd_key`` (the breakdown-unchanged marker; the caller
        skips this call entirely when the key matches, in both cache
        paths — recomputation with caches off would produce the same
        bits, which the determinism tests pin down)."""
        if self._cache_size > 0:
            if key == act.bd_key:
                return act.bd
            # Engine-level memo: activities of the same (kernel, core
            # type, width) at the same frequencies share one partition
            # breakdown — a workload replays a handful of kernels
            # thousands of times, so this hits far more than the
            # per-activity ``bd_key`` marker alone.
            cache = self._part_cache
            ckey = (
                id(act.kernel), id(act.core.core_type),
                act.n_cores_total, key[0], mem_freq,
            )
            hit = cache.get(ckey)
            if hit is not None and hit[0] is act.kernel:
                b = hit[1]
            else:
                b = None
                shared = self._shared_bd
                skey = None
                if shared is not None:
                    # Cross-run memo (sweep fork path): breakdowns are
                    # pure in (kernel, core type, width, f_C, f_M), so a
                    # neighbouring grid point's value is reusable as-is.
                    skey = (
                        id(act.kernel), act.core.core_type.name,
                        act.n_cores_total, key[0], mem_freq,
                    )
                    shit = shared.get(skey)
                    if shit is not None and shit[0] is act.kernel:
                        b = shit[1]
                if b is None:
                    full = self.timing.breakdown(
                        act.kernel, act.core.core_type, act.n_cores_total,
                        key[0], mem_freq,
                    )
                    b = TimingBreakdown(
                        t_comp=full.t_comp,
                        t_mem=full.t_mem,
                        bw_demand=full.bw_demand / act.n_cores_total,
                    )
                    if shared is not None:
                        shared[skey] = (act.kernel, b)
                if len(cache) >= self._cache_size:  # FIFO eviction
                    cache.pop(next(iter(cache)))
                cache[ckey] = (act.kernel, b)
            act.bd = b
            act.bd_key = key
            return b
        full = self.timing.breakdown(
            act.kernel, act.core.core_type, act.n_cores_total,
            key[0], mem_freq,
        )
        b = TimingBreakdown(
            t_comp=full.t_comp,
            t_mem=full.t_mem,
            bw_demand=full.bw_demand / act.n_cores_total,
        )
        act.bd = b
        act.bd_key = key
        return b

    def _retime(self) -> None:
        """Re-materialise the affected activities, recompute contention,
        refresh rail power.

        Affected-set rules (every materialised per-activity quantity is
        a pure function of the partition breakdown, the global factor
        and the stall state):

        - *dirty* activities — marked by start, stall edges and
          frequency changes (a cluster change marks only its own
          cluster's list) — refresh their breakdown if the ``(f_C,
          f_M)`` key moved, updating the demand total by delta;
        - a *factor* move (total vs capacity, O(1) from the running
          sum) widens the set to every activity, since every deadline
          stretches;
        - ``strict_retime`` widens it unconditionally (the reference
          sweep).

        Materialisation itself (the scalar loop below; the vectorized
        variant lives in :meth:`_materialise_vec`) skips by value: an
        unchanged rate keeps the scheduled completion event *and* the
        lazily stale ``frac``/``last_upd`` pair, so the order and
        instants of progress consolidation — where float rounding
        accumulates — are identical whichever rule produced the set.
        Clean activities are exactly the unchanged-value case, which is
        why incremental, strict, cached and uncached runs stay
        bit-identical.  The scan to recover dirty activities runs in
        ``_activities`` insertion order for the same reason:
        running-sum updates must accumulate in one canonical order.

        This function runs once per state-changing timestamp (roughly
        once per completion) and is the single hottest path in the
        simulator, which is why the scalar loop is inlined here — down
        to the calendar pushes, which bypass ``Simulator.schedule`` /
        ``reschedule`` (their validation is vacuous for freshly derived
        non-negative deadlines) while preserving their exact semantics.
        """
        sim = self.sim
        sim.flush_fn = None
        now = sim._now
        acts = self._activities
        total = self._total_demand
        st = self._soa
        affected: Any = ()
        if self._n_dirty:
            self._n_dirty = 0
            mem_freq = self._mem._freq
            affected = []
            ap = affected.append
            t_comp = st.t_comp
            t_mem = st.t_mem
            bw_dem = st.bw_dem
            for act in acts:
                if not act.dirty:
                    continue
                act.dirty = False
                key = (act.core.cluster._freq, mem_freq)
                if key != act.bd_key:
                    b = self._partition_breakdown(act, mem_freq, key)
                    i = act.slot
                    t_comp[i] = b.t_comp
                    t_mem[i] = b.t_mem
                    bw = b.bw_demand
                    old = bw_dem[i]
                    if bw != old:
                        total = total - old + bw
                        bw_dem[i] = bw
                ap(act)
            self._total_demand = total
        # Contention, inlined from ContentionModel.factor_from_total /
        # achieved_from_total (cap == memory.bandwidth_capacity).
        cap = self._mem_cap
        if cap <= 0 or total <= cap:
            factor = 1.0
            congested = False
        else:
            factor = total / cap
            congested = True
        if factor != self._prev_factor:
            self._prev_factor = factor
            # Contention moved: every activity's deadline moved.
            affected = acts
        elif self._strict and acts:
            affected = acts  # reference sweep; skips are by value
        if affected:
            if len(affected) >= self.vector_min:
                self._materialise_vec(affected, now, factor, congested, cap)
            else:
                # Scalar materialisation: derive (rate, memory-boundness,
                # achieved bandwidth, deadline) per affected activity,
                # updating the per-cluster power sums by delta and the
                # completion event only when the deadline actually moved.
                frac_c = st.frac
                rate_c = st.rate
                lu_c = st.last_upd
                su_c = st.stall_until
                noise_c = st.noise
                mb_c = st.mb
                bwa_c = st.bwa
                pa_c = st.pa
                tcomp_c = st.t_comp
                tmem_c = st.t_mem
                bw_c = st.bw_dem
                stall_act = st.stall_act
                cl_idx = st.cl_idx
                pasum = self._cl_pasum
                md = MIN_DURATION_S
                heap = sim._heap
                seqc = sim._seq
                live_delta = 0
                complete = self._complete
                cp = COMPLETION_PRIORITY
                for act in affected:
                    i = act.slot
                    stretched_mem = tmem_c[i] * factor
                    stretched = tcomp_c[i] + stretched_mem
                    duration_full = stretched * noise_c[i]
                    if duration_full < md:
                        duration_full = md
                    stall_left = su_c[i] - now
                    if stall_left > 0.0:
                        new_rate = 0.0
                    else:
                        stall_left = 0.0
                        new_rate = 1.0 / duration_full
                    mb = stretched_mem / stretched if stretched > 0 else 0.0
                    mb_c[i] = mb
                    a = (1.0 - mb) + mb * stall_act[i]
                    if a != pa_c[i]:
                        pasum[cl_idx[i]] += a - pa_c[i]
                        pa_c[i] = a
                    if cap <= 0:
                        bwa_c[i] = 0.0
                    elif congested:
                        bwa_c[i] = bw_c[i] / factor
                    else:
                        bwa_c[i] = bw_c[i]
                    old_rate = rate_c[i]
                    ev = act.completion_event
                    if new_rate == old_rate:
                        if new_rate != 0.0:
                            if ev is not None:
                                # Unchanged positive rate: the queued
                                # deadline is still exact (completion time
                                # is invariant along constant-rate
                                # progress).  The frac/last_upd
                                # consolidation is skipped too, so every
                                # path that derives this activity's state
                                # consumes progress at identical instants
                                # — the heart of strict/incremental
                                # bit-identity.
                                continue
                            # Orphaned running activity (defensive; cannot
                            # occur in the normal event flow):
                            # consolidate, re-derive.
                            dt = now - lu_c[i]
                            if dt > 0.0:
                                f = frac_c[i] - dt * old_rate
                                frac_c[i] = f if f > 0.0 else 0.0
                            lu_c[i] = now
                    else:
                        # Rate edge: consume progress at the *old* rate.
                        dt = now - lu_c[i]
                        if dt > 0.0 and old_rate > 0.0:
                            f = frac_c[i] - dt * old_rate
                            frac_c[i] = f if f > 0.0 else 0.0
                        lu_c[i] = now
                        rate_c[i] = new_rate
                    time = now + stall_left + frac_c[i] * duration_full
                    if ev is not None:
                        # An unchanged deadline (stalled activity whose
                        # window did not move) keeps the queued entry.
                        if ev.time == time:
                            continue
                        # Simulator.reschedule, inlined: restamp + push.
                        seq = next(seqc)
                        ev.time = time
                        ev.priority = cp
                        ev.seq = seq
                        _heappush(heap, (time, cp, seq, ev))
                    else:
                        # Simulator.schedule, inlined.
                        seq = next(seqc)
                        ev = Event(time, cp, seq, complete, (act,), sim)
                        act.completion_event = ev
                        _heappush(heap, (time, cp, seq, ev))
                        live_delta += 1
                if live_delta:
                    sim._live += live_delta
                live = sim._live
                if (
                    len(heap) - live >= _COMPACT_MIN_DEAD
                    and len(heap) > (live << 1)
                ):
                    sim._compact()
        cpu, memw = self._rail_powers_pair()
        self._acc_update(now, cpu, memw)
        for fn in self.on_state_change:
            fn()

    def _materialise_vec(
        self,
        affected,
        now: float,
        factor: float,
        congested: bool,
        cap: float,
    ) -> None:
        """Vectorized materialisation: one NumPy pass over the SoA
        columns for the arithmetic, then a scalar tail for the
        order-sensitive pieces (per-cluster sum deltas, rate edges,
        event maintenance).  Elementwise float64 ops are IEEE-identical
        to the scalar expressions, so this path is bit-identical to
        :meth:`_materialise` — the threshold between them is purely a
        performance heuristic."""
        st = self._soa
        v = st.views()
        n = len(affected)
        slots = np.fromiter((a.slot for a in affected), dtype=np.intp, count=n)
        tm = v["t_mem"][slots]
        tc = v["t_comp"][slots]
        stretched_mem = tm * factor
        stretched = tc + stretched_mem
        duration = stretched * v["noise"][slots]
        np.maximum(duration, MIN_DURATION_S, out=duration)
        stall_left = v["stall_until"][slots] - now
        stalled = stall_left > 0.0
        stall_left[~stalled] = 0.0
        new_rate = np.where(stalled, 0.0, 1.0 / duration)
        mb = np.divide(
            stretched_mem,
            stretched,
            out=np.zeros(n),
            where=stretched > 0,
        )
        a_vals = (1.0 - mb) + mb * v["stall_act"][slots]
        if cap <= 0:
            bwa = np.zeros(n)
        elif congested:
            bwa = v["bw_dem"][slots] / factor
        else:
            bwa = v["bw_dem"][slots].copy()
        # Order-independent columns write back vectorized.
        v["mb"][slots] = mb
        v["bwa"][slots] = bwa
        # Order-sensitive tail: running-sum deltas accumulate in
        # affected order, rate edges consolidate progress, deadlines
        # move through the calendar — all on the precomputed values.
        frac_c = st.frac
        rate_c = st.rate
        lu_c = st.last_upd
        pa_c = st.pa
        cl_idx = st.cl_idx
        pasum = self._cl_pasum
        sim = self.sim
        schedule = sim.schedule
        reschedule = sim.reschedule
        complete = self._complete
        a_l = a_vals.tolist()
        rate_l = new_rate.tolist()
        dur_l = duration.tolist()
        sl_l = stall_left.tolist()
        for j, act in enumerate(affected):
            i = act.slot
            a = a_l[j]
            if a != pa_c[i]:
                pasum[cl_idx[i]] += a - pa_c[i]
                pa_c[i] = a
            new_rate_j = rate_l[j]
            old_rate = rate_c[i]
            ev = act.completion_event
            if new_rate_j == old_rate:
                if new_rate_j != 0.0:
                    if ev is not None:
                        continue
                    dt = now - lu_c[i]
                    if dt > 0.0:
                        f = frac_c[i] - dt * old_rate
                        frac_c[i] = f if f > 0.0 else 0.0
                    lu_c[i] = now
            else:
                dt = now - lu_c[i]
                if dt > 0.0 and old_rate > 0.0:
                    f = frac_c[i] - dt * old_rate
                    frac_c[i] = f if f > 0.0 else 0.0
                lu_c[i] = now
                rate_c[i] = new_rate_j
            remaining = sl_l[j] + frac_c[i] * dur_l[j]
            if ev is not None:
                if ev.time == now + remaining:
                    continue
                reschedule(ev, remaining, COMPLETION_PRIORITY)
            else:
                act.completion_event = schedule(
                    remaining, complete, act, priority=COMPLETION_PRIORITY
                )

    def stall_activities(self, cores=None, duration: float = 0.0) -> None:
        """Freeze progress of the given cores' activities (``None`` =
        every running activity) for ``duration`` seconds — the
        execution cost of a DVFS transition on a shared domain."""
        if duration <= 0:
            return
        until = self.sim.now + duration
        affected: list[Activity] = []
        core_set = set(cores) if cores is not None else None
        st = self._soa
        su = st.stall_until
        n = self._n_dirty
        for act in self._activities:
            if core_set is None or act.core in core_set:
                i = act.slot
                if until > su[i]:
                    su[i] = until
                if not act.dirty:
                    act.dirty = True
                    n += 1
                affected.append(act)
        self._n_dirty = n
        if affected:
            # Re-time now (rates drop to zero) and again at stall end.
            self._state_changed()
            self.sim.schedule(duration, self._stall_end, tuple(affected))

    def _stall_end(self, acts: tuple) -> None:
        """A stall window closed: re-queue its survivors (their rates
        come back up) and re-time."""
        n = self._n_dirty
        for act in acts:
            if act.live and not act.dirty:
                act.dirty = True
                n += 1
        self._n_dirty = n
        self._state_changed()

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def rail_powers(self) -> dict[str, float]:
        """Instantaneous true power on the CPU and memory rails (W).

        Closed-form arithmetic over the engine's running sums; any
        pending deferred re-timing is flushed first so the sums reflect
        the current state."""
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        cpu, mem = self._rail_powers_pair()
        return {"cpu": cpu, "mem": mem}

    def rail_powers_pair(self) -> tuple[float, float]:
        """``(cpu_watts, mem_watts)`` — :meth:`rail_powers` without the
        per-call dict, for readers that know the standard rail pair (the
        :class:`~repro.hw.sensor.PowerSensor` samples through this)."""
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        return self._rail_powers_pair()

    def _acc_update(self, now: float, cpu: float, mem: float) -> None:
        """Feed the accountant without building a rail mapping (falls
        back to the generic path for custom rail sets)."""
        if self._std_rails:
            self.accountant.update_pair(now, cpu, mem)
        else:
            self.accountant.update(now, {"cpu": cpu, "mem": mem})

    def _rail_powers_pair(self) -> tuple[float, float]:
        """(cpu_watts, mem_watts) with no flush and no dict — the
        internal form behind :meth:`rail_powers`.

        Pure arithmetic over incrementally maintained sums (see
        ``_cl_nbusy`` / ``_cl_pasum``): per cluster, power-relevant
        cores are the online ones plus any hot-unplugged core still
        draining its activity (grace semantics — it keeps clocking and
        leaking); idle-clocked cores are the remainder once the busy
        ones are subtracted.  The memory rail uses the closed-form
        achieved bandwidth: every activity achieves its demand
        (uncongested) or its demand share of the saturated capacity
        (congested, summing to the capacity), and nothing when the
        capacity is zero.
        """
        nbusy = self._cl_nbusy
        pasum = self._cl_pasum
        c_uncore = self._cl_c_uncore
        c_static = self._cl_c_static
        c_idle = self._cl_c_idle
        k_dyn = self._cl_k_dyn
        v2f = self._cl_v2f
        cpu = 0.0
        k = 0
        for cl in self._clusters:
            n_busy = nbusy[k]
            present = cl._n_online + cl._n_draining
            cpu += (
                c_uncore[k]
                + present * c_static[k]
                + (present - n_busy) * c_idle[k]
                + k_dyn[k] * pasum[k] * v2f[k]
            )
            k += 1
        total = self._total_demand
        cap = self._mem_cap
        if cap <= 0.0:
            achieved = 0.0
            util = 0.0
        elif total > cap:
            achieved = cap
            util = 1.0
        else:
            achieved = total
            util = achieved / cap
        mem = (
            self._mem_idle
            + self._mem_e_per_gb * achieved
            + self._mem_cctrl * util
        )
        return cpu, mem

    def finalize(self) -> None:
        """Close the energy integration at the current time."""
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        if self._activities:
            raise SimulationError(
                f"finalize with {len(self._activities)} activities still running"
            )
        self.accountant.finalize(self.sim.now)
