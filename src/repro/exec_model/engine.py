"""Execution engine: runs activities on cores under changing state.

Responsibilities:

- start/complete activities (task partitions) on cores;
- re-time every running activity whenever a cluster frequency, the
  memory frequency, or the set of running activities changes (the
  contention factor is global, so any change can shift every deadline);
- evaluate instantaneous rail power after every state change and feed
  the exact :class:`~repro.hw.sensor.EnergyAccountant`;
- expose a ``rail_powers`` read function for the sampled
  :class:`~repro.hw.sensor.PowerSensor`.

The re-timing step is the heart of the simulation: it is what makes
DVFS interference between concurrent tasks (paper section 5.3) a real,
measurable effect rather than an assumption.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.exec_model.activity import Activity
from repro.exec_model.contention import ContentionModel
from repro.exec_model.kernels import KernelSpec
from repro.exec_model.timing import MIN_DURATION_S, GroundTruthTiming, TimingBreakdown
from repro.hw.core import Core
from repro.hw.platform import Platform
from repro.hw.sensor import EnergyAccountant
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

#: Completion events run after DVFS applies (-10) at equal timestamps
#: but before ordinary runtime events (0), so dependents woken by a
#: completion see consistent core states.
COMPLETION_PRIORITY = -5

#: Sentinel for "integrate energy up to now, change no rail" updates.
_NO_POWERS: dict = {}


class ExecutionEngine:
    """Owns all running activities and the power/energy bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        rng: RngStreams,
        accountant: Optional[EnergyAccountant] = None,
        tracer: Optional[Tracer] = None,
        duration_noise_sigma: float = 0.02,
        cache_size: int = 8192,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.timing = GroundTruthTiming(platform.memory, cache_size=cache_size)
        self.contention = ContentionModel(platform.memory)
        self.accountant = accountant if accountant is not None else EnergyAccountant()
        self._std_rails = self.accountant.rails == ("cpu", "mem")
        self.tracer = tracer
        self.duration_noise_sigma = float(duration_noise_sigma)
        self._noise_rng = rng.stream("exec-noise")
        # Duration noise is drawn in blocks: a vectorised lognormal
        # consumes the bitstream exactly like repeated scalar draws, so
        # the per-activity values are bit-identical — the engine is the
        # stream's only consumer, making the read-ahead invisible.
        self._noise_buf: Any = None
        self._noise_i = 0
        self._activities: list[Activity] = []
        # Hot-path caches (``cache_size=0`` disables every one; cached
        # values are always bit-identical to what recomputation would
        # produce, which the determinism tests pin down).  See
        # docs/architecture.md, "Performance".
        self._cache_size = int(cache_size)
        #: With caches on, a state change only *marks* the engine dirty;
        #: the full re-timing pass runs lazily (before the clock can
        #:  advance, any completion event fires, or rail power is read) —
        #: collapsing the redundant passes of same-timestamp start
        #: bursts into one.  See ``_flush_if_needed``.
        self._defer = self._cache_size > 0
        #: Partition-share breakdowns keyed like the timing memo.
        self._part_cache: dict = {}
        #: Per-cluster power: cluster_id -> ((freq, loads), watts).
        self._cluster_power_cache: dict = {}
        #: Memory-rail power: ((freq, achieved_bw), watts).
        self._mem_power_cache: Optional[tuple] = None
        #: Re-timing input signature of the last full pass (skip
        #: duplicate passes at the same instant with identical state).
        self._retime_sig: Optional[tuple] = None
        #: Callback ``fn(activity)`` invoked when a partition finishes.
        self.on_complete: Optional[Callable[[Activity], None]] = None
        #: Callbacks invoked (no args) after every global re-timing —
        #: i.e. whenever frequencies or the running set changed.  Used
        #: by analysis instrumentation (energy attribution).
        self.on_state_change: list[Callable[[], None]] = []
        # Re-time on any frequency change.
        for cl in platform.clusters:
            cl.on_freq_change.append(lambda _cl: self._state_changed())
        platform.memory.on_freq_change.append(lambda _m: self._state_changed())
        # Initialise rail powers for the all-idle platform.
        self.accountant.update(sim.now, self.rail_powers())

    # ------------------------------------------------------------------
    # Activity lifecycle
    # ------------------------------------------------------------------
    @property
    def activities(self) -> tuple[Activity, ...]:
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        return tuple(self._activities)

    def busy_core_count(self) -> int:
        """Instantaneous number of working cores (the paper's task
        concurrency signal for idle-power attribution)."""
        return len(self._activities)

    def start_activity(
        self,
        kernel: KernelSpec,
        core: Core,
        n_cores_total: int = 1,
        payload: Any = None,
    ) -> Activity:
        """Begin executing one partition of ``kernel`` on ``core``."""
        if core.busy:
            raise SchedulingError(f"core {core.core_id} is already busy")
        noise = 1.0
        if self.duration_noise_sigma > 0:
            buf = self._noise_buf
            if buf is None or self._noise_i >= len(buf):
                buf = self._noise_buf = self._noise_rng.lognormal(
                    mean=0.0, sigma=self.duration_noise_sigma, size=256
                )
                self._noise_i = 0
            noise = float(buf[self._noise_i])
            self._noise_i += 1
        act = Activity(kernel, core, n_cores_total, noise, payload, self.sim.now)
        core.busy = True
        core.current_activity = act
        self._activities.append(act)
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "activity-start", kernel=kernel.name, core=core.core_id
            )
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "task_started", self.sim.now,
                kernel=kernel.name, core=core.core_id,
            )
        self._state_changed()
        return act

    def _complete(self, act: Activity) -> None:
        if act not in self._activities:  # cancelled/stale event
            return
        act.advance_to(self.sim.now)
        self._activities.remove(act)
        act.core.busy = False
        act.core.current_activity = None
        act.completion_event = None
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "activity-end",
                kernel=act.kernel.name,
                core=act.core.core_id,
                elapsed=self.sim.now - act.started_at,
            )
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "task_finished", self.sim.now,
                kernel=act.kernel.name, core=act.core.core_id,
                elapsed=self.sim.now - act.started_at,
            )
        self._state_changed()
        if self.on_complete is not None:
            self.on_complete(act)

    def abort_all(self) -> None:
        """Cancel every running activity (used by tests/teardown)."""
        for act in list(self._activities):
            if act.completion_event is not None:
                act.completion_event.cancel()
            act.core.busy = False
            act.core.current_activity = None
        self._activities.clear()
        self._state_changed()

    # ------------------------------------------------------------------
    # Re-timing
    # ------------------------------------------------------------------
    def _breakdown_for(self, act: Activity) -> TimingBreakdown:
        """Partition timing: wall time equals the whole task's wall time
        on ``n_cores_total`` cores; bandwidth demand is the per-core
        share (traffic is conserved across partitions)."""
        kernel = act.kernel
        core_type = act.core.core_type
        f_c = act.core.freq
        f_m = self.platform.memory.freq
        cache = self._part_cache
        key = (id(kernel), id(core_type), act.n_cores_total, f_c, f_m)
        hit = cache.get(key)
        if hit is not None and hit[0] is kernel:
            return hit[1]
        b = self.timing.breakdown(kernel, core_type, act.n_cores_total, f_c, f_m)
        part = TimingBreakdown(
            t_comp=b.t_comp, t_mem=b.t_mem, bw_demand=b.bw_demand / act.n_cores_total
        )
        if self._cache_size > 0:
            if len(cache) >= self._cache_size:  # FIFO eviction
                cache.pop(next(iter(cache)))
            cache[key] = (kernel, part)
        return part

    def _state_changed(self) -> None:
        """The running set, a frequency or a stall deadline changed.

        With caches disabled this re-times everything immediately (the
        seed behaviour).  Otherwise the pass is deferred: bursts of
        same-timestamp changes (a moldable task's partitions start via
        separate equal-time events) each re-time the whole running set,
        and every pass but the last is invisible — its completion events
        are cancelled by the next pass, its power refresh happens at
        ``dt == 0``.  Deferral runs only the last one.  The energy
        integral up to ``now`` is closed here (exactly as the first
        eager pass would) so mid-burst accountant reads stay exact.
        """
        if not self._defer:
            self._retime()
            return
        now = self.sim._now
        acc = self.accountant
        if acc._last_t < now:
            acc.integrate_to(now)
        self.sim.flush_fn = self._flush_if_needed

    def _flush_if_needed(
        self, head_time: Optional[float], head_priority: int
    ) -> bool:
        """``Simulator.flush_fn``: run the deferred re-timing pass unless
        the head event provably pops first in the eager schedule too.

        Deferring past the head is sound only when the head fires at the
        current instant AND no event the pass would (re)schedule could
        beat it: completion events are the only priority-(-5) events, so
        a lower-priority head (DVFS apply) always wins, an equal-priority
        head is a stale completion the pass must cancel first, and a
        higher-priority head (runtime/fetch events) wins unless a
        re-timed completion lands at ``now`` itself — excluded by the
        remaining-time lower bound ``frac * MIN_DURATION_S``.
        """
        now = self.sim._now
        if head_time is not None and head_time == now:
            if head_priority < COMPLETION_PRIORITY:
                return False
            if head_priority > COMPLETION_PRIORITY:
                md = MIN_DURATION_S
                for act in self._activities:
                    frac = act.frac_remaining
                    dt = now - act.last_update
                    if dt > 0 and act.rate > 0:
                        frac = frac - dt * act.rate
                        if frac < 0.0:
                            frac = 0.0
                    if not (now + frac * md > now):
                        break
                else:
                    return False
        self._retime()
        return True

    def _retime(self) -> None:
        """Advance progress, recompute contention, reschedule deadlines,
        refresh rail power."""
        self.sim.flush_fn = None
        now = self.sim._now
        activities = self._activities
        mem_freq = self.platform.memory._freq
        caching = self._cache_size > 0
        # Everything the re-timing below reads, beyond per-activity
        # constants: the clock, both frequency domains, the running set
        # and each activity's stall deadline.  If none of it moved
        # since the last full pass, the recomputed rates, deadlines and
        # already-scheduled completion events are all still exact —
        # only the power/energy refresh and instrumentation run.  (Only
        # completion events live at their tie-break priority, so
        # keeping the existing ones preserves event order.)
        sig = (
            now,
            mem_freq,
            tuple(
                [(id(a), a.core.cluster._freq, a.stall_until) for a in activities]
            ),
        )
        if caching and sig == self._retime_sig:
            cpu, mem = self._rail_powers_pair()
            self._acc_update(now, cpu, mem)
            for fn in self.on_state_change:
                fn()
            return
        # Fused per-activity pass: progress advance (mirrors
        # Activity.advance_to) plus partition breakdown, memoised on the
        # activity itself — kernel, core type and partition count are
        # fixed for its lifetime, so the breakdown depends only on the
        # ``(f_C, f_M)`` pair (same values _breakdown_for would return).
        timing_breakdown = self.timing.breakdown
        breakdowns = []
        append = breakdowns.append
        total_demand = 0.0
        for act in activities:
            dt = now - act.last_update
            if dt > 0 and act.rate > 0:
                frac = act.frac_remaining - dt * act.rate
                act.frac_remaining = frac if frac > 0.0 else 0.0
            act.last_update = now
            key = (act.core.cluster._freq, mem_freq)
            if key == act.bd_key:
                b = act.bd
            else:
                full = timing_breakdown(
                    act.kernel, act.core.core_type, act.n_cores_total, key[0], mem_freq
                )
                b = TimingBreakdown(
                    t_comp=full.t_comp,
                    t_mem=full.t_mem,
                    bw_demand=full.bw_demand / act.n_cores_total,
                )
                if caching:
                    act.bd_key = key
                    act.bd = b
            append(b)
            total_demand += b.bw_demand
        # Contention, inlined from ContentionModel.factor_from_total /
        # achieved_from_total (cap == memory.bandwidth_capacity).
        cap = self.platform.memory.bw_cap_per_ghz * mem_freq
        if cap <= 0 or total_demand <= cap:
            factor = 1.0
        else:
            factor = total_demand / cap
        achieved_total = min(total_demand, cap) if cap > 0 else 0.0
        schedule = self.sim.schedule
        md = MIN_DURATION_S
        for act, b in zip(activities, breakdowns):
            stretched_mem = b.t_mem * factor
            stretched = b.t_comp + stretched_mem
            duration_full = stretched * act.noise
            if duration_full < md:
                duration_full = md
            stall_left = act.stall_until - now
            if stall_left > 0.0:
                act.rate = 0.0
            else:
                stall_left = 0.0
                act.rate = 1.0 / duration_full
            act.mb_inst = stretched_mem / stretched if stretched > 0 else 0.0
            if total_demand > 0:
                act.bw_achieved = achieved_total * (b.bw_demand / total_demand)
            else:
                act.bw_achieved = 0.0
            remaining = stall_left + act.frac_remaining * duration_full
            if act.completion_event is not None:
                act.completion_event.cancel()
            act.completion_event = schedule(
                remaining, self._complete, act, priority=COMPLETION_PRIORITY
            )
        self._retime_sig = sig
        cpu, mem = self._rail_powers_pair()
        self._acc_update(now, cpu, mem)
        for fn in self.on_state_change:
            fn()

    def stall_activities(self, cores=None, duration: float = 0.0) -> None:
        """Freeze progress of the given cores' activities (``None`` =
        every running activity) for ``duration`` seconds — the
        execution cost of a DVFS transition on a shared domain."""
        if duration <= 0:
            return
        until = self.sim.now + duration
        affected = False
        core_set = set(cores) if cores is not None else None
        for act in self._activities:
            if core_set is None or act.core in core_set:
                act.stall_until = max(act.stall_until, until)
                affected = True
        if affected:
            # Re-time now (rates drop to zero) and again at stall end.
            self._state_changed()
            self.sim.schedule(duration, self._state_changed)

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def rail_powers(self) -> dict[str, float]:
        """Instantaneous true power on the CPU and memory rails (W).

        Per-cluster power is cached against ``(freq, loads)`` — the
        full input of ``cluster_power`` — so unchanged clusters cost a
        key comparison instead of a model evaluation.  Keys are
        self-validating: state that bypasses the freq-change callbacks
        (e.g. fault-injected core hot-unplug flipping ``online``)
        changes the loads tuple and simply misses.
        """
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        cpu, mem = self._rail_powers_pair()
        return {"cpu": cpu, "mem": mem}

    def _acc_update(self, now: float, cpu: float, mem: float) -> None:
        """Feed the accountant without building a rail mapping (falls
        back to the generic path for custom rail sets)."""
        if self._std_rails:
            self.accountant.update_pair(now, cpu, mem)
        else:
            self.accountant.update(now, {"cpu": cpu, "mem": mem})

    def _rail_powers_pair(self) -> tuple[float, float]:
        """(cpu_watts, mem_watts) with no flush and no dict — the
        internal form behind :meth:`rail_powers`."""
        pm = self.platform.power_model
        caching = self._cache_size > 0
        cluster_cache = self._cluster_power_cache
        cpu = 0.0
        for cl in self.platform.clusters:
            # Hot-unplugged *and* drained cores contribute nothing (no
            # leakage); an offline core still finishing its activity
            # keeps burning power (grace semantics).
            loads: list[Optional[float]] = [
                act.mb_inst if act is not None else None
                for core in cl.cores
                if (act := core.current_activity) is not None or core.online
            ]
            key = (cl._freq, tuple(loads))
            hit = cluster_cache.get(cl.cluster_id)
            if hit is not None and hit[0] == key:
                cpu += hit[1]
                continue
            p = pm.cluster_power(cl, loads)
            if caching:
                cluster_cache[cl.cluster_id] = (key, p)
            cpu += p
        achieved = 0.0
        for a in self._activities:
            achieved += a.bw_achieved
        mkey = (self.platform.memory._freq, achieved)
        mhit = self._mem_power_cache
        if mhit is not None and mhit[0] == mkey:
            mem = mhit[1]
        else:
            mem = pm.memory_power(self.platform.memory, achieved)
            if caching:
                self._mem_power_cache = (mkey, mem)
        return cpu, mem

    def finalize(self) -> None:
        """Close the energy integration at the current time."""
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        if self._activities:
            raise SimulationError(
                f"finalize with {len(self._activities)} activities still running"
            )
        self.accountant.finalize(self.sim.now)
