"""Execution engine: runs activities on cores under changing state.

Responsibilities:

- start/complete activities (task partitions) on cores;
- re-time every running activity whenever a cluster frequency, the
  memory frequency, or the set of running activities changes (the
  contention factor is global, so any change can shift every deadline);
- evaluate instantaneous rail power after every state change and feed
  the exact :class:`~repro.hw.sensor.EnergyAccountant`;
- expose a ``rail_powers`` read function for the sampled
  :class:`~repro.hw.sensor.PowerSensor`.

The re-timing step is the heart of the simulation: it is what makes
DVFS interference between concurrent tasks (paper section 5.3) a real,
measurable effect rather than an assumption.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.exec_model.activity import Activity
from repro.exec_model.contention import ContentionModel
from repro.exec_model.kernels import KernelSpec
from repro.exec_model.timing import MIN_DURATION_S, GroundTruthTiming, TimingBreakdown
from repro.hw.core import Core
from repro.hw.platform import Platform
from repro.hw.sensor import EnergyAccountant
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

#: Completion events run after DVFS applies (-10) at equal timestamps
#: but before ordinary runtime events (0), so dependents woken by a
#: completion see consistent core states.
COMPLETION_PRIORITY = -5

#: Sentinel for "integrate energy up to now, change no rail" updates.
_NO_POWERS: dict = {}


class ExecutionEngine:
    """Owns all running activities and the power/energy bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        platform: Platform,
        rng: RngStreams,
        accountant: Optional[EnergyAccountant] = None,
        tracer: Optional[Tracer] = None,
        duration_noise_sigma: float = 0.02,
        cache_size: int = 8192,
        shared_breakdowns: Optional[dict] = None,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.timing = GroundTruthTiming(platform.memory, cache_size=cache_size)
        self.contention = ContentionModel(platform.memory)
        self.accountant = accountant if accountant is not None else EnergyAccountant()
        self._std_rails = self.accountant.rails == ("cpu", "mem")
        self.tracer = tracer
        self.duration_noise_sigma = float(duration_noise_sigma)
        self._noise_rng = rng.stream("exec-noise")
        # Duration noise is drawn in blocks: a vectorised lognormal
        # consumes the bitstream exactly like repeated scalar draws, so
        # the per-activity values are bit-identical — the engine is the
        # stream's only consumer, making the read-ahead invisible.
        self._noise_buf: Any = None
        self._noise_i = 0
        self._activities: list[Activity] = []
        # Hot-path caches (``cache_size=0`` disables every one; cached
        # values are always bit-identical to what recomputation would
        # produce, which the determinism tests pin down).  See
        # docs/architecture.md, "Performance".
        self._cache_size = int(cache_size)
        #: A state change only *marks* the engine dirty; the full
        #: re-timing pass runs lazily (before the clock can advance,
        #: any completion event fires, or rail power is read) —
        #: collapsing the redundant passes of same-timestamp start
        #: bursts into one.  Deferral is independent of ``cache_size``:
        #: both cache paths must run the *same* pass sequence, because
        #: the incremental power/demand sums accumulate rounding in
        #: pass order and transient mid-burst passes would leave the
        #: eager path with different last-bit sums.  See
        #: ``_flush_if_needed``.
        self._defer = True
        #: Partition-share breakdowns keyed like the timing memo.
        self._part_cache: dict = {}
        #: Optional cross-run breakdown memo (sweep fork path; see
        #: :class:`repro.sweep.fork.ForkCache`).  Consulted only on a
        #: ``_part_cache`` miss, keyed by core-type *name* because core
        #: objects are rebuilt per run; ``None`` costs nothing on the
        #: hot path.  Disabled alongside the other caches at
        #: ``cache_size=0`` so the reference path stays pure.
        self._shared_bd = shared_breakdowns if cache_size > 0 else None
        #: Per-cluster incremental power inputs: cluster_id ->
        #: ``[n_busy, act_sum]`` where ``act_sum`` is the sum of every
        #: running activity's dynamic-activity factor
        #: ``(1 - mb) + mb * stall_activity``.  Maintained at activity
        #: start/finish/re-materialisation (both cache paths run the
        #: same updates, so they stay bit-identical), and resynced to
        #: 0.0 whenever the cluster drains — the same drift-bounding
        #: discipline as ``_total_demand``.  With these sums the rail
        #: power is closed-form arithmetic: no per-core scan, no cache.
        self._cl_stat: dict[int, list] = {
            cl.cluster_id: [0, 0.0] for cl in platform.clusters
        }
        # Power-model parameters, hoisted once (immutable for the run).
        pmp = platform.power_model.params
        self._k_uncore = pmp.k_uncore
        self._k_idle_clock = pmp.k_idle_clock
        self._mem_idle_base = pmp.mem_idle_base
        self._mem_idle_per_ghz = pmp.mem_idle_per_ghz
        self._mem_e_per_gb = pmp.mem_energy_per_gb
        self._k_mem_ctrl = pmp.k_mem_ctrl
        #: Contention factor of the last re-timing pass.  After every
        #: pass each activity's materialised state reflects this factor
        #: (a factor change re-materialises *all* activities), which is
        #: what makes the dirty-list scheme in ``_retime`` sound.
        self._prev_factor: float = 1.0
        #: Running sum of every activity's ``bw_cur`` — the contention
        #: model's total demand, maintained incrementally so a clean
        #: re-timing pass never loops the running set.  Resynced to 0.0
        #: whenever the set drains (bounds float drift to one busy
        #: phase; the drifted value is used consistently everywhere, so
        #: results stay deterministic).
        self._total_demand = 0.0
        #: Activities queued for re-materialisation (insertion order —
        #: never a set, whose address-based iteration order would break
        #: cross-process bit-identity).
        self._dirty: list[Activity] = []
        #: Callback ``fn(activity)`` invoked when a partition finishes.
        self.on_complete: Optional[Callable[[Activity], None]] = None
        #: Callbacks invoked (no args) after every global re-timing —
        #: i.e. whenever frequencies or the running set changed.  Used
        #: by analysis instrumentation (energy attribution).
        self.on_state_change: list[Callable[[], None]] = []
        # Re-time on any frequency change (the affected activities'
        # breakdowns move, so they are queued for re-materialisation).
        for cl in platform.clusters:
            cl.on_freq_change.append(self._on_cluster_freq)
        platform.memory.on_freq_change.append(self._on_mem_freq)
        # Initialise rail powers for the all-idle platform.
        self.accountant.update(sim.now, self.rail_powers())

    # ------------------------------------------------------------------
    # Activity lifecycle
    # ------------------------------------------------------------------
    @property
    def activities(self) -> tuple[Activity, ...]:
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        return tuple(self._activities)

    def busy_core_count(self) -> int:
        """Instantaneous number of working cores (the paper's task
        concurrency signal for idle-power attribution)."""
        return len(self._activities)

    def start_activity(
        self,
        kernel: KernelSpec,
        core: Core,
        n_cores_total: int = 1,
        payload: Any = None,
    ) -> Activity:
        """Begin executing one partition of ``kernel`` on ``core``."""
        if core.busy:
            raise SchedulingError(f"core {core.core_id} is already busy")
        noise = 1.0
        if self.duration_noise_sigma > 0:
            buf = self._noise_buf
            if buf is None or self._noise_i >= len(buf):
                buf = self._noise_buf = self._noise_rng.lognormal(
                    mean=0.0, sigma=self.duration_noise_sigma, size=256
                )
                self._noise_i = 0
            noise = float(buf[self._noise_i])
            self._noise_i += 1
        act = Activity(kernel, core, n_cores_total, noise, payload, self.sim.now)
        core.busy = True
        core.current_activity = act
        self._activities.append(act)
        act.dirty = True
        self._dirty.append(act)
        self._cl_stat[core.cluster.cluster_id][0] += 1
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "activity-start", kernel=kernel.name, core=core.core_id
            )
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "task_started", self.sim.now,
                kernel=kernel.name, core=core.core_id,
            )
        # _state_changed() inlined (hot path; deferral is unconditional).
        now = self.sim._now
        acc = self.accountant
        if acc._last_t < now:
            acc.integrate_to(now)
        self.sim.flush_fn = self._flush_if_needed
        return act

    def _complete(self, act: Activity) -> None:
        if not act.live:  # cancelled/stale event
            return
        act.advance_to(self.sim.now)
        self._activities.remove(act)
        act.live = False
        act.dirty = False
        self._total_demand -= act.bw_cur
        if not self._activities:
            self._total_demand = 0.0  # resync the running sum
        core = act.core
        cluster = core.cluster
        core.busy = False
        core.current_activity = None
        st = self._cl_stat[cluster.cluster_id]
        st[0] -= 1
        if st[0] == 0:
            st[1] = 0.0  # resync the activity sum
        else:
            st[1] -= act.pa
        if not core._online:  # drained after a hot-unplug (grace end)
            cluster._n_draining -= 1
        act.completion_event = None
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now,
                "activity-end",
                kernel=act.kernel.name,
                core=act.core.core_id,
                elapsed=self.sim.now - act.started_at,
            )
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "task_finished", self.sim.now,
                kernel=act.kernel.name, core=act.core.core_id,
                elapsed=self.sim.now - act.started_at,
            )
        # _state_changed() inlined (hot path; deferral is unconditional).
        now = self.sim._now
        acc = self.accountant
        if acc._last_t < now:
            acc.integrate_to(now)
        self.sim.flush_fn = self._flush_if_needed
        if self.on_complete is not None:
            self.on_complete(act)

    def abort_all(self) -> None:
        """Cancel every running activity (used by tests/teardown)."""
        for act in list(self._activities):
            if act.completion_event is not None:
                act.completion_event.cancel()
            act.live = False
            act.dirty = False
            act.core.busy = False
            act.core.current_activity = None
            if not act.core._online:
                act.core.cluster._n_draining -= 1
        self._activities.clear()
        self._dirty.clear()
        self._total_demand = 0.0
        for st in self._cl_stat.values():
            st[0] = 0
            st[1] = 0.0
        self._state_changed()

    # ------------------------------------------------------------------
    # Change notifications
    # ------------------------------------------------------------------
    def _on_cluster_freq(self, cl) -> None:
        dirty = self._dirty
        for act in self._activities:
            if act.core.cluster is cl and not act.dirty:
                act.dirty = True
                dirty.append(act)
        self._state_changed()

    def _on_mem_freq(self, _mem) -> None:
        dirty = self._dirty
        for act in self._activities:
            if not act.dirty:
                act.dirty = True
                dirty.append(act)
        self._state_changed()

    # ------------------------------------------------------------------
    # Re-timing
    # ------------------------------------------------------------------
    def _breakdown_for(self, act: Activity) -> TimingBreakdown:
        """Partition timing: wall time equals the whole task's wall time
        on ``n_cores_total`` cores; bandwidth demand is the per-core
        share (traffic is conserved across partitions)."""
        kernel = act.kernel
        core_type = act.core.core_type
        f_c = act.core.freq
        f_m = self.platform.memory.freq
        cache = self._part_cache
        key = (id(kernel), id(core_type), act.n_cores_total, f_c, f_m)
        hit = cache.get(key)
        if hit is not None and hit[0] is kernel:
            return hit[1]
        b = self.timing.breakdown(kernel, core_type, act.n_cores_total, f_c, f_m)
        part = TimingBreakdown(
            t_comp=b.t_comp, t_mem=b.t_mem, bw_demand=b.bw_demand / act.n_cores_total
        )
        if self._cache_size > 0:
            if len(cache) >= self._cache_size:  # FIFO eviction
                cache.pop(next(iter(cache)))
            cache[key] = (kernel, part)
        return part

    def _state_changed(self) -> None:
        """The running set, a frequency or a stall deadline changed.

        With caches disabled this re-times everything immediately (the
        seed behaviour).  Otherwise the pass is deferred: bursts of
        same-timestamp changes (a moldable task's partitions start via
        separate equal-time events) each re-time the whole running set,
        and every pass but the last is invisible — its completion events
        are cancelled by the next pass, its power refresh happens at
        ``dt == 0``.  Deferral runs only the last one.  The energy
        integral up to ``now`` is closed here (exactly as the first
        eager pass would) so mid-burst accountant reads stay exact.
        """
        if not self._defer:
            self._retime()
            return
        now = self.sim._now
        acc = self.accountant
        if acc._last_t < now:
            acc.integrate_to(now)
        self.sim.flush_fn = self._flush_if_needed

    def _flush_if_needed(
        self, head_time: Optional[float], head_priority: int
    ) -> bool:
        """``Simulator.flush_fn``: run the deferred re-timing pass unless
        the head event provably pops first in the eager schedule too.

        Deferring past the head is sound only when the head fires at the
        current instant AND no event the pass would (re)schedule could
        beat it: completion events are the only priority-(-5) events, so
        a lower-priority head (DVFS apply) always wins, an equal-priority
        head is a stale completion the pass must cancel first, and a
        higher-priority head (runtime/fetch events) wins unless a
        re-timed completion lands at ``now`` itself — excluded by the
        remaining-time lower bound ``frac * MIN_DURATION_S``.
        """
        now = self.sim._now
        if head_time is not None and head_time == now:
            if head_priority < COMPLETION_PRIORITY:
                return False
            if head_priority > COMPLETION_PRIORITY:
                md = MIN_DURATION_S
                for act in self._activities:
                    frac = act.frac_remaining
                    dt = now - act.last_update
                    if dt > 0 and act.rate > 0:
                        frac = frac - dt * act.rate
                        if frac < 0.0:
                            frac = 0.0
                    if not (now + frac * md > now):
                        break
                else:
                    return False
        self._retime()
        return True

    def _partition_breakdown(self, act: Activity, mem_freq: float, key: tuple):
        """Fetch/recompute ``act``'s partition breakdown for ``key`` and
        stamp ``bd_key`` (the breakdown-unchanged marker, kept in both
        cache paths; with caches off the values are recomputed every
        pass — the reference behaviour — and equal by determinism)."""
        if self._cache_size > 0:
            if key == act.bd_key:
                return act.bd
            # Engine-level memo: activities of the same (kernel, core
            # type, width) at the same frequencies share one partition
            # breakdown — a workload replays a handful of kernels
            # thousands of times, so this hits far more than the
            # per-activity ``bd_key`` marker alone.
            cache = self._part_cache
            ckey = (
                id(act.kernel), id(act.core.core_type),
                act.n_cores_total, key[0], mem_freq,
            )
            hit = cache.get(ckey)
            if hit is not None and hit[0] is act.kernel:
                b = hit[1]
            else:
                b = None
                shared = self._shared_bd
                skey = None
                if shared is not None:
                    # Cross-run memo (sweep fork path): breakdowns are
                    # pure in (kernel, core type, width, f_C, f_M), so a
                    # neighbouring grid point's value is reusable as-is.
                    skey = (
                        id(act.kernel), act.core.core_type.name,
                        act.n_cores_total, key[0], mem_freq,
                    )
                    shit = shared.get(skey)
                    if shit is not None and shit[0] is act.kernel:
                        b = shit[1]
                if b is None:
                    full = self.timing.breakdown(
                        act.kernel, act.core.core_type, act.n_cores_total,
                        key[0], mem_freq,
                    )
                    b = TimingBreakdown(
                        t_comp=full.t_comp,
                        t_mem=full.t_mem,
                        bw_demand=full.bw_demand / act.n_cores_total,
                    )
                    if shared is not None:
                        shared[skey] = (act.kernel, b)
                if len(cache) >= self._cache_size:  # FIFO eviction
                    cache.pop(next(iter(cache)))
                cache[ckey] = (act.kernel, b)
            act.bd = b
            act.bd_key = key
            return b
        full = self.timing.breakdown(
            act.kernel, act.core.core_type, act.n_cores_total,
            key[0], mem_freq,
        )
        b = TimingBreakdown(
            t_comp=full.t_comp,
            t_mem=full.t_mem,
            bw_demand=full.bw_demand / act.n_cores_total,
        )
        act.bd_key = key
        return b

    def _retime(self) -> None:
        """Re-materialise the queued (dirty) activities, recompute
        contention, refresh rail power.

        The pass is incremental: every materialised per-activity
        quantity (rate, instantaneous MB, achieved bandwidth, deadline)
        is a pure function of the partition breakdown (fixed by the
        ``(f_C, f_M)`` pair), the global contention factor and the
        stall state, so only activities whose inputs moved — queued on
        ``self._dirty`` by start/stall/frequency notifications — are
        touched.  Clean activities keep their scheduled completion
        events and their lazily stale ``frac_remaining`` /
        ``last_update`` pair (exactly what :meth:`Activity.advance_to`
        later consumes).  The contention total is a running sum
        maintained from per-activity deltas, so a pass with an empty
        queue is O(1) plus the power refresh.  A factor change
        re-materialises every activity, which keeps the clean-skip
        sound against the *previous pass's* factor.  Both the cached
        and the ``cache_size=0`` reference paths take the same
        decisions, so observable state stays bit-identical between
        them.
        """
        self.sim.flush_fn = None
        now = self.sim._now
        activities = self._activities
        mem = self.platform.memory
        mem_freq = mem._freq
        total = self._total_demand
        pairs = ()
        if self._dirty:
            dirty = self._dirty
            self._dirty = []
            pairs = []
            for act in dirty:
                if not act.dirty:  # completed/aborted before the pass
                    continue
                act.dirty = False
                key = (act.core.cluster._freq, mem_freq)
                b = self._partition_breakdown(act, mem_freq, key)
                bw = b.bw_demand
                old = act.bw_cur
                if bw != old:
                    total = total - old + bw
                    act.bw_cur = bw
                pairs.append((act, b))
            self._total_demand = total
        # Contention, inlined from ContentionModel.factor_from_total /
        # achieved_from_total (cap == memory.bandwidth_capacity).
        cap = mem.bw_cap_per_ghz * mem_freq
        if cap <= 0 or total <= cap:
            factor = 1.0
            congested = False
        else:
            factor = total / cap
            congested = True
        if factor != self._prev_factor:
            self._prev_factor = factor
            # Contention moved: every activity's deadline moved.
            pairs = [
                (act, self._partition_breakdown(
                    act, mem_freq, (act.core.cluster._freq, mem_freq)
                ))
                for act in activities
            ]
        if pairs:
            schedule = self.sim.schedule
            md = MIN_DURATION_S
            cl_stat = self._cl_stat
            # Each achieved bandwidth is its demand share of the
            # saturated capacity — ``demand * (cap / total) == demand /
            # factor`` — so it is local to ``(breakdown, factor)`` like
            # every other materialised quantity.
            for act, b in pairs:
                dt = now - act.last_update
                if dt > 0 and act.rate > 0:
                    frac = act.frac_remaining - dt * act.rate
                    act.frac_remaining = frac if frac > 0.0 else 0.0
                act.last_update = now
                stretched_mem = b.t_mem * factor
                stretched = b.t_comp + stretched_mem
                duration_full = stretched * act.noise
                if duration_full < md:
                    duration_full = md
                stall_left = act.stall_until - now
                if stall_left > 0.0:
                    act.rate = 0.0
                else:
                    stall_left = 0.0
                    act.rate = 1.0 / duration_full
                mb = stretched_mem / stretched if stretched > 0 else 0.0
                act.mb_inst = mb
                cluster = act.core.cluster
                a = (1.0 - mb) + mb * cluster.core_type.stall_activity
                if a != act.pa:
                    st = cl_stat[cluster.cluster_id]
                    st[1] += a - act.pa
                    act.pa = a
                if cap <= 0:
                    act.bw_achieved = 0.0
                elif congested:
                    act.bw_achieved = b.bw_demand / factor
                else:
                    act.bw_achieved = b.bw_demand
                remaining = stall_left + act.frac_remaining * duration_full
                ev = act.completion_event
                if ev is not None:
                    # ``schedule`` computes the same ``now + remaining``
                    # sum, so an unchanged deadline (compute-bound
                    # kernels under contention-only passes) keeps the
                    # already-queued event instead of churning the heap.
                    if ev.time == now + remaining:
                        continue
                    ev.cancel()
                act.completion_event = schedule(
                    remaining, self._complete, act, priority=COMPLETION_PRIORITY
                )
        cpu, memw = self._rail_powers_pair()
        self._acc_update(now, cpu, memw)
        for fn in self.on_state_change:
            fn()

    def stall_activities(self, cores=None, duration: float = 0.0) -> None:
        """Freeze progress of the given cores' activities (``None`` =
        every running activity) for ``duration`` seconds — the
        execution cost of a DVFS transition on a shared domain."""
        if duration <= 0:
            return
        until = self.sim.now + duration
        affected: list[Activity] = []
        dirty = self._dirty
        core_set = set(cores) if cores is not None else None
        for act in self._activities:
            if core_set is None or act.core in core_set:
                act.stall_until = max(act.stall_until, until)
                if not act.dirty:
                    act.dirty = True
                    dirty.append(act)
                affected.append(act)
        if affected:
            # Re-time now (rates drop to zero) and again at stall end.
            self._state_changed()
            self.sim.schedule(duration, self._stall_end, tuple(affected))

    def _stall_end(self, acts: tuple) -> None:
        """A stall window closed: re-queue its survivors (their rates
        come back up) and re-time."""
        dirty = self._dirty
        for act in acts:
            if act.live and not act.dirty:
                act.dirty = True
                dirty.append(act)
        self._state_changed()

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def rail_powers(self) -> dict[str, float]:
        """Instantaneous true power on the CPU and memory rails (W).

        Per-cluster power is cached against ``(freq, loads)`` — the
        full input of ``cluster_power`` — so unchanged clusters cost a
        key comparison instead of a model evaluation.  Keys are
        self-validating: state that bypasses the freq-change callbacks
        (e.g. fault-injected core hot-unplug flipping ``online``)
        changes the loads tuple and simply misses.
        """
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        cpu, mem = self._rail_powers_pair()
        return {"cpu": cpu, "mem": mem}

    def _acc_update(self, now: float, cpu: float, mem: float) -> None:
        """Feed the accountant without building a rail mapping (falls
        back to the generic path for custom rail sets)."""
        if self._std_rails:
            self.accountant.update_pair(now, cpu, mem)
        else:
            self.accountant.update(now, {"cpu": cpu, "mem": mem})

    def _rail_powers_pair(self) -> tuple[float, float]:
        """(cpu_watts, mem_watts) with no flush and no dict — the
        internal form behind :meth:`rail_powers`.

        Pure arithmetic over incrementally maintained sums (see
        ``_cl_stat``): per cluster, power-relevant cores are the online
        ones plus any hot-unplugged core still draining its activity
        (grace semantics — it keeps clocking and leaking); idle-clocked
        cores are the remainder once the busy ones are subtracted.  The
        memory rail uses the closed-form achieved bandwidth: every
        activity achieves its demand (uncongested) or its demand share
        of the saturated capacity (congested, summing to the capacity),
        and nothing when the capacity is zero.
        """
        k_uncore = self._k_uncore
        k_idle_clock = self._k_idle_clock
        cl_stat = self._cl_stat
        cpu = 0.0
        for cl in self.platform.clusters:
            v = cl._volts
            f = cl._freq
            v2f = v * v * f
            ct = cl.core_type
            st = cl_stat[cl.cluster_id]
            n_busy = st[0]
            present = cl._n_online + cl._n_draining
            cpu += (
                k_uncore * v2f
                + present * (ct.k_static * v * v)
                + (present - n_busy) * (k_idle_clock * v2f)
                + ct.k_dyn * st[1] * v2f
            )
        mem_dom = self.platform.memory
        mfreq = mem_dom._freq
        total = self._total_demand
        cap = mem_dom.bw_cap_per_ghz * mfreq
        if cap <= 0.0:
            achieved = 0.0
            util = 0.0
        elif total > cap:
            achieved = cap
            util = 1.0
        else:
            achieved = total
            util = achieved / cap
        mv = mem_dom._volts
        mem = (
            self._mem_idle_base
            + self._mem_idle_per_ghz * mfreq
            + self._mem_e_per_gb * achieved
            + self._k_mem_ctrl * mv * mv * mfreq * util
        )
        return cpu, mem

    def finalize(self) -> None:
        """Close the energy integration at the current time."""
        if self.sim.flush_fn is not None:  # deferred re-timing pending
            self._retime()
        if self._activities:
            raise SimulationError(
                f"finalize with {len(self._activities)} activities still running"
            )
        self.accountant.finalize(self.sim.now)
