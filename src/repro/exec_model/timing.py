"""Ground-truth task timing.

Execution time of a (partition of a) task decomposes into compute time
and memory-stall time — the same decomposition the paper's performance
model assumes (section 4.2) — but with richer physics the learned model
must approximate:

- compute time scales with core frequency, core type (via per-kernel
  affinity) and moldable core count with sub-linear efficiency;
- memory-stall time follows a harmonic two-port model: the achievable
  stream bandwidth is limited both by the core-side issue rate
  (proportional to ``f_C``) and by the memory-side service rate
  (proportional to ``f_M``), so ``1/bw = 1/bw_core + 1/bw_mem``.  This
  yields the paper's observation that core frequency has an *indirect*
  effect on stall time (how often requests are issued) while memory
  frequency has a direct one;
- bandwidth contention between concurrent tasks stretches only the
  stall component (handled by :mod:`repro.exec_model.contention`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.exec_model.kernels import KernelSpec
from repro.hw.core import CoreType
from repro.hw.memory import MemorySystem

#: Floor on any duration so zero-work corner cases stay well-defined.
MIN_DURATION_S = 1e-9


@dataclass(frozen=True)
class TimingBreakdown:
    """Uncontended timing of one task (or partition) on a configuration."""

    t_comp: float
    t_mem: float
    #: Average bandwidth the task would consume if run alone (GB/s).
    bw_demand: float

    @property
    def total(self) -> float:
        return self.t_comp + self.t_mem

    @property
    def memory_boundness(self) -> float:
        """Ground-truth MB: fraction of time stalled on memory."""
        tot = self.total
        return self.t_mem / tot if tot > 0 else 0.0


class GroundTruthTiming:
    """Timing oracle for a memory system (core side is stateless).

    ``breakdown`` is pure in ``(kernel, core_type, n_cores, f_c, f_m)``
    — the platform constants it also reads never change after
    construction — so results are memoised.  The cache key uses object
    identity for the kernel/core-type (``KernelSpec`` holds a mapping
    proxy and is not hashable); the objects themselves are pinned in
    the cache entry so id() reuse after garbage collection can never
    alias two distinct specs.  ``cache_size=0`` disables memoisation
    (the determinism tests run both ways and require byte-identical
    results).
    """

    def __init__(self, memory: MemorySystem, cache_size: int = 8192) -> None:
        self.memory = memory
        self._cache_size = int(cache_size)
        self._cache: dict = {}

    def compute_time(
        self, kernel: KernelSpec, core_type: CoreType, n_cores: int, f_c: float
    ) -> float:
        """Compute-phase time (s) of the whole task on ``n_cores``."""
        if f_c <= 0:
            raise ConfigurationError("core frequency must be positive")
        rate = (
            core_type.giga_ops_per_ghz
            * kernel.affinity(core_type.name)
            * f_c
            * kernel.comp_scaling(n_cores)
        )
        return kernel.w_comp / rate if kernel.w_comp > 0 else 0.0

    def single_stream_bandwidth(
        self, core_type: CoreType, f_c: float, f_m: float
    ) -> float:
        """Uncontended bandwidth of one core's access stream (GB/s):
        the harmonic combination of the core-side issue rate (grows
        with ``f_c``) and the memory-side service rate (grows with
        ``f_m``) — latencies add."""
        if f_c <= 0 or f_m <= 0:
            raise ConfigurationError("frequencies must be positive")
        bw_core = core_type.stream_bw_per_ghz * f_c
        bw_mem = self.memory.stream_bw_per_ghz * f_m
        return 1.0 / (1.0 / bw_core + 1.0 / bw_mem)

    def memory_time(
        self,
        kernel: KernelSpec,
        core_type: CoreType,
        n_cores: int,
        f_c: float,
        f_m: float,
    ) -> float:
        """Uncontended memory-stall time (s) of the whole task.

        Each of the ``n_cores`` partitions streams its share of the
        traffic independently, so the wall time is the per-core share
        over the single-stream bandwidth; *aggregate* bandwidth limits
        are enforced globally by the contention model (the task's
        demand counts toward the capacity at the current ``f_M``).
        """
        if kernel.w_bytes <= 0:
            return 0.0
        bw = self.single_stream_bandwidth(core_type, f_c, f_m)
        return (kernel.w_bytes / n_cores) / bw

    def breakdown(
        self,
        kernel: KernelSpec,
        core_type: CoreType,
        n_cores: int,
        f_c: float,
        f_m: float,
    ) -> TimingBreakdown:
        """Uncontended timing split for a full task."""
        cache = self._cache
        key = (id(kernel), id(core_type), n_cores, f_c, f_m)
        hit = cache.get(key)
        if hit is not None and hit[0] is kernel and hit[1] is core_type:
            return hit[2]
        t_c = self.compute_time(kernel, core_type, n_cores, f_c)
        t_m = self.memory_time(kernel, core_type, n_cores, f_c, f_m)
        total = max(t_c + t_m, MIN_DURATION_S)
        demand = kernel.w_bytes / total if kernel.w_bytes > 0 else 0.0
        b = TimingBreakdown(t_comp=t_c, t_mem=t_m, bw_demand=demand)
        if self._cache_size > 0:
            if len(cache) >= self._cache_size:  # FIFO eviction
                cache.pop(next(iter(cache)))
            cache[key] = (kernel, core_type, b)
        return b

    def duration(
        self,
        kernel: KernelSpec,
        core_type: CoreType,
        n_cores: int,
        f_c: float,
        f_m: float,
        contention: float = 1.0,
    ) -> float:
        """Wall time (s) of the full task including a contention factor
        applied to the stall component only."""
        b = self.breakdown(kernel, core_type, n_cores, f_c, f_m)
        return max(b.t_comp + b.t_mem * max(1.0, contention), MIN_DURATION_S)

    def memory_boundness(
        self,
        kernel: KernelSpec,
        core_type: CoreType,
        n_cores: int,
        f_c: float,
        f_m: float,
    ) -> float:
        """Ground-truth MB at a configuration (for test oracles)."""
        return self.breakdown(kernel, core_type, n_cores, f_c, f_m).memory_boundness
