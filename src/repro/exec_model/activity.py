"""A running task partition with progress tracking.

Frequencies and contention change *while tasks run*; the engine models
this by tracking each running partition's remaining work fraction and
re-deriving its completion time whenever the global state changes.  A
partition of a moldable task carries ``1/N_C`` of the task's work and —
by construction of the partition timing (see
:meth:`repro.exec_model.engine.ExecutionEngine._breakdown_for`) — takes
the same wall time as the whole task would on ``N_C`` cores, so
concurrent partitions finish together when started together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.exec_model.kernels import KernelSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.sim.engine import Event


class Activity:
    """One partition of a task, executing on one core."""

    __slots__ = (
        "kernel",
        "core",
        "n_cores_total",
        "noise",
        "payload",
        "frac_remaining",
        "rate",
        "mb_inst",
        "bw_achieved",
        "stall_until",
        "last_update",
        "started_at",
        "completion_event",
        "bd_key",
        "bd",
        "live",
        "dirty",
        "bw_cur",
        "pa",
    )

    def __init__(
        self,
        kernel: KernelSpec,
        core: "Core",
        n_cores_total: int,
        noise: float,
        payload: Any,
        started_at: float,
    ) -> None:
        self.kernel = kernel
        self.core = core
        self.n_cores_total = int(n_cores_total)
        #: Multiplicative duration noise drawn once per partition.
        self.noise = float(noise)
        #: Opaque handle (the runtime's task-partition object).
        self.payload = payload
        #: Fraction of the partition's work still to do, in [0, 1].
        self.frac_remaining = 1.0
        #: Progress rate (fraction per second) under the current state.
        self.rate = 0.0
        #: Instantaneous memory-boundness under the current state
        #: (cached for power evaluation).
        self.mb_inst = 0.0
        #: Bandwidth this partition currently achieves (GB/s).
        self.bw_achieved = 0.0
        #: Progress is frozen until this simulated time (DVFS
        #: transition stalls; 0 = not stalled).
        self.stall_until = 0.0
        self.last_update = started_at
        self.started_at = started_at
        self.completion_event: Optional["Event"] = None
        #: Engine-owned breakdown memo: kernel, core and partition count
        #: are fixed for the activity's lifetime, so the partition
        #: timing depends only on ``(f_C, f_M)``.
        self.bd_key: Optional[tuple] = None
        self.bd: Any = None
        #: False once completed/aborted (stale dirty-list entries check
        #: this instead of being removed from the list).
        self.live = True
        #: Queued for re-materialisation in the engine's next re-timing
        #: pass (new activity, frequency moved under it, stall edge).
        self.dirty = False
        #: Bandwidth demand currently folded into the engine's running
        #: contention total (GB/s); updated only inside re-timing passes
        #: and on completion, so the total stays an exact running sum.
        self.bw_cur = 0.0
        #: Dynamic-activity factor ``(1 - mb) + mb * stall_activity``
        #: currently folded into the engine's per-cluster power sum;
        #: updated under the same discipline as ``bw_cur``.
        self.pa = 0.0

    def advance_to(self, now: float) -> None:
        """Consume progress between ``last_update`` and ``now`` at the
        previously cached rate."""
        dt = now - self.last_update
        if dt > 0 and self.rate > 0:
            frac = self.frac_remaining - dt * self.rate
            self.frac_remaining = frac if frac > 0.0 else 0.0
        self.last_update = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Activity({self.kernel.name} on core {self.core.core_id}, "
            f"rem={self.frac_remaining:.3f})"
        )
