"""A running task partition with progress tracking.

Frequencies and contention change *while tasks run*; the engine models
this by tracking each running partition's remaining work fraction and
re-deriving its completion time whenever the global state changes.  A
partition of a moldable task carries ``1/N_C`` of the task's work and —
by construction of the partition timing (see
:meth:`repro.exec_model.engine.ExecutionEngine._partition_breakdown`) —
takes the same wall time as the whole task would on ``N_C`` cores, so
concurrent partitions finish together when started together.

The numeric state itself lives in the engine's structure-of-arrays
store (:class:`repro.exec_model.soa.ActivityState`), indexed by the
activity's core slot; this class is the identity handle — kernel, core,
payload, completion event — plus read-only property views into the
store for external consumers (schedulers, analysis, tests).  The
engine's hot paths read and write the columns directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.exec_model.kernels import KernelSpec
from repro.exec_model.soa import ActivityState

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.sim.engine import Event


class Activity:
    """One partition of a task, executing on one core."""

    __slots__ = (
        "kernel",
        "core",
        "n_cores_total",
        "payload",
        "slot",
        "started_at",
        "completion_event",
        "bd_key",
        "bd",
        "live",
        "dirty",
        "_st",
    )

    def __init__(
        self,
        kernel: KernelSpec,
        core: "Core",
        n_cores_total: int,
        payload: Any,
        started_at: float,
        slot: int,
        st: ActivityState,
    ) -> None:
        self.kernel = kernel
        self.core = core
        self.n_cores_total = int(n_cores_total)
        #: Opaque handle (the runtime's task-partition object).
        self.payload = payload
        #: Row index into the engine's SoA store (== dense core index).
        self.slot = slot
        self.started_at = started_at
        self.completion_event: Optional["Event"] = None
        #: Engine-owned breakdown memo: kernel, core and partition count
        #: are fixed for the activity's lifetime, so the partition
        #: timing depends only on ``(f_C, f_M)``.
        self.bd_key: Optional[tuple] = None
        self.bd: Any = None
        #: False once completed/aborted (stale completion events and
        #: dirty marks check this instead of being hunted down).
        self.live = True
        #: Queued for re-materialisation in the engine's next re-timing
        #: pass (new activity, frequency moved under it, stall edge).
        self.dirty = False
        self._st = st

    # -- read-only views into the SoA store (external consumers) -------
    @property
    def frac_remaining(self) -> float:
        """Fraction of the partition's work still to do, in [0, 1]."""
        return self._st.frac[self.slot]

    @property
    def rate(self) -> float:
        """Progress rate (fraction per second) under the current state."""
        return self._st.rate[self.slot]

    @property
    def mb_inst(self) -> float:
        """Instantaneous memory-boundness under the current state."""
        return self._st.mb[self.slot]

    @property
    def bw_achieved(self) -> float:
        """Bandwidth this partition currently achieves (GB/s)."""
        return self._st.bwa[self.slot]

    @property
    def stall_until(self) -> float:
        """Progress is frozen until this simulated time (0 = not
        stalled; DVFS transition stalls set it)."""
        return self._st.stall_until[self.slot]

    @property
    def last_update(self) -> float:
        """Simulated time of the last progress consolidation."""
        return self._st.last_upd[self.slot]

    @property
    def noise(self) -> float:
        """Multiplicative duration noise drawn once per partition."""
        return self._st.noise[self.slot]

    @property
    def bw_cur(self) -> float:
        """Bandwidth demand currently folded into the engine's running
        contention total (GB/s) — the ``bw_dem`` column."""
        return self._st.bw_dem[self.slot]

    @property
    def pa(self) -> float:
        """Dynamic-activity factor currently folded into the engine's
        per-cluster power sum."""
        return self._st.pa[self.slot]

    def advance_to(self, now: float) -> None:
        """Consume progress between ``last_update`` and ``now`` at the
        previously materialised rate."""
        st = self._st
        i = self.slot
        dt = now - st.last_upd[i]
        r = st.rate[i]
        if dt > 0 and r > 0:
            frac = st.frac[i] - dt * r
            st.frac[i] = frac if frac > 0.0 else 0.0
        st.last_upd[i] = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Activity({self.kernel.name} on core {self.core.core_id}, "
            f"rem={self.frac_remaining:.3f})"
        )
