"""Kernel specifications — intrinsic, platform-independent task work.

A *kernel* in the paper's sense is a task type (e.g. SparseLU's LU0,
FWD, BDIV, BMOD); every task is an invocation of some kernel.  The
ground-truth characteristics here describe what the work *is*; how long
it takes on a given configuration is derived by
:class:`repro.exec_model.timing.GroundTruthTiming`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping


@dataclass(frozen=True)
class KernelSpec:
    """Intrinsic work of one task type.

    Attributes
    ----------
    name:
        Unique kernel name (scoped per workload, e.g. ``"slu.bmod"``).
    w_comp:
        Compute work per task, in giga-operations.
    w_bytes:
        Main-memory traffic per task, in GB (beyond-LLC traffic).
    type_affinity:
        Per-core-type multiplier on compute throughput.  A value of
        1.7 for ``"denver"`` means this kernel extracts 1.7x the base
        Denver ops/cycle advantage (ILP-rich code); memory-shuffling
        kernels sit near 1.0.  Missing types default to 1.0.
    parallel_efficiency:
        Compute-scaling efficiency per core-count doubling for moldable
        execution: ``speedup(nc) = nc * parallel_efficiency**log2(nc)``.
    """

    name: str
    w_comp: float
    w_bytes: float
    type_affinity: Mapping[str, float] = field(default_factory=dict)
    parallel_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.w_comp < 0 or self.w_bytes < 0:
            raise ValueError(f"kernel {self.name}: work must be non-negative")
        if self.w_comp == 0 and self.w_bytes == 0:
            raise ValueError(f"kernel {self.name}: must have some work")
        if not (0.0 < self.parallel_efficiency <= 1.0):
            raise ValueError(f"kernel {self.name}: parallel_efficiency in (0,1]")
        # Freeze the mapping so the spec is safely hashable/shareable.
        object.__setattr__(self, "type_affinity", MappingProxyType(dict(self.type_affinity)))

    def affinity(self, core_type_name: str) -> float:
        """Compute-throughput multiplier for a core type."""
        return float(self.type_affinity.get(core_type_name, 1.0))

    def comp_scaling(self, n_cores: int) -> float:
        """Effective parallel compute speedup for ``n_cores``."""
        if n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        return n_cores * self.parallel_efficiency ** math.log2(n_cores)

    def scaled(self, factor: float, name: str | None = None) -> "KernelSpec":
        """A copy with work multiplied by ``factor`` (task granularity)."""
        return KernelSpec(
            name=name or self.name,
            w_comp=self.w_comp * factor,
            w_bytes=self.w_bytes * factor,
            type_affinity=dict(self.type_affinity),
            parallel_efficiency=self.parallel_efficiency,
        )
