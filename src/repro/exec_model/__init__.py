"""Ground-truth execution behaviour of tasks on the simulated platform.

This package is the "silicon": given a kernel's intrinsic work (compute
operations + memory traffic), the core type, the number of cores, the
current core/memory frequencies and the set of concurrently running
tasks, it determines how long execution actually takes and how much
power the rails actually draw.  The JOSS models in :mod:`repro.models`
never see these equations — they learn approximations of them from
profiling, exactly as the paper's models learn the TX2.
"""

from repro.exec_model.kernels import KernelSpec
from repro.exec_model.timing import GroundTruthTiming, TimingBreakdown
from repro.exec_model.contention import ContentionModel
from repro.exec_model.activity import Activity
from repro.exec_model.engine import ExecutionEngine

__all__ = [
    "KernelSpec",
    "GroundTruthTiming",
    "TimingBreakdown",
    "ContentionModel",
    "Activity",
    "ExecutionEngine",
]
