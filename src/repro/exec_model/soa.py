"""Structure-of-arrays backing store for running-activity timing state.

Every per-activity quantity the re-timing pass touches — remaining work
fraction, progress rate, stall deadline, duration noise, the partition
breakdown components and the power-model inputs derived from them —
lives in a parallel ``array('d')`` column indexed by *core slot* (one
activity per core at a time, so the dense core index is a perfect key).

Why this layout instead of :class:`Activity` attributes:

- scalar access stays cheap: indexing an ``array('d')`` returns an
  unboxed-then-reboxed C double at roughly attribute-access cost, so the
  incremental (few-activities-affected) path pays nothing for the move;
- bulk access becomes free: :meth:`ActivityState.views` exposes
  zero-copy ``numpy`` float64 views over the *same* buffers, so a
  residual full-retime pass (memory-frequency change, global stall,
  the ``strict_retime`` reference mode) can run as one vectorized
  sweep.  Writes through a view are visible to scalar readers and vice
  versa — there is exactly one copy of the state;
- bit-identity is preserved: NumPy elementwise float64 arithmetic is
  IEEE-754-identical to the equivalent Python ``float`` expressions, so
  the vector and scalar materialisation paths produce the same bytes
  (pinned by the equivalence tests).

``rail_powers`` / the :class:`~repro.hw.sensor.EnergyAccountant` feed
off running sums ((per-cluster dynamic-activity, total bandwidth
demand)) that are maintained from these columns under a strict
delta-update discipline — see ``ExecutionEngine._retime``.
"""

from __future__ import annotations

from array import array
from typing import Optional

import numpy as np

#: Column names, one ``array('d')`` of ``n_slots`` doubles each.
COLUMNS = (
    "frac",         # fraction of the partition's work remaining, in [0, 1]
    "rate",         # progress rate (fraction / s); 0.0 while stalled
    "last_upd",     # sim time of the last frac consolidation
    "stall_until",  # progress frozen until this sim time (0 = not stalled)
    "noise",        # multiplicative duration noise, drawn once at start
    "mb",           # instantaneous memory-boundness (power-model input)
    "bwa",          # achieved memory bandwidth (GB/s)
    "pa",           # dynamic-activity factor folded into the cluster sum
    "bw_dem",       # bandwidth demand folded into the contention total
    "t_comp",       # partition compute seconds at the current f_C
    "t_mem",        # partition un-stretched memory seconds at f_M
)


class ActivityState:
    """One column per timing field, one row (slot) per core.

    The per-slot constants (``stall_act``, ``cl_idx``) are fixed at
    construction from the platform's core list: slot *i* always maps to
    the same core, whose cluster membership and core-type stall
    activity never change.
    """

    __slots__ = COLUMNS + ("n_slots", "stall_act", "cl_idx", "_views")

    def __init__(
        self,
        n_slots: int,
        stall_act: tuple[float, ...],
        cl_idx: tuple[int, ...],
    ) -> None:
        self.n_slots = int(n_slots)
        zeros = bytes(8 * self.n_slots)
        for name in COLUMNS:
            setattr(self, name, array("d", zeros))
        #: Per-slot core-type ``stall_activity`` (power-model constant).
        self.stall_act = tuple(float(v) for v in stall_act)
        #: Per-slot dense cluster index (into the engine's cluster sums).
        self.cl_idx = tuple(int(v) for v in cl_idx)
        self._views: Optional[dict] = None

    def reset_slot(self, i: int, now: float, noise: float) -> None:
        """Clear slot ``i`` for a freshly started activity.  Slots are
        reused across activities, so every column must be re-armed — a
        stale ``bw_dem`` or ``pa`` would corrupt the engine's running
        sums on the first delta update."""
        self.frac[i] = 1.0
        self.rate[i] = 0.0
        self.last_upd[i] = now
        self.stall_until[i] = 0.0
        self.noise[i] = noise
        self.mb[i] = 0.0
        self.bwa[i] = 0.0
        self.pa[i] = 0.0
        self.bw_dem[i] = 0.0
        self.t_comp[i] = 0.0
        self.t_mem[i] = 0.0

    def views(self) -> dict:
        """Zero-copy ``numpy.float64`` views over the live columns
        (plus a read-only ``stall_act`` constant array), built lazily
        once.  ``np.frombuffer`` shares the ``array('d')`` buffers, so
        vectorized writes land in the same storage the scalar path
        reads."""
        v = self._views
        if v is None:
            v = {name: np.frombuffer(getattr(self, name)) for name in COLUMNS}
            v["stall_act"] = np.asarray(self.stall_act, dtype=np.float64)
            self._views = v
        return v
