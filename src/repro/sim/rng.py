"""Seeded random-number streams.

Every stochastic element of the simulation (task duration noise, sensor
noise, work-stealing victim selection, ...) pulls from its own named
stream so that adding randomness to one subsystem never perturbs the
draws seen by another.  Streams are derived from a single root seed via
:class:`numpy.random.SeedSequence` spawning keyed by stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory of independent, reproducible generators.

    Example::

        rng = RngStreams(seed=42)
        steal = rng.stream("steal")        # stable across runs
        noise = rng.stream("task-noise")
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``.

        The same name always yields the same generator object, so state
        advances across calls; two distinct names are statistically
        independent.
        """
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, salt: int) -> "RngStreams":
        """Derive a fresh independent family (e.g. per repetition)."""
        return RngStreams(seed=(self._seed * 1_000_003 + int(salt)) & 0x7FFFFFFF)
