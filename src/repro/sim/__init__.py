"""Discrete-event simulation engine.

A small, deterministic event-driven kernel: an event heap keyed by
``(time, priority, sequence)``, cancellable event handles, and seeded
random-number streams.  Everything above (hardware, runtime,
schedulers) is built as callbacks scheduled on a :class:`Simulator`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = ["Event", "Simulator", "RngStreams", "TraceRecord", "Tracer"]
