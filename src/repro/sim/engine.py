"""Indexed event calendar and simulation clock.

The engine is intentionally minimal: callbacks scheduled at absolute or
relative simulated times, executed in deterministic order.  Ties at the
same timestamp break first on an integer ``priority`` (lower runs
earlier) and then on insertion order, which makes whole-system runs
bit-reproducible for a fixed seed.

The calendar is a C-level binary heap of ``(time, priority, seq, Event)``
tuples, *keyed* by the event's own ``seq``: a heap entry is live only
while its sequence number still matches its event's.  That single
invariant gives three operations the lazy-tombstone heap of earlier
versions could not express cheaply:

- :meth:`Simulator.reschedule` is a decrease-key (or increase-key): it
  re-stamps the same :class:`Event` handle with a fresh ``(time,
  priority, seq)`` and pushes one new entry — the old entry dies by
  sequence mismatch, with no new handle allocated and no callback churn
  (the execution engine moves one completion deadline per re-timed
  activity per pass, so this is the hottest mutation after ``schedule``);
- :meth:`Event.cancel` invalidates the sequence too, so the pop loop
  needs exactly one comparison (``entry_seq != event.seq``) to detect
  both kinds of dead entry;
- dead entries are *compacted* (filter + re-heapify, in place) once they
  outnumber the live ones past a floor, so cancel/reschedule-heavy
  phases cannot grow the heap without bound — the O(n) rebuild is
  amortised O(1) per kill because at least half the heap dies with it.
"""

from __future__ import annotations

import heapq
import itertools
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.bus import EventBus

#: Dead heap entries tolerated before compaction is even considered
#: (below this the rebuild costs more than the tombstone pops it saves).
_COMPACT_MIN_DEAD = 256


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be
    cancelled or re-keyed (:meth:`Simulator.reschedule`).  A dead heap
    entry — cancelled, or superseded by a reschedule — is detected by
    sequence mismatch when popped, and swept earlier if a compaction
    runs.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "_sim"
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire.  Idempotent.

        Invalidates the sequence key (the heap entry keeps the original
        number, so the match fails) and maintains the simulator's live
        count inline rather than calling back into it: re-timing cancels
        completion events in its innermost loop.  Events that already
        fired detach from the simulator first, so late cancels cannot
        double-decrement.  May trigger a calendar compaction when dead
        entries dominate the heap."""
        if not self.cancelled:
            self.cancelled = True
            self.seq = -1
            sim = self._sim
            if sim is not None:
                live = sim._live = sim._live - 1
                heap = sim._heap
                if len(heap) - live >= _COMPACT_MIN_DEAD and len(heap) > (live << 1):
                    sim._compact()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state})"


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run()
    """

    def __init__(self, obs: Optional[EventBus] = None) -> None:
        #: The run's event bus (:mod:`repro.obs`).  Always present so
        #: every layer holding the simulator can reach it via
        #: ``self.sim.obs``; a fresh bus has no subscribers, and emit
        #: sites guard on ``obs.active`` (zero cost when silent).
        self.obs = obs if obs is not None else EventBus()
        self._now = 0.0
        # Heap entries are (time, priority, seq, Event) tuples: ties
        # resolve through C-level tuple comparison without ever calling
        # back into Python (``Event.__lt__`` is kept only for direct
        # Event-vs-Event comparisons in user code).  An entry is live
        # iff its seq still equals its event's seq (see module docs).
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_fired = 0
        # Live (pending, non-dead) event count; maintained on
        # push/cancel/fire so pending_count is O(1).  The dead-entry
        # count needs no field of its own: it is len(_heap) - _live.
        self._live = 0
        #: Calendar compactions performed (observability/testing).
        self.compactions = 0
        # Optional pre-pop hook, set by a component that defers derived
        # event maintenance (the execution engine's lazy re-timing, see
        # ``ExecutionEngine._flush_if_needed``).  Called with the head
        # entry's ``(time, priority)`` — or ``(None, 0)`` when the heap
        # is empty — before any event pops; returns True if it mutated
        # the heap.  ``None`` (the common case) costs one attribute
        # load per step.
        self.flush_fn: Optional[Callable[[Optional[float], int], bool]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (dead entries excluded)."""
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after the
        current callback returns, in priority/insertion order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (this is the engine's hottest entry point;
        # delay >= 0 already guarantees time >= now).
        time = self._now + delay
        seq = next(self._seq)
        ev = Event(time, priority, seq, callback, args, sim=self)
        _heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = next(self._seq)
        ev = Event(time, priority, seq, callback, args, sim=self)
        _heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    def reschedule(self, ev: Event, delay: float, priority: int = 0) -> Event:
        """Move a pending event to ``now + delay`` (the calendar's
        decrease-key): the same handle is re-stamped with a fresh
        ``(time, priority, seq)`` and one new heap entry is pushed; the
        superseded entry dies by sequence mismatch.  The live count is
        untouched — the handle still represents exactly one pending
        callback.  Returns ``ev`` for symmetry with :meth:`schedule`.
        """
        if delay < 0:
            raise SimulationError(f"cannot reschedule into the past (delay={delay})")
        if ev.cancelled or ev._sim is not self:
            raise SimulationError("cannot reschedule a cancelled or fired event")
        time = self._now + delay
        seq = next(self._seq)
        ev.time = time
        ev.priority = priority
        ev.seq = seq
        heap = self._heap
        _heappush(heap, (time, priority, seq, ev))
        live = self._live
        if len(heap) - live >= _COMPACT_MIN_DEAD and len(heap) > (live << 1):
            self._compact()
        return ev

    def _compact(self) -> None:
        """Rebuild the heap without its dead entries, in place (hot
        loops hold a local binding to the list), and restore the heap
        invariant.  Amortised O(1) per dead entry: only triggered when
        at least half the heap dies with the rebuild."""
        heap = self._heap
        heap[:] = [e for e in heap if e[2] == e[3].seq]
        heapq.heapify(heap)
        self.compactions += 1

    def peek(self) -> Optional[float]:
        """Time of the next pending (live) event, or ``None``."""
        self._settle()
        return self._heap[0][0] if self._heap else None

    def _settle(self) -> None:
        """Cold-path calendar maintenance for :meth:`peek` /
        :meth:`pending_count`: drop dead head entries and give the flush
        hook (if any) a chance to materialise deferred events before the
        head is examined.  The hot-path twin of this logic lives in
        :meth:`_pop_live` (which must also pop and fire)."""
        heap = self._heap
        while True:
            while heap and heap[0][2] != heap[0][3].seq:
                _heappop(heap)
            f = self.flush_fn
            if f is None:
                return
            if heap:
                head = heap[0]
                flushed = f(head[0], head[1])
            else:
                flushed = f(None, 0)
            if not flushed:
                return

    def _pop_live(self, until: Optional[float] = None) -> Optional[Event]:
        """Settle the calendar head and pop the next live event.

        This is the single copy of the dead-entry skip / flush-hook
        dance shared by :meth:`step` and :meth:`run` (two hand-inlined
        copies drifted once).  Returns the popped :class:`Event` with
        the clock already advanced to it, or ``None`` when no live
        events remain or the next one lies beyond ``until`` (the clock
        is then advanced exactly to ``until``).
        """
        heap = self._heap
        while True:
            # A dead entry (cancelled or superseded by reschedule) is
            # detected by one comparison: its frozen seq no longer
            # matches its event's.
            while heap and heap[0][2] != heap[0][3].seq:
                _heappop(heap)
            f = self.flush_fn
            if f is not None:
                if heap:
                    head = heap[0]
                    flushed = f(head[0], head[1])
                else:
                    flushed = f(None, 0)
                if flushed:
                    continue  # the flush may have moved/killed the head
            if not heap:
                return None
            entry = heap[0]
            time = entry[0]
            if until is not None and time > until:
                self._now = until
                return None
            _heappop(heap)
            ev = entry[3]
            ev._sim = None  # fired: a later cancel() must not touch _live
            self._live -= 1
            self._now = time
            self._events_fired += 1
            return ev

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remain."""
        ev = self._pop_live()
        if ev is None:
            return False
        ev.callback(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap is empty, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given and events remain beyond it, the clock
        is advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        pop_live = self._pop_live
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                ev = pop_live(until)
                if ev is None:
                    break
                ev.callback(*ev.args)
                fired += 1
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the heap.  O(1):
        maintained incrementally on push, cancel and fire rather than
        scanning a heap that can be partly dead entries."""
        self._settle()  # materialise any deferred events first
        return self._live
